"""Sequential emulation of skeletal programs.

This is the left branch of the paper's Fig. 2: the same specification
that drives the parallel implementation "can also be executed on any
sequential platform to check the correctness of the parallel algorithm".
The emulator interprets the program IR directly using the declarative
skeleton semantics of :mod:`repro.core.semantics` — no process graph, no
scheduling, just function application — and is the oracle for every
functional-equivalence test of the parallel path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from . import semantics
from .functions import FunctionTable
from .ir import Apply, Const, IRError, Program, SkelApply

__all__ = ["EmulationResult", "evaluate_body", "emulate_once", "emulate"]


@dataclass
class EmulationResult:
    """Outcome of emulating a stream program.

    ``outputs`` holds the ``y`` value of every iteration (what the paper's
    ``display_marks`` would have shown); ``final_state`` the last memory
    value; ``iterations`` how many stream items were processed.
    """

    outputs: List[Any]
    final_state: Any
    iterations: int


def _eval_skeleton(node: SkelApply, table: FunctionTable, env: Dict[str, Any]) -> Any:
    """Evaluate one inner-skeleton instance declaratively."""
    funcs = {role: table[name] for role, name in node.funcs.items()}
    if node.kind == "scm":
        (x,) = (env[a] for a in node.args)
        return semantics.scm(
            node.degree,
            lambda n, v: funcs["split"](n, v),
            lambda piece: funcs["comp"](piece),
            lambda orig, results: funcs["merge"](orig, results),
            x,
        )
    if node.kind == "df":
        z, xs = (env[a] for a in node.args)
        return semantics.df(
            node.degree,
            lambda v: funcs["comp"](v),
            lambda acc, y: funcs["acc"](acc, y),
            z,
            xs,
        )
    if node.kind == "tf":
        z, xs = (env[a] for a in node.args)
        return semantics.tf(
            node.degree,
            lambda v: funcs["comp"](v),
            lambda acc, y: funcs["acc"](acc, y),
            z,
            xs,
        )
    raise IRError(f"unknown skeleton kind {node.kind!r}")


def evaluate_body(
    program: Program, table: FunctionTable, args: Tuple[Any, ...]
) -> Tuple[Any, ...]:
    """Evaluate the program body once on ``args`` (one per parameter).

    Returns the tuple of result values.
    """
    if len(args) != len(program.params):
        raise IRError(
            f"{program.name} takes {len(program.params)} argument(s), "
            f"got {len(args)}"
        )
    env: Dict[str, Any] = dict(zip(program.params, args))
    for binding in program.bindings:
        if isinstance(binding, Const):
            env[binding.out] = binding.value
        elif isinstance(binding, Apply):
            spec = table[binding.func]
            result = spec(*(env[a] for a in binding.args))
            if spec.n_outs == 1:
                env[binding.outs[0]] = result
            else:
                if not isinstance(result, tuple) or len(result) != spec.n_outs:
                    raise IRError(
                        f"{binding.func} declared {spec.n_outs} outputs but "
                        f"returned {type(result).__name__}"
                    )
                for name, value in zip(binding.outs, result):
                    env[name] = value
        elif isinstance(binding, SkelApply):
            env[binding.outs[0]] = _eval_skeleton(binding, table, env)
        else:
            raise IRError(f"unknown binding {binding!r}")
    return tuple(env[r] for r in program.results)


def emulate_once(program: Program, table: FunctionTable, *args: Any) -> Tuple[Any, ...]:
    """Emulate a one-shot program; returns its results tuple."""
    if program.stream is not None:
        raise IRError("use emulate() for stream programs")
    program.validate(table)
    return evaluate_body(program, table, args)


def emulate(
    program: Program,
    table: FunctionTable,
    *,
    max_iterations: Optional[int] = None,
    call_sink: bool = True,
) -> EmulationResult:
    """Emulate a stream (``itermem``) program sequentially.

    Runs until the input function raises
    :class:`~repro.core.semantics.EndOfStream` or ``max_iterations`` is
    reached.  The per-iteration ``y`` values are collected in the result;
    ``call_sink=False`` suppresses calling the registered output function
    (useful when it has side effects such as printing).
    """
    if program.stream is None:
        raise IRError("use emulate_once() for one-shot programs")
    program.validate(table)
    spec = program.stream

    inp_fn = table[spec.inp]
    out_fn = table[spec.out]
    if spec.init is not None:
        z = table[spec.init]()
    else:
        z = spec.init_value

    outputs: List[Any] = []

    def loop(state_and_item):
        state, item = state_and_item
        new_state, y = evaluate_body(program, table, (state, item))
        return new_state, y

    def out(y):
        outputs.append(y)
        if call_sink:
            out_fn(y)

    final_state = semantics.itermem(
        lambda x: inp_fn(x),
        loop,
        out,
        z,
        spec.source,
        max_iterations=max_iterations,
    )
    return EmulationResult(outputs, final_state, len(outputs))
