"""Declarative (sequential) skeleton semantics.

Each SKiPPER skeleton has two definitions (section 2 of the paper): a
*declarative* one — an architecture-independent, purely applicative
interpretation written in Caml — and an *operational* one (the process
network template, :mod:`repro.pnt.templates`).  This module is the
declarative side, transliterated from the paper's Caml:

``let df n comp acc z xs = fold_left acc z (map comp xs)``

These functions serve three purposes:

* they *are* the sequential emulation that lets a programmer debug the
  application on stock hardware (section 3);
* they are the oracle against which the parallel execution is verified
  (the implementor must "prove the equivalence" of the two definitions);
* their signatures document the type constraints HM inference enforces
  in :mod:`repro.minicaml.builtins`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["scm", "df", "tf", "itermem", "TaskOutcome", "EndOfStream"]

A = TypeVar("A")
B = TypeVar("B")
C = TypeVar("C")
D = TypeVar("D")


def scm(
    n: int,
    split: Callable[[int, A], List[B]],
    comp: Callable[[B], C],
    merge: Callable[[A, List[C]], D],
    x: A,
) -> D:
    """Split, Compute and Merge — regular data parallelism.

    ``val scm : int -> (int -> 'a -> 'b list) -> ('b -> 'c)
    -> ('a -> 'c list -> 'd) -> 'a -> 'd``

    ``split n x`` decomposes the input into a list of sub-domains, each is
    processed independently by ``comp``, and ``merge`` reassembles the
    final result.  ``merge`` also receives the original input so it can
    recover the global geometry (image shape etc.).
    """
    if n <= 0:
        raise ValueError(f"scm degree must be positive, got {n}")
    pieces = split(n, x)
    results = [comp(piece) for piece in pieces]
    return merge(x, results)


def df(
    n: int,
    comp: Callable[[A], B],
    acc: Callable[[C, B], C],
    z: C,
    xs: Iterable[A],
) -> C:
    """Data Farming — irregular data parallelism.

    The paper's declarative definition, verbatim:

    ``let df n comp acc z xs = fold_left acc z (map comp xs)``

    ``val df : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c``

    ``n`` (the number of workers) only affects the operational definition.
    For the parallel implementation to be equivalent, ``acc`` must be
    insensitive to accumulation order (commutative/associative up to the
    observed result) — the paper's correctness condition.
    """
    if n <= 0:
        raise ValueError(f"df degree must be positive, got {n}")
    result = z
    for y in map(comp, xs):
        result = acc(result, y)
    return result


@dataclass(frozen=True)
class TaskOutcome:
    """What a task-farm worker produced for one packet.

    ``results`` are finished values fed to the accumulator; ``subtasks``
    are new packets recursively injected into the farm (the paper: "each
    worker can recursively generate new packets to be processed").
    """

    results: Sequence = ()
    subtasks: Sequence = ()


def tf(
    n: int,
    comp: Callable[[A], TaskOutcome],
    acc: Callable[[C, B], C],
    z: C,
    xs: Iterable[A],
    *,
    max_tasks: int = 1_000_000,
) -> C:
    """Task Farming — divide-and-conquer.

    Generalises ``df``: the worker may return finished results and/or new
    subtasks.  The declarative semantics processes the worklist in FIFO
    order; as with ``df``, equivalence with the parallel version requires
    an order-insensitive ``acc``.

    ``max_tasks`` guards against non-terminating task generation (a purely
    declarative stand-in for the farm's finite buffering).
    """
    if n <= 0:
        raise ValueError(f"tf degree must be positive, got {n}")
    result = z
    queue = deque(xs)
    processed = 0
    while queue:
        processed += 1
        if processed > max_tasks:
            raise RuntimeError(f"tf exceeded {max_tasks} tasks; diverging farm?")
        outcome = comp(queue.popleft())
        if not isinstance(outcome, TaskOutcome):
            raise TypeError(
                f"tf worker must return TaskOutcome, got {type(outcome).__name__}"
            )
        for y in outcome.results:
            result = acc(result, y)
        queue.extend(outcome.subtasks)
    return result


class EndOfStream(Exception):
    """Raised by an ``itermem`` input function when the stream is over.

    The paper's machine processes an endless 25 Hz video stream; in
    emulation and simulation, finite streams signal exhaustion with this
    exception.
    """


def itermem(
    inp: Callable[[A], B],
    loop: Callable[[Tuple[C, B]], Tuple[C, D]],
    out: Callable[[D], None],
    z: C,
    x: A,
    *,
    max_iterations: Optional[int] = None,
) -> C:
    """Iterate with memory — the stream-level skeleton (paper Fig. 4).

    ``val itermem : ('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit)
    -> 'c -> 'a -> unit``

    Repeatedly reads an input with ``inp x``, runs the loop body on
    ``(state, input)`` producing ``(state', y)``, emits ``y`` via ``out``,
    and carries ``state'`` to the next iteration — the "looping" pattern
    of tracking algorithms where iteration ``i+1`` depends on results of
    iteration ``i``.

    The paper's definition recurses forever; here iteration stops when
    ``inp`` raises :class:`EndOfStream` or after ``max_iterations``.
    Returns the final memory value (useful for testing; the paper's
    version returns ``unit``).
    """
    state = z
    done = 0
    while max_iterations is None or done < max_iterations:
        try:
            item = inp(x)
        except EndOfStream:
            break
        state, y = loop((state, item))
        out(y)
        done += 1
    return state
