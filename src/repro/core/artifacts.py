"""Filesystem helpers shared by every artifact writer.

Traces, frame ledgers, soak verdicts, benchmark documents and emitted
executives all end up as files the user named on a command line; this
module is the one place that makes their parent directories exist, so
``repro run --trace-out artifacts/t.json`` and ``repro emit -o dir/``
behave identically on a fresh checkout.
"""

from __future__ import annotations

import os

__all__ = ["ensure_parent_dir"]


def ensure_parent_dir(path: str) -> None:
    """Create the parent directory of an artifact path if missing."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
