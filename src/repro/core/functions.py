"""Registry of application-specific sequential functions.

In SKiPPER the application programmer supplies sequential C functions
with ``/*in*/`` / ``/*out*/`` annotated prototypes; the coordination
layer treats them as opaque kernels and only needs (a) the prototype, to
type-check and wire the process graph, and (b) a cost estimate, for the
SynDEx mapping heuristics and the machine simulator.

A :class:`FunctionSpec` carries the Python callable plus that metadata;
a :class:`FunctionTable` is the compilation unit's symbol table for
external functions, consulted by the mini-ML front-end, the PNT expander
and the executive generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "FunctionSpec",
    "FunctionTable",
    "constant_cost",
    "check_declared_properties",
]

CostModel = Callable[..., float]


def constant_cost(us: float) -> CostModel:
    """A cost model charging a fixed number of microseconds per call."""

    def cost(*_args) -> float:
        return us

    return cost


@dataclass
class FunctionSpec:
    """An application-specific sequential function.

    Attributes:
        name: symbol used in the ML source and process-graph labels.
        fn: the Python implementation.  It receives the ``ins`` values as
            positional arguments and returns one value (or a tuple of
            ``len(outs)`` values when the prototype declares several
            ``/*out*/`` parameters).
        ins: type names of the inputs (mini-ML type syntax, e.g.
            ``["state", "img"]`` or ``["'a list"]``).
        outs: type names of the outputs.
        cost: simulated execution time in microseconds on the reference
            processor, as a function of the actual argument values.
            ``None`` means "measure nothing": the simulator falls back to
            a default per-call cost.
    """

    name: str
    fn: Callable
    ins: Sequence[str]
    outs: Sequence[str]
    cost: Optional[CostModel] = None
    doc: str = ""
    #: Declared algebraic properties, used by the correctness checks and
    #: the transformation rules of :mod:`repro.core.transform`:
    #:
    #: * ``"commutative"`` / ``"associative"`` — for binary accumulators
    #:   (the paper's condition for df/tf accumulation order-insensitivity);
    #: * ``"append"`` — the accumulator is list concatenation up to
    #:   reordering (enables farm fusion);
    #: * ``"identity"`` — unary function returning its argument.
    properties: frozenset = frozenset()

    def __post_init__(self) -> None:
        if not self.outs:
            # C functions with no /*out*/ are effectful sinks; model a unit.
            self.outs = ("unit",)
        self.properties = frozenset(self.properties)

    def has_property(self, name: str) -> bool:
        return name in self.properties

    @property
    def arity(self) -> int:
        return len(self.ins)

    @property
    def n_outs(self) -> int:
        return len(self.outs)

    def signature(self) -> str:
        """Mini-ML type of the function, e.g. ``state * img -> mark list``."""
        lhs = " * ".join(self.ins) if self.ins else "unit"
        rhs = " * ".join(self.outs)
        return f"{lhs} -> {rhs}"

    def __call__(self, *args):
        if len(args) != self.arity:
            raise TypeError(
                f"{self.name} expects {self.arity} argument(s), got {len(args)}"
            )
        return self.fn(*args)

    def cost_of(self, *args) -> Optional[float]:
        """Simulated cost in microseconds, or None when not modelled."""
        if self.cost is None:
            return None
        return float(self.cost(*args))


class FunctionTable:
    """Symbol table of the application's sequential functions."""

    def __init__(self) -> None:
        self._specs: Dict[str, FunctionSpec] = {}

    def register(
        self,
        name: str,
        *,
        ins: Sequence[str],
        outs: Sequence[str] = ("unit",),
        cost: Optional[Union[CostModel, float]] = None,
        doc: str = "",
        properties: Sequence[str] = (),
    ) -> Callable[[Callable], Callable]:
        """Decorator registering ``fn`` under ``name`` with its prototype.

        ``cost`` may be a float (constant microseconds) or a callable over
        the argument values.  ``properties`` declares algebraic facts
        (``"commutative"``, ``"associative"``, ``"append"``...) consumed
        by the transformation rules; declare only what
        :func:`check_declared_properties` can confirm on your data.
        """
        if isinstance(cost, (int, float)):
            cost = constant_cost(float(cost))

        def wrap(fn: Callable) -> Callable:
            self.add(
                FunctionSpec(
                    name, fn, tuple(ins), tuple(outs), cost, doc,
                    frozenset(properties),
                )
            )
            return fn

        return wrap

    def add(self, spec: FunctionSpec) -> None:
        if spec.name in self._specs:
            raise ValueError(f"function {spec.name!r} already registered")
        self._specs[spec.name] = spec

    def __getitem__(self, name: str) -> FunctionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown sequential function {name!r}; registered: "
                f"{sorted(self._specs)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[FunctionSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)


def _multiset_key(values) -> list:
    return sorted(values, key=repr)


def check_declared_properties(
    spec: FunctionSpec,
    samples: Sequence[Tuple],
) -> List[str]:
    """Empirically test a spec's declared algebraic properties.

    ``samples`` supplies test points: for binary properties each sample
    is ``(z, a, b)`` (an accumulator seed and two elements); for unary
    properties the first component is used.  Returns the list of
    violated property names (empty = all declared properties held on
    every sample).  This is the executable counterpart of the paper's
    proof obligation that ``acc`` be insensitive to accumulation order.
    """
    violations: List[str] = []
    if spec.has_property("identity"):
        for sample in samples:
            if spec.fn(sample[0]) != sample[0]:
                violations.append("identity")
                break
    if spec.has_property("commutative"):
        for z, a, b in samples:
            if spec.fn(spec.fn(z, a), b) != spec.fn(spec.fn(z, b), a):
                violations.append("commutative")
                break
    if spec.has_property("associative"):
        for z, a, b in samples:
            if spec.fn(spec.fn(z, a), b) != spec.fn(z, spec.fn(a, b)):
                violations.append("associative")
                break
    if spec.has_property("append"):
        for z, a, b in samples:
            result = spec.fn(spec.fn(list(z), a), b)
            flat = list(z)
            for item in (a, b):
                flat.extend(item if isinstance(item, list) else [item])
            if _multiset_key(result) != _multiset_key(flat):
                violations.append("append")
                break
    return violations
