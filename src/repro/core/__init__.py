"""Skeleton core: declarative semantics, program IR, builder and emulator."""

from .semantics import EndOfStream, TaskOutcome, df, itermem, scm, tf
from .functions import (
    FunctionSpec,
    FunctionTable,
    check_declared_properties,
    constant_cost,
)
from .ir import (
    Apply,
    Const,
    IRError,
    Program,
    SKELETON_KINDS,
    SKELETON_ROLES,
    SkelApply,
    StreamSpec,
)
from .builder import ProgramBuilder, Value
from .emulate import EmulationResult, emulate, emulate_once, evaluate_body
from .sizes import HEADER_BYTES, payload_bytes
from .transform import TransformReport, compose_functions, optimize

__all__ = [
    "scm",
    "df",
    "tf",
    "itermem",
    "TaskOutcome",
    "EndOfStream",
    "FunctionSpec",
    "FunctionTable",
    "constant_cost",
    "Const",
    "Apply",
    "SkelApply",
    "StreamSpec",
    "Program",
    "IRError",
    "SKELETON_KINDS",
    "SKELETON_ROLES",
    "ProgramBuilder",
    "Value",
    "EmulationResult",
    "emulate",
    "emulate_once",
    "evaluate_body",
    "HEADER_BYTES",
    "payload_bytes",
    "check_declared_properties",
    "TransformReport",
    "compose_functions",
    "optimize",
]
