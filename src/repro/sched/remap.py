"""Online re-mapping policy: migrate work off degraded workers mid-stream.

The gray-failure layer (:mod:`repro.health`) *demotes* a limping worker
to a packet trickle; re-mapping goes one step further and **migrates**
the worker's share of the farm entirely: its in-flight packets drain to
healthy survivors through the supervisor's existing re-dispatch path
(so :class:`~repro.realtime.ledger.FrameLedger` conservation is
preserved exactly — dedup happens at the envelope layer, below the
ledger) and the dispatch rotation excludes it until measured evidence
says it recovered.

Every threshold here is **count-based** (completions, not seconds), so
the identical decision sequence reproduces deterministically in the
discrete-event simulator's virtual time — the property the virtual-time
parity test locks in.  The decision inputs are the signals the
supervisor already collects: BEAT/COUNT heartbeats and the
``FarmHealth`` limping verdicts derived from them.

Restoration is evidence-based, not optimistic: a migrated worker keeps
receiving probation duplicates of live packets (cadenced by
``probe_stride``), and only rejoins the rotation once those answers
pull its EWMA score back under the health layer's ``clear_factor``
hysteresis — deliberately stricter than the crash-quarantine rule
("any answer readmits"), because a limping worker answers *eventually*
by definition.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RemapPolicy"]


@dataclass(frozen=True)
class RemapPolicy:
    """When the supervisor migrates processors off a degraded worker.

    Carried by :class:`~repro.faults.policy.FaultPolicy` in its
    ``remap`` slot; ``None`` there means re-mapping is off and the
    demotion/hedging defenses stand alone.  Plain frozen data so it
    pickles into worker OS processes like every other policy.
    """

    #: Master switch (an instance with ``enabled=False`` is what
    #: ``FaultPolicy.remap_policy()`` returns when no policy is set).
    enabled: bool = True
    #: Farm-wide completions observed while a worker stays continuously
    #: limping before it is migrated.  Count-based on purpose: the same
    #: rule is exact in wall-clock and virtual time.
    confirm_completions: int = 8
    #: Never migrate below this many active (non-quarantined,
    #: non-migrated) workers; at least one healthy survivor is also
    #: required, whatever this says.
    min_active: int = 1
    #: Every n-th farm completion after migration sends the migrated
    #: worker one probation duplicate of a live packet (its path back).
    probe_stride: int = 32
    #: Re-dispatch the migrated worker's in-flight packets immediately
    #: (off: they drain through the normal timeout/hedge paths).
    drain: bool = True

    def __post_init__(self):
        if self.confirm_completions < 1:
            raise ValueError("confirm_completions must be >= 1")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1 "
                             "(a farm cannot run on zero workers)")
        if self.probe_stride < 1:
            raise ValueError("probe_stride must be >= 1")
