"""The Scheduler interface and its policy registry.

Placement happens twice in this system, and both halves now route
through one interface:

* **place** — processes onto *processors* (the mapping the executive is
  generated from).  This is the static half: AAA greedy, naive
  round-robin, or the bi-criteria Pareto search.
* **assign** — mapped processors onto *workers* (the tcp coordinator
  dealing processor slices over connected ``repro worker`` machines).
  Round-robin is the registered baseline; the cost-aware policies use
  LPT (longest-processing-time-first) over the cost model's predicted
  per-processor loads so the heaviest processor never lands on the same
  worker as the second-heaviest.

Mirrors the backend/target/transport registries: decorate a subclass
with :func:`register_scheduler`, select by name (``repro map``,
``--scheduler``, ``REPRO_SCHEDULER``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from ..pnt.graph import ProcessGraph
from ..syndex.arch import Architecture
from ..syndex.distribute import Mapping, distribute, round_robin
from .costmodel import processor_loads
from .mapper import bicriteria_map

__all__ = [
    "Scheduler",
    "register_scheduler",
    "get_scheduler",
    "resolve_scheduler",
    "scheduler_names",
    "list_schedulers",
    "DEFAULT_SCHEDULER",
]

#: The coordinator's default worker-assignment policy; overridable per
#: run (``scheduler=``) or process-wide (``REPRO_SCHEDULER``).
DEFAULT_SCHEDULER = "bicriteria"


class Scheduler:
    """One placement policy (both halves; override either)."""

    name: str = ""
    description: str = ""

    def place(
        self,
        graph: ProcessGraph,
        arch: Architecture,
        *,
        durations: Optional[Dict[str, float]] = None,
        edge_bytes: Optional[Dict[int, int]] = None,
        comm_factor: float = 1.0,
        items_hint: int = 8,
        latency_budget_us: Optional[float] = None,
        throughput_target_hz: Optional[float] = None,
        worker_speeds: Optional[Dict[str, float]] = None,
    ) -> Mapping:
        raise NotImplementedError

    def assign(
        self,
        mapping: Mapping,
        processors: List[str],
        workers: List[Any],
        *,
        durations: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Any]:
        """Deal mapped processors over workers (round-robin default)."""
        return {
            proc: workers[i % len(workers)]
            for i, proc in enumerate(processors)
        }


def _lpt_assign(
    mapping: Mapping,
    processors: List[str],
    workers: List[Any],
    durations: Optional[Dict[str, float]],
) -> Dict[str, Any]:
    """Heaviest processor first onto the least-loaded worker."""
    loads = processor_loads(mapping, durations=durations)
    ordered = sorted(
        processors, key=lambda p: (-loads.get(p, 0.0), p)
    )
    carried = [0.0] * len(workers)
    assignment: Dict[str, Any] = {}
    for proc in ordered:
        slot = min(range(len(workers)), key=lambda i: (carried[i], i))
        carried[slot] += loads.get(proc, 0.0)
        assignment[proc] = workers[slot]
    return assignment


_SCHEDULERS: Dict[str, Scheduler] = {}


def register_scheduler(cls):
    """Class decorator: instantiate and register one policy by name."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} has no name")
    _SCHEDULERS[instance.name] = instance
    return cls


def get_scheduler(name: str) -> Scheduler:
    try:
        return _SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(_SCHEDULERS))
        raise ValueError(
            f"unknown scheduler {name!r} (registered: {known})"
        ) from None


def resolve_scheduler(name: Optional[str] = None) -> Scheduler:
    """Explicit name, else ``REPRO_SCHEDULER``, else the default."""
    return get_scheduler(
        name or os.environ.get("REPRO_SCHEDULER") or DEFAULT_SCHEDULER
    )


def scheduler_names() -> List[str]:
    return sorted(_SCHEDULERS)


def list_schedulers() -> List[Dict[str, str]]:
    return [
        {"name": s.name, "description": s.description}
        for _, s in sorted(_SCHEDULERS.items())
    ]


@register_scheduler
class RoundRobinScheduler(Scheduler):
    """The naive baseline on both halves (kept for A/B comparisons)."""

    name = "round-robin"
    description = ("pin endpoints, deal everything else round-robin "
                   "(baseline)")

    def place(self, graph, arch, **_criteria) -> Mapping:
        return round_robin(graph, arch)


@register_scheduler
class AaaScheduler(Scheduler):
    """The AAA greedy list-scheduler, with LPT worker assignment."""

    name = "aaa"
    description = ("SynDEx-style greedy list-scheduling (load + "
                   "separation penalty), LPT worker assignment")

    def place(self, graph, arch, *, durations=None, edge_bytes=None,
              comm_factor=1.0, **_criteria) -> Mapping:
        return distribute(
            graph, arch, durations=durations, edge_bytes=edge_bytes,
            comm_factor=comm_factor,
        )

    def assign(self, mapping, processors, workers, *, durations=None):
        return _lpt_assign(mapping, processors, workers, durations)


@register_scheduler
class BicriteriaScheduler(Scheduler):
    """Pareto search over latency x throughput x reliability."""

    name = "bicriteria"
    description = ("AAA-seeded Pareto local search over latency, "
                   "throughput and reliability (replication)")

    def place(self, graph, arch, **criteria) -> Mapping:
        return bicriteria_map(graph, arch, **criteria)

    def assign(self, mapping, processors, workers, *, durations=None):
        return _lpt_assign(mapping, processors, workers, durations)
