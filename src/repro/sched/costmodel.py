"""The calibrated cost model behind every scheduling decision.

One mapping, three criteria — the bi-criteria (then tri-criteria)
recipe of Benoit–Robert et al. ("Bi-criteria Pipeline Mappings for
Parallel Image Processing", "Multi-criteria scheduling of pipeline
workflows"):

* **latency** — critical-path time of one iteration, straight from the
  static analysis (:func:`repro.syndex.analysis.estimate_latency`);
* **throughput** — the pipeline interval: with every stage of every
  frame in flight at once, the farm sustains one frame per *period*,
  where the period is the busiest processor's per-iteration compute
  time (comm on the hub rides under it for the graphs we map);
* **reliability** — the probability one iteration survives processor
  failures.  A farm's workers are replicas of a stateless stage: the
  stage fails only when *every* processor hosting one of its workers
  fails, so spreading workers over more processors is the replication
  the third criterion rewards.  Singleton (stateful) stages fail with
  their processor.

Costs come from syndex durations (or the default kind weights) and can
be *calibrated* with measured per-worker EWMA service times from
:mod:`repro.health`: :func:`speeds_from_report` turns a run's health
samples into per-processor speed multipliers, so a processor that
measured 3x slower than the farm median is charged 3x its static cost
on the next mapping decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..pnt.graph import ProcessGraph, ProcessKind
from ..syndex.analysis import estimate_latency
from ..syndex.distribute import Mapping, _DEFAULT_WEIGHTS
from ..syndex.route import route_mapping

__all__ = ["MappingEstimate", "predict", "processor_loads",
           "speeds_from_report"]

#: Default per-processor failure probability per iteration.  The value
#: only ranks mappings (more worker spread -> higher reliability); it is
#: not a fleet measurement.
DEFAULT_FAILURE_RATE = 1e-3


@dataclass
class MappingEstimate:
    """Predicted (latency, throughput, reliability) of one mapping."""

    latency_us: float
    period_us: float
    reliability: float
    #: Per-processor busy time per iteration (µs), the period's input.
    loads: Dict[str, float] = field(default_factory=dict)
    #: Worker-replica count per farm skeleton (distinct processors).
    replication: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_hz(self) -> float:
        return 1e6 / self.period_us if self.period_us > 0 else float("inf")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "latency_us": round(self.latency_us, 3),
            "period_us": round(self.period_us, 3),
            "throughput_hz": round(self.throughput_hz, 3),
            "reliability": round(self.reliability, 9),
            "loads": {p: round(v, 3) for p, v in self.loads.items()},
            "replication": dict(self.replication),
        }


def _duration_of(graph: ProcessGraph, pid: str,
                 durations: Optional[Dict[str, float]]) -> float:
    if durations and pid in durations:
        return durations[pid]
    return _DEFAULT_WEIGHTS[graph[pid].kind]


def _firings_per_iteration(graph: ProcessGraph, pid: str,
                           items_hint: int) -> float:
    """How many times one process fires per pipeline iteration.

    Mirrors the balanced-farm approximation of the static analysis: a
    worker computes ``ceil(items / degree)`` packets per iteration and
    the master touches every item once (dispatch + accumulate).
    """
    process = graph[pid]
    if process.kind == ProcessKind.WORKER:
        degree = _farm_degree(graph, process.skeleton)
        return float(max(1, -(-items_hint // max(degree, 1))))
    if process.kind == ProcessKind.MASTER:
        return float(max(1, items_hint))
    return 1.0


def _farm_degree(graph: ProcessGraph, skeleton: Optional[str]) -> int:
    if skeleton is None:
        return 1
    return sum(
        1 for p in graph.processes.values()
        if p.skeleton == skeleton and p.kind == ProcessKind.WORKER
    )


def processor_loads(
    mapping: Mapping,
    *,
    durations: Optional[Dict[str, float]] = None,
    items_hint: int = 8,
    worker_speeds: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """Per-processor busy time per iteration (µs), speed-corrected.

    ``worker_speeds`` multiplies each processor's nominal speed with a
    measured health factor (see :func:`speeds_from_report`): a limping
    processor's load inflates accordingly.
    """
    graph = mapping.graph
    loads: Dict[str, float] = {p: 0.0 for p in mapping.arch.processor_ids()}
    for pid, proc in mapping.assignment.items():
        work = (_duration_of(graph, pid, durations)
                * _firings_per_iteration(graph, pid, items_hint))
        speed = mapping.arch.processors[proc].speed
        if worker_speeds:
            speed *= max(worker_speeds.get(proc, 1.0), 1e-9)
        loads[proc] += work / speed
    return loads


def _replication(mapping: Mapping) -> Dict[str, int]:
    """Distinct processors hosting each farm skeleton's workers."""
    spread: Dict[str, set] = {}
    for pid, process in mapping.graph.processes.items():
        if process.kind == ProcessKind.WORKER and process.skeleton:
            spread.setdefault(process.skeleton, set()).add(
                mapping.assignment[pid]
            )
    return {skeleton: len(procs) for skeleton, procs in spread.items()}


def predict(
    mapping: Mapping,
    *,
    durations: Optional[Dict[str, float]] = None,
    edge_bytes: Optional[Dict[int, int]] = None,
    items_hint: int = 8,
    failure_rate: float = DEFAULT_FAILURE_RATE,
    worker_speeds: Optional[Dict[str, float]] = None,
) -> MappingEstimate:
    """Score one mapping on all three criteria."""
    # Every process gets a duration — measured when available, else the
    # structural kind weight — so latency stays comparable to the period
    # even without a profile (an all-zero critical path would let the
    # search trade real throughput for meaningless latency wins).
    graph = mapping.graph
    effective = {
        pid: _duration_of(graph, pid, durations) for pid in graph.processes
    }
    if worker_speeds:
        # Calibration: a processor measured k-times slower serves every
        # process placed on it k-times slower.
        for pid, proc in mapping.assignment.items():
            mult = worker_speeds.get(proc, 1.0)
            if mult != 1.0:
                effective[pid] = effective[pid] / max(mult, 1e-9)
    routing = route_mapping(mapping)
    static = estimate_latency(
        mapping, routing, effective, edge_bytes, items_hint=items_hint,
    )
    loads = processor_loads(
        mapping, durations=durations, items_hint=items_hint,
        worker_speeds=worker_speeds,
    )
    period = max(loads.values()) if loads else 0.0

    # Reliability: replicated (farm-worker) stages survive unless every
    # hosting processor fails; everything else fails with its processor.
    p = min(max(failure_rate, 0.0), 1.0)
    replication = _replication(mapping)
    # Routers ride with their worker and share its branch's fate (the
    # supervisor reroutes around a lost branch), so only genuinely
    # stateful/singleton processes pin reliability to their processor.
    branch_kinds = (ProcessKind.WORKER, ProcessKind.ROUTER_MW,
                    ProcessKind.ROUTER_WM)
    singleton_procs = {
        mapping.assignment[pid]
        for pid, proc in mapping.graph.processes.items()
        if not (proc.kind in branch_kinds and proc.skeleton)
    }
    reliability = (1.0 - p) ** len(singleton_procs)
    for replicas in replication.values():
        reliability *= 1.0 - p ** max(replicas, 1)

    return MappingEstimate(
        latency_us=static.latency,
        period_us=period,
        reliability=reliability,
        loads=loads,
        replication=replication,
    )


def speeds_from_report(fault_report: Any) -> Dict[str, float]:
    """Measured per-processor speed multipliers from health samples.

    Reads the periodic ``health`` records a supervised run emits (EWMA
    score in ms per worker) and returns ``processor -> median/score``:
    1.0 for a processor tracking the farm median, < 1 for one measured
    slower.  Feed the result to :func:`predict` (``worker_speeds``) to
    close the measure→map loop.
    """
    if fault_report is None:
        return {}
    latest: Dict[str, float] = {}
    when: Dict[str, float] = {}
    for record in fault_report.by_category("health"):
        proc = record.processor or record.target
        if record.value is None:
            continue
        if proc not in when or record.time_us >= when[proc]:
            latest[proc] = record.value
            when[proc] = record.time_us
    scores = sorted(latest.values())
    if not scores:
        return {}
    median = scores[len(scores) // 2]
    if median <= 0:
        return {}
    return {
        proc: median / score if score > 0 else 1.0
        for proc, score in latest.items()
    }
