"""repro.sched — bi-criteria adaptive mapping over the whole stack.

The planning layer the toolchain was missing: a :class:`Scheduler`
interface with registered policies (``round-robin`` baseline, ``aaa``
greedy, ``bicriteria`` Pareto search) routing *both* placement halves —
processes onto processors, mapped processors onto tcp workers — plus
the online side: a count-based :class:`RemapPolicy` migrating work off
degraded workers mid-stream (see
:class:`~repro.faults.supervisor.SupervisedKernel`) and an
:class:`ElasticController` growing the worker pool under sustained
overload.

Static criteria and the calibrated cost model live in
:mod:`repro.sched.costmodel`; the Pareto search in
:mod:`repro.sched.mapper`.  ``repro map`` prints every registered
policy's predicted latency / throughput / reliability for a program.
"""

from .costmodel import (
    MappingEstimate,
    predict,
    processor_loads,
    speeds_from_report,
)
from .elastic import ElasticController, ElasticDecision, ElasticPolicy
from .mapper import Candidate, bicriteria_map, bicriteria_search, pareto_front
from .registry import (
    DEFAULT_SCHEDULER,
    Scheduler,
    get_scheduler,
    list_schedulers,
    register_scheduler,
    resolve_scheduler,
    scheduler_names,
)
from .remap import RemapPolicy

__all__ = [
    "MappingEstimate",
    "predict",
    "processor_loads",
    "speeds_from_report",
    "ElasticController",
    "ElasticDecision",
    "ElasticPolicy",
    "Candidate",
    "bicriteria_map",
    "bicriteria_search",
    "pareto_front",
    "DEFAULT_SCHEDULER",
    "Scheduler",
    "get_scheduler",
    "list_schedulers",
    "register_scheduler",
    "resolve_scheduler",
    "scheduler_names",
    "RemapPolicy",
]
