"""Static bi-criteria mapping: Pareto search seeded by the AAA heuristic.

The AAA list-scheduler (:func:`repro.syndex.distribute.distribute`)
minimises one scalar — load plus separation penalty.  This module turns
its result into the *seed* of a local search over the true criteria
(latency, throughput period, reliability — see
:mod:`repro.sched.costmodel`) in the style of Benoit–Robert et al.'s
bi-criteria pipeline mappings: enumerate single-group moves, keep the
Pareto front, and pick the front point that best answers the caller's
actual question — "fastest mapping under this latency budget" or
"lowest latency at this throughput target".

Constraints are inherited from the seed and never violated by a move:
pinned processes (stream endpoints, farm masters) stay put, and a
colocation group (a worker and the routers riding with it) moves as one
unit, so every candidate passes ``Mapping.validate()`` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..pnt.graph import ProcessGraph, ProcessKind
from ..syndex.arch import Architecture
from ..syndex.distribute import Mapping, _PINNED_KINDS, distribute
from .costmodel import MappingEstimate, predict

__all__ = ["Candidate", "bicriteria_map", "bicriteria_search",
           "pareto_front"]


@dataclass
class Candidate:
    """One evaluated placement."""

    mapping: Mapping
    estimate: MappingEstimate

    def dominated_by(self, other: "Candidate") -> bool:
        """Pareto dominance over (latency, period, reliability)."""
        a, b = self.estimate, other.estimate
        no_worse = (
            b.latency_us <= a.latency_us
            and b.period_us <= a.period_us
            and b.reliability >= a.reliability
        )
        better = (
            b.latency_us < a.latency_us
            or b.period_us < a.period_us
            or b.reliability > a.reliability
        )
        return no_worse and better


def pareto_front(candidates: List[Candidate]) -> List[Candidate]:
    """The non-dominated subset, in (latency, period) order."""
    front = [
        c for c in candidates
        if not any(c.dominated_by(other) for other in candidates)
    ]
    front.sort(key=lambda c: (c.estimate.latency_us, c.estimate.period_us,
                              -c.estimate.reliability))
    # One representative per criteria point (different assignments can
    # score identically; the front is about trade-offs, not aliases).
    unique: List[Candidate] = []
    seen = set()
    for c in front:
        key = (round(c.estimate.latency_us, 6),
               round(c.estimate.period_us, 6),
               round(c.estimate.reliability, 12))
        if key not in seen:
            seen.add(key)
            unique.append(c)
    return unique


def _move_groups(graph: ProcessGraph) -> List[List[str]]:
    """Movable units: colocation groups rooted at a non-pinned anchor.

    Pinned kinds (stream endpoints, MEM) and farm masters keep the
    seed's placement — they are the stateful spine the executive pins to
    the I/O processor.  Everything else moves with its transitive
    colocation group.
    """
    def root_of(pid: str) -> str:
        seen = set()
        while graph[pid].colocate_with is not None:
            if pid in seen:  # defensive: validate() would reject anyway
                break
            seen.add(pid)
            pid = graph[pid].colocate_with
        return pid

    groups: Dict[str, List[str]] = {}
    for pid in sorted(graph.processes):
        groups.setdefault(root_of(pid), []).append(pid)
    movable = []
    for root, members in sorted(groups.items()):
        kind = graph[root].kind
        if kind in _PINNED_KINDS or kind == ProcessKind.MASTER:
            continue
        movable.append(members)
    return movable


def _objective(
    estimate: MappingEstimate,
    latency_budget_us: Optional[float],
    throughput_target_hz: Optional[float],
) -> Tuple:
    """Totally ordered score (smaller is better) for the caller's ask."""
    if latency_budget_us is not None:
        feasible = estimate.latency_us <= latency_budget_us
        return (0 if feasible else 1,
                estimate.period_us if feasible else estimate.latency_us,
                -estimate.reliability, estimate.latency_us)
    if throughput_target_hz is not None and throughput_target_hz > 0:
        period_cap = 1e6 / throughput_target_hz
        feasible = estimate.period_us <= period_cap
        return (0 if feasible else 1,
                estimate.latency_us if feasible else estimate.period_us,
                -estimate.reliability, estimate.period_us)
    return (estimate.latency_us * max(estimate.period_us, 1e-9),
            -estimate.reliability, estimate.latency_us)


def bicriteria_search(
    graph: ProcessGraph,
    arch: Architecture,
    *,
    durations: Optional[Dict[str, float]] = None,
    edge_bytes: Optional[Dict[int, int]] = None,
    comm_factor: float = 1.0,
    items_hint: int = 8,
    latency_budget_us: Optional[float] = None,
    throughput_target_hz: Optional[float] = None,
    worker_speeds: Optional[Dict[str, float]] = None,
    max_rounds: int = 8,
) -> Tuple[Candidate, List[Candidate]]:
    """Run the full search; return (best candidate, Pareto front).

    Deterministic: the seed is the deterministic AAA placement, moves
    are enumerated in sorted order, and ties break toward the incumbent.
    """
    def score(mapping: Mapping) -> MappingEstimate:
        return predict(
            mapping, durations=durations, edge_bytes=edge_bytes,
            items_hint=items_hint, worker_speeds=worker_speeds,
        )

    seed = distribute(
        graph, arch, durations=durations, edge_bytes=edge_bytes,
        comm_factor=comm_factor,
    )
    incumbent = Candidate(seed, score(seed))
    evaluated: List[Candidate] = [incumbent]
    objective = lambda c: _objective(  # noqa: E731 - local shorthand
        c.estimate, latency_budget_us, throughput_target_hz
    )
    groups = _move_groups(graph)
    procs = arch.processor_ids()

    for _ in range(max_rounds):
        best_move: Optional[Candidate] = None
        for members in groups:
            current = incumbent.mapping.assignment[members[0]]
            for proc in procs:
                if proc == current:
                    continue
                assignment = dict(incumbent.mapping.assignment)
                for pid in members:
                    assignment[pid] = proc
                moved = Mapping(graph, arch, assignment)
                candidate = Candidate(moved, score(moved))
                evaluated.append(candidate)
                if best_move is None or \
                        objective(candidate) < objective(best_move):
                    best_move = candidate
        if best_move is None or not objective(best_move) < objective(incumbent):
            break
        incumbent = best_move

    return incumbent, pareto_front(evaluated)


def bicriteria_map(
    graph: ProcessGraph,
    arch: Architecture,
    **criteria,
) -> Mapping:
    """The Pareto-best mapping for the given budget/target (see
    :func:`bicriteria_search` for the keyword criteria)."""
    best, _front = bicriteria_search(graph, arch, **criteria)
    best.mapping.validate()
    return best.mapping
