"""Elastic scale-up: grow the worker pool when admission pressure says so.

The realtime layer already *sheds* frames under ``input-surge`` overload
(bounded queues, ``shed-oldest``/``shed-newest`` policies) — capacity
protection, not capacity.  The elastic controller adds the capacity:
feed it pressure observations (shed counts, queue depth) and it grows a
:class:`~repro.net.harness.ClusterHarness` via ``scale_to`` when the
overload sustains, with hysteresis so one burst never flaps the pool.

The controller is deliberately duck-typed over "anything with
``size`` and ``scale_to(n)``" and takes observations by explicit call —
no sampling thread of its own — so it is trivially testable and the
caller decides the cadence (a soak loop per frame batch, the serve
plane per stats tick).  Scaling is up-only: workers are cheap to keep
and tearing them down mid-stream would re-create the very latency spike
the controller exists to absorb.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["ElasticPolicy", "ElasticDecision", "ElasticController"]


@dataclass(frozen=True)
class ElasticPolicy:
    """When sustained overload buys new workers."""

    #: Hard ceiling on pool size (the budget).
    max_workers: int = 8
    #: Pressure above this counts as an overloaded observation.  The
    #: unit is the caller's (shed frames since last observation, queued
    #: tickets, ...); zero means "any pressure at all".
    surge_threshold: float = 0.0
    #: Consecutive overloaded observations before scaling (hysteresis).
    sustain: int = 2
    #: Workers added per scale-up step.
    step: int = 1
    #: Seconds between scale-ups (cool-down against flapping).
    cooldown_s: float = 2.0

    def __post_init__(self):
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.sustain < 1:
            raise ValueError("sustain must be >= 1")
        if self.step < 1:
            raise ValueError("step must be >= 1")


@dataclass
class ElasticDecision:
    """One scale-up the controller performed."""

    at: float
    pressure: float
    size_before: int
    size_after: int


class ElasticController:
    """Turns pressure observations into ``harness.scale_to`` calls."""

    def __init__(self, harness: Any, policy: Optional[ElasticPolicy] = None,
                 *, clock=time.monotonic):
        self.harness = harness
        self.policy = policy or ElasticPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._overloaded_streak = 0
        self._last_scale_at: Optional[float] = None
        self.decisions: List[ElasticDecision] = []

    @property
    def size(self) -> int:
        return self.harness.size

    def observe(self, pressure: float) -> Optional[ElasticDecision]:
        """One pressure sample; returns the scale-up it triggered, if any.

        ``pressure`` is whatever overload signal the caller owns —
        frames shed since the last call, current queue depth, in-flight
        backlog.  Anything above the policy threshold extends the
        overloaded streak; anything at/below it resets the streak.
        """
        with self._lock:
            if pressure > self.policy.surge_threshold:
                self._overloaded_streak += 1
            else:
                self._overloaded_streak = 0
                return None
            if self._overloaded_streak < self.policy.sustain:
                return None
            now = self._clock()
            if (self._last_scale_at is not None
                    and now - self._last_scale_at < self.policy.cooldown_s):
                return None
            before = self.harness.size
            target = min(before + self.policy.step, self.policy.max_workers)
            if target <= before:
                return None  # at the ceiling
            self.harness.scale_to(target)
            self._last_scale_at = now
            self._overloaded_streak = 0
            decision = ElasticDecision(now, pressure, before, target)
            self.decisions.append(decision)
            return decision
