"""Tracking-quality metrics against synthetic ground truth.

The paper evaluates the tracker qualitatively ("satisfy the timing
constraints"); with a synthetic scene we can also measure *accuracy*:
per-frame mark-detection recall/precision, pixel residuals, and 3D pose
error of the recovered tracks.  Used by the accuracy benchmarks and the
tracking examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..vision.features import Mark
from .synthetic import TrackingScene
from .tracker import TrackerState

__all__ = ["DetectionScore", "score_detections", "pose_errors", "depth_rmse"]


@dataclass(frozen=True)
class DetectionScore:
    """Mark-detection quality for one frame."""

    true_positives: int
    false_positives: int
    false_negatives: int
    mean_residual_px: float

    @property
    def recall(self) -> float:
        found = self.true_positives + self.false_negatives
        return self.true_positives / found if found else 1.0

    @property
    def precision(self) -> float:
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 1.0


def score_detections(
    scene: TrackingScene,
    frame: int,
    detections: Sequence[Mark],
    *,
    tolerance_px: float = 3.0,
) -> DetectionScore:
    """Match detections to the frame's ground-truth marks (greedy
    nearest-first within ``tolerance_px``)."""
    truth: List[Tuple[float, float]] = [
        center for vehicle in scene.truth_marks(frame) for center in vehicle
    ]
    pairs = []
    for d_idx, mark in enumerate(detections):
        for t_idx, (row, col) in enumerate(truth):
            dist = math.hypot(mark.row - row, mark.col - col)
            if dist <= tolerance_px:
                pairs.append((dist, d_idx, t_idx))
    pairs.sort()
    used_d, used_t = set(), set()
    residuals = []
    for dist, d_idx, t_idx in pairs:
        if d_idx in used_d or t_idx in used_t:
            continue
        used_d.add(d_idx)
        used_t.add(t_idx)
        residuals.append(dist)
    tp = len(residuals)
    return DetectionScore(
        true_positives=tp,
        false_positives=len(detections) - tp,
        false_negatives=len(truth) - tp,
        mean_residual_px=sum(residuals) / tp if tp else 0.0,
    )


def pose_errors(
    scene: TrackingScene, frame: int, state: TrackerState
) -> List[Tuple[float, float]]:
    """(lateral, depth) absolute error per track, matched to the nearest
    ground-truth vehicle."""
    vehicles = scene.vehicles_at(frame)
    errors = []
    for track in state.tracks:
        best = min(
            vehicles,
            key=lambda v: abs(v.x - track.x) + abs(v.z - track.z),
        )
        errors.append((abs(best.x - track.x), abs(best.z - track.z)))
    return errors


def depth_rmse(
    scene: TrackingScene, frame: int, state: TrackerState
) -> float:
    """Root-mean-square depth error over all tracks (metres)."""
    errors = pose_errors(scene, frame, state)
    if not errors:
        return float("inf")
    return math.sqrt(sum(dz * dz for _dx, dz in errors) / len(errors))
