"""The complete vehicle-tracking application of §4, SKiPPER-style.

Bundles everything the paper's programmer writes — the sequential
functions (here Python instead of C) and the few-line Caml
specification — plus the synthetic video source standing in for the
in-car camera.

One deviation from the paper's prototypes, for functional honesty:
``predict`` takes the previous state as an explicit input
(``predict state marks``) instead of keeping C ``static`` history, so
the constant-velocity 3D trajectory model stays a pure function and the
sequential/parallel equivalence is exact by construction.  ``detect_mark``
returns a *list* of marks per window (a reinitialisation band contains
many), with ``accum_marks`` concatenating — the obvious generalisation
of the paper's one-mark prototype.

Cost models are calibrated to the T9000-class machine (see
EXPERIMENTS.md): detection costs ``DETECT_FIXED + DETECT_PER_PIXEL`` per
window pixel, which reproduces the paper's 30 ms tracking / 110 ms
reinitialisation latencies on an 8-processor ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..core.functions import FunctionTable
from ..vision.features import Mark, extract_marks
from ..vision.image import Image
from ..vision.windows import Window
from .model import Camera, MarkLayout, Vehicle
from .synthetic import Occlusion, TrackingScene, VideoSource
from .tracker import (
    TrackerConfig,
    TrackerState,
    initial_state,
    plan_windows,
    update_tracks,
)

__all__ = ["TrackingApp", "CASE_STUDY_SPEC", "build_tracking_app", "default_scene"]

#: The paper's functional specification (§4), with the explicit-state
#: ``predict`` described above.
CASE_STUDY_SPEC = """
let nproc = {nproc};;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks [] ws in
  let ms, st = predict state marks in
  (st, ms);;
let main = itermem read_img loop display_marks s0 ({nrows},{ncols});;
"""

#: The paper's video timing: 25 Hz PAL — one frame every 40 ms, which is
#: also the per-frame latency budget the tracking phase must hold.
FRAME_PERIOD_MS = 40.0

# T9000-class calibration (µs) — see EXPERIMENTS.md for the derivation.
READ_COST = 1_500.0
INIT_COST = 100.0
WINDOW_FIXED = 500.0
WINDOW_PER_PIXEL = 0.05  # block-move cost per pixel copied
DETECT_FIXED = 2_500.0
DETECT_PER_PIXEL = 2.0
ACCUM_FIXED = 20.0
ACCUM_PER_MARK = 5.0
PREDICT_FIXED = 500.0
PREDICT_PER_MARK_SQ = 30.0
DISPLAY_COST = 300.0


@dataclass
class TrackingApp:
    """A ready-to-run instance of the case study.

    ``displayed`` collects what ``display_marks`` would have drawn, one
    mark list per processed frame.
    """

    source: str
    table: FunctionTable
    video: VideoSource
    scene: TrackingScene
    config: TrackerConfig
    nproc: int
    displayed: List[List[Mark]] = field(default_factory=list)

    def rewind(self) -> None:
        """Restart the video and clear collected output (for a re-run)."""
        self.video.rewind()
        self.displayed.clear()

    def latency_budget(self, *, policy: str = "shed-oldest",
                       max_in_flight: int = 2):
        """The 25 Hz contract as a runtime budget (deadline = period).

        Attach it to a run (``built.run(budget=app.latency_budget())``)
        and the realtime layer enforces the paper's frame rate instead
        of merely measuring it: the watchdog flags any frame still in
        flight past 40 ms, and the overload policy decides what the
        grabber does when the tracker falls behind — the paper's
        reinitialisation phase drops to "one image out of 3" exactly
        this way.
        """
        from ..realtime import LatencyBudget

        return LatencyBudget(
            deadline_ms=FRAME_PERIOD_MS,
            policy=policy,
            max_in_flight=max_in_flight,
            frame_period_ms=FRAME_PERIOD_MS,
        )


def default_scene(
    *,
    n_vehicles: int = 1,
    frame_size: int = 512,
    noise_sigma: float = 4.0,
    occlusions: Tuple[Occlusion, ...] = (),
    seed: int = 0,
) -> TrackingScene:
    """A standard test scene: 1-3 vehicles cruising ahead of the camera."""
    if not (1 <= n_vehicles <= 3):
        raise ValueError("the paper tracks one to three lead vehicles")
    camera = Camera(
        focal=frame_size * 800.0 / 512.0,
        cx=frame_size / 2.0,
        cy=frame_size / 2.0,
        nrows=frame_size,
        ncols=frame_size,
    )
    lanes = [0.0, -2.5, 2.5]
    depths = [18.0, 26.0, 34.0]
    speeds = [(0.0, 0.8), (0.15, -0.5), (-0.1, 0.3)]
    vehicles = [
        Vehicle(x=lanes[i], z=depths[i], vx=speeds[i][0], vz=speeds[i][1])
        for i in range(n_vehicles)
    ]
    return TrackingScene(
        vehicles=vehicles,
        camera=camera,
        noise_sigma=noise_sigma,
        occlusions=occlusions,
        seed=seed,
    )


def build_tracking_app(
    *,
    nproc: int = 8,
    n_frames: int = 10,
    scene: Optional[TrackingScene] = None,
    n_vehicles: int = 1,
    frame_size: int = 512,
    seed: int = 0,
    occlusions: Tuple[Occlusion, ...] = (),
) -> TrackingApp:
    """Assemble the case-study application.

    Returns a :class:`TrackingApp` whose table registers the paper's
    sequential functions with T9000-calibrated cost models, ready for
    both sequential emulation and simulated parallel execution.
    """
    if scene is None:
        scene = default_scene(
            n_vehicles=n_vehicles,
            frame_size=frame_size,
            seed=seed,
            occlusions=occlusions,
        )
    else:
        n_vehicles = len(scene.vehicles)
        frame_size = scene.camera.nrows
    video = VideoSource(scene, n_frames)
    config = TrackerConfig(camera=scene.camera, layout=MarkLayout(), n_vehicles=n_vehicles)
    table = FunctionTable()
    app = TrackingApp(
        source=CASE_STUDY_SPEC.format(
            nproc=nproc, nrows=scene.camera.nrows, ncols=scene.camera.ncols
        ),
        table=table,
        video=video,
        scene=scene,
        config=config,
        nproc=nproc,
    )

    @table.register("read_img", ins=["int * int"], outs=["img"], cost=READ_COST,
                    doc="grab the next video frame")
    def read_img(shape):
        return video.read(shape)

    @table.register("init_state", ins=[], outs=["state"], cost=INIT_COST,
                    doc="initial tracker memory (reinitialisation mode)")
    def init_state_fn():
        return initial_state(config)

    @table.register(
        "get_windows",
        ins=["int", "state", "img"],
        outs=["window list"],
        cost=lambda n, state, im: WINDOW_FIXED
        + WINDOW_PER_PIXEL
        * (im.nrows * im.ncols if not state.tracking else
           len(state.tracks) * 3 * (4 * config.min_window) ** 2),
        doc="windows of interest for the current frame",
    )
    def get_windows(n: int, state: TrackerState, im: Image) -> List[Window]:
        return plan_windows(n, state, im)

    @table.register(
        "detect_mark",
        ins=["window"],
        outs=["mark list"],
        cost=lambda w: DETECT_FIXED + DETECT_PER_PIXEL * w.area,
        doc="threshold + connected components + centroid/frame per window",
    )
    def detect_mark(w: Window) -> List[Mark]:
        return extract_marks(
            w.pixels,
            level=config.threshold,
            min_pixels=config.min_mark_pixels,
            origin=w.origin,
        )

    @table.register(
        "accum_marks",
        ins=["mark list", "mark list"],
        outs=["mark list"],
        cost=lambda old, new: ACCUM_FIXED + ACCUM_PER_MARK * len(new),
        doc="order-insensitive accumulation of per-window detections",
    )
    def accum_marks(old: List[Mark], new: List[Mark]) -> List[Mark]:
        # Sorted concatenation => insensitive to farm completion order,
        # the correctness condition the paper imposes on df accumulators.
        return sorted(old + new, key=lambda m: (m.row, m.col))

    @table.register(
        "predict",
        ins=["state", "mark list"],
        outs=["mark list", "state"],
        cost=lambda state, marks: PREDICT_FIXED
        + PREDICT_PER_MARK_SQ * len(marks) ** 2,
        doc="rigidity grouping + 3D trajectory update + next-window prediction",
    )
    def predict(state: TrackerState, marks: List[Mark]):
        display, next_state = update_tracks(state, marks)
        return display, next_state

    @table.register("display_marks", ins=["mark list"], cost=DISPLAY_COST,
                    doc="overlay detected marks on the operator display")
    def display_marks(ms: List[Mark]) -> None:
        app.displayed.append(ms)

    return app
