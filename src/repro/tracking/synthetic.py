"""Synthetic video generation for the tracking case study.

Substitutes for the paper's in-car camera: renders the 3D scene of
:mod:`repro.tracking.model` into 8-bit frames at 25 Hz, with sensor
noise and optional occlusion events (a mark disappearing for a few
frames — the "occultations" whose handling §4 attributes to the rigidity
criteria, and which force the tracker through its reinitialisation
path).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.semantics import EndOfStream
from ..vision.image import Image
from ..vision.synth import draw_blob
from ..vision.ops import add_noise
from .model import Camera, Vehicle, project_vehicle

__all__ = ["Occlusion", "TrackingScene", "VideoSource"]


@dataclass(frozen=True)
class Occlusion:
    """Hide mark ``mark_index`` of vehicle ``vehicle_index`` during
    frames [start, end)."""

    vehicle_index: int
    mark_index: int
    start: int
    end: int

    def active(self, frame: int) -> bool:
        return self.start <= frame < self.end


@dataclass
class TrackingScene:
    """A reproducible synthetic road scene.

    ``vehicles`` hold *initial* states; rendering at frame ``k`` advances
    each by ``k / fps`` seconds, so the scene is stateless and any frame
    can be rendered independently (and the ground truth queried).
    """

    vehicles: List[Vehicle]
    camera: Camera = field(default_factory=Camera)
    fps: float = 25.0
    background: int = 25
    mark_intensity: int = 240
    noise_sigma: float = 4.0
    occlusions: Sequence[Occlusion] = ()
    seed: int = 0

    def vehicles_at(self, frame: int) -> List[Vehicle]:
        t = frame / self.fps
        return [v.at(t) for v in self.vehicles]

    def truth_marks(self, frame: int) -> List[List[Tuple[float, float]]]:
        """Visible mark centres (row, col) per vehicle at ``frame``.

        Occluded marks are excluded, matching what the renderer draws.
        """
        out: List[List[Tuple[float, float]]] = []
        for vi, vehicle in enumerate(self.vehicles_at(frame)):
            marks = []
            projections = project_vehicle(self.camera, vehicle)
            for mi, (center, _radius) in enumerate(projections):
                if any(
                    o.active(frame) and o.vehicle_index == vi and o.mark_index == mi
                    for o in self.occlusions
                ):
                    continue
                marks.append(center)
            out.append(marks)
        return out

    def render(self, frame: int) -> Image:
        """Render frame ``k`` (deterministic per frame index and seed)."""
        img = Image.full(self.camera.nrows, self.camera.ncols, self.background)
        for vi, vehicle in enumerate(self.vehicles_at(frame)):
            for mi, (center, radius) in enumerate(
                project_vehicle(self.camera, vehicle)
            ):
                if any(
                    o.active(frame) and o.vehicle_index == vi and o.mark_index == mi
                    for o in self.occlusions
                ):
                    continue
                draw_blob(img, center, (radius, radius), self.mark_intensity)
        if self.noise_sigma > 0:
            rng = np.random.default_rng(self.seed * 100_003 + frame)
            img = add_noise(img, self.noise_sigma, rng)
        return img


class VideoSource:
    """A bounded frame stream backed by a :class:`TrackingScene`.

    Behaves like the grabber of the Transvision machine: ``read()``
    returns the next frame, raising
    :class:`~repro.core.semantics.EndOfStream` when ``n_frames`` have
    been served.  ``rewind()`` restarts the stream so the same source
    can feed the sequential emulation and the simulated parallel run.
    """

    def __init__(self, scene: TrackingScene, n_frames: int):
        self.scene = scene
        self.n_frames = n_frames
        self._next = 0

    def read(self, _shape=None) -> Image:
        if self._next >= self.n_frames:
            raise EndOfStream
        frame = self.scene.render(self._next)
        self._next += 1
        return frame

    def rewind(self) -> None:
        self._next = 0

    @property
    def frames_served(self) -> int:
        return self._next

    def __iter__(self) -> Iterator[Image]:
        while True:
            try:
                yield self.read()
            except EndOfStream:
                return
