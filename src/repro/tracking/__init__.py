"""The vehicle detection and tracking application (paper section 4)."""

from .model import Camera, MarkLayout, Vehicle, project_vehicle
from .synthetic import Occlusion, TrackingScene, VideoSource
from .tracker import (
    TrackerConfig,
    TrackerState,
    VehicleTrack,
    group_marks,
    initial_state,
    plan_windows,
    update_tracks,
)
from .app import CASE_STUDY_SPEC, TrackingApp, build_tracking_app, default_scene
from .metrics import DetectionScore, depth_rmse, pose_errors, score_detections

__all__ = [
    "Camera",
    "MarkLayout",
    "Vehicle",
    "project_vehicle",
    "Occlusion",
    "TrackingScene",
    "VideoSource",
    "TrackerConfig",
    "TrackerState",
    "VehicleTrack",
    "group_marks",
    "initial_state",
    "plan_windows",
    "update_tracks",
    "CASE_STUDY_SPEC",
    "TrackingApp",
    "build_tracking_app",
    "default_scene",
    "DetectionScore",
    "score_detections",
    "pose_errors",
    "depth_rmse",
]
