"""3D vehicle and camera models for the tracking case study.

Section 4: "A video camera, installed in a car, provides a gray level
image of several lead vehicles (one to three, in practice).  Each lead
vehicle is equipped with three visual marks, placed on the top and at
the back of it."

We model each lead vehicle as a rigid triangle of retro-reflective
marks — two *bottom* marks at bumper height separated by a known
baseline, one *top* mark centred above them — seen through a pinhole
camera.  The known baseline is what lets the tracker recover depth from
a single camera (the paper's "3D-modelling of each vehicle trajectory").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

__all__ = ["Camera", "MarkLayout", "Vehicle", "project_vehicle"]


@dataclass(frozen=True)
class Camera:
    """A pinhole camera.

    Coordinates: x lateral (right positive, metres), y up, z forward
    (distance from the camera).  A world point projects to::

        col = cx + focal * x / z
        row = cy - focal * y / z

    ``focal`` is expressed in pixels.
    """

    focal: float = 800.0
    cx: float = 256.0
    cy: float = 256.0
    nrows: int = 512
    ncols: int = 512

    def project(self, x: float, y: float, z: float) -> Tuple[float, float]:
        """World point -> (row, col); ``z`` must be positive."""
        if z <= 0:
            raise ValueError(f"point behind the camera: z={z}")
        col = self.cx + self.focal * x / z
        row = self.cy - self.focal * y / z
        return (row, col)

    def mark_radius_px(self, radius_m: float, z: float) -> float:
        """Apparent radius of a circular mark at distance ``z``."""
        if z <= 0:
            raise ValueError(f"mark behind the camera: z={z}")
        return self.focal * radius_m / z

    def depth_from_baseline(self, baseline_m: float, pixel_span: float) -> float:
        """Distance recovered from the apparent bottom-pair spacing."""
        if pixel_span <= 0:
            raise ValueError(f"non-positive pixel span {pixel_span}")
        return self.focal * baseline_m / pixel_span

    def lateral_from_col(self, col: float, z: float) -> float:
        """Lateral offset of a point at depth ``z`` seen at column ``col``."""
        return (col - self.cx) * z / self.focal


@dataclass(frozen=True)
class MarkLayout:
    """The rigid geometry of a vehicle's three marks (metres).

    ``baseline`` separates the two bottom marks; the top mark sits
    ``top_height`` above the bottom row, centred.  ``mark_radius`` is
    the physical radius of each circular reflector.
    """

    baseline: float = 1.2
    bottom_height: float = 1.4
    top_height: float = 0.5  # above the bottom marks
    mark_radius: float = 0.10

    def local_marks(self) -> List[Tuple[float, float]]:
        """(dx, dy) offsets of the three marks from the vehicle anchor.

        The anchor is the midpoint of the bottom pair at bottom height.
        Order: bottom-left, bottom-right, top.
        """
        half = self.baseline / 2.0
        return [(-half, 0.0), (half, 0.0), (0.0, self.top_height)]


@dataclass
class Vehicle:
    """A lead vehicle with a constant-velocity 3D trajectory.

    ``x``/``z`` locate the anchor point (midpoint of the bottom marks);
    ``vx``/``vz`` are velocities in m/s.  ``layout`` gives the rigid mark
    triangle.
    """

    x: float
    z: float
    vx: float = 0.0
    vz: float = 0.0
    layout: MarkLayout = field(default_factory=MarkLayout)

    def at(self, t: float) -> "Vehicle":
        """The vehicle's state after ``t`` seconds."""
        return replace(self, x=self.x + self.vx * t, z=self.z + self.vz * t)

    def step(self, dt: float) -> None:
        """Advance in place by ``dt`` seconds."""
        self.x += self.vx * dt
        self.z += self.vz * dt

    def mark_positions(self) -> List[Tuple[float, float, float]]:
        """World (x, y, z) of the three marks: bottom-left, bottom-right, top."""
        out = []
        for dx, dy in self.layout.local_marks():
            out.append((self.x + dx, self.layout.bottom_height + dy, self.z))
        return out


def project_vehicle(
    camera: Camera, vehicle: Vehicle
) -> List[Tuple[Tuple[float, float], float]]:
    """Project a vehicle's marks: list of ((row, col), radius_px).

    Marks behind the camera or (whose centres are) outside the frame are
    dropped — the synthetic renderer and the ground-truth oracle both
    rely on this clipping.
    """
    out = []
    for x, y, z in vehicle.mark_positions():
        if z <= 0.5:  # too close / behind: invisible
            continue
        row, col = camera.project(x, y, z)
        if not (0 <= row < camera.nrows and 0 <= col < camera.ncols):
            continue
        out.append(((row, col), camera.mark_radius_px(vehicle.layout.mark_radius, z)))
    return out
