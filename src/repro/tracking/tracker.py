"""The predict-then-verify vehicle tracker of the paper's §4.

Algorithm, as described:

* detection finds marks — connected pixel groups above a threshold —
  and characterises each by centroid + englobing frame;
* "the englobing frames of marks detected at iteration i are used to
  predict the position and size of the windows of interest in which the
  detection process will search for marks at iteration i+1.  This is
  done using a 3D-modelling of each vehicle trajectory, coupled to a set
  of rigidity criteria to resolve ambiguous cases (occultations, etc)";
* "if less than three marks were detected at iteration i, it is assumed
  that the prediction failed, and windows of interest are obtained by
  dividing up the whole image into n equally-sized sub-windows".

The 3D model: each vehicle's two bottom marks have a known physical
baseline, so their pixel spacing yields depth; the centroid column
yields lateral offset; a constant-velocity filter on (x, z) predicts the
next pose, which projects to the next windows of interest.  The rigidity
criteria validate candidate mark triples against the known triangle
geometry (bottom pair level and correctly spaced, top mark centred
above).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..vision.features import Mark
from ..vision.image import Image, Rect
from ..vision.windows import Window, tile_image, windows_around
from .model import Camera, MarkLayout

__all__ = [
    "TrackerConfig",
    "VehicleTrack",
    "TrackerState",
    "initial_state",
    "plan_windows",
    "group_marks",
    "update_tracks",
]


@dataclass(frozen=True)
class TrackerConfig:
    """Static tracker parameters (camera intrinsics + rigid geometry)."""

    camera: Camera = field(default_factory=Camera)
    layout: MarkLayout = field(default_factory=MarkLayout)
    #: How many lead vehicles the application expects (1-3 in the paper).
    n_vehicles: int = 1
    #: Half-size margin added around each predicted mark window, as a
    #: multiple of the predicted mark radius.
    window_margin: float = 7.0
    #: Minimum half-size of a search window (pixels).
    min_window: int = 8
    #: Rigidity tolerances (fractions of the expected quantity).
    row_tolerance: float = 0.25
    spacing_tolerance: float = 0.35
    #: Plausible depth range (metres) for candidate bottom pairs.
    z_min: float = 3.0
    z_max: float = 80.0
    #: Minimum pixels for a detected component to count as a mark.
    min_mark_pixels: int = 3
    #: Detection threshold (gray level).
    threshold: int = 120


@dataclass(frozen=True)
class VehicleTrack:
    """One tracked vehicle: 3D pose estimate + last seen marks."""

    x: float
    z: float
    vx: float = 0.0  # metres / frame
    vz: float = 0.0
    marks: Tuple[Tuple[float, float], ...] = ()  # (row, col) bl, br, top
    age: int = 0

    def predicted_pose(self) -> Tuple[float, float]:
        return (self.x + self.vx, self.z + self.vz)


@dataclass(frozen=True)
class TrackerState:
    """The itermem memory value: mode + per-vehicle tracks."""

    config: TrackerConfig
    mode: str = "reinit"  # "track" | "reinit"
    tracks: Tuple[VehicleTrack, ...] = ()
    iteration: int = 0

    @property
    def tracking(self) -> bool:
        return self.mode == "track"


def initial_state(config: Optional[TrackerConfig] = None) -> TrackerState:
    """The paper's ``init_state``: no tracks, reinitialisation mode."""
    return TrackerState(config=config or TrackerConfig())


# -- window planning (get_windows) --------------------------------------------


def _predicted_mark_positions(
    config: TrackerConfig, track: VehicleTrack
) -> List[Tuple[float, float, float]]:
    """Predicted (row, col, radius_px) of each mark next frame."""
    x, z = track.predicted_pose()
    z = max(z, config.z_min / 2)
    camera, layout = config.camera, config.layout
    out = []
    for dx, dy in layout.local_marks():
        row, col = camera.project(x + dx, layout.bottom_height + dy, z)
        out.append((row, col, camera.mark_radius_px(layout.mark_radius, z)))
    return out


def plan_windows(nproc: int, state: TrackerState, frame: Image) -> List[Window]:
    """The paper's ``get_windows``.

    Tracking mode: one window of interest per predicted mark (3 per
    vehicle — the 3/6/9 of §4), sized from the predicted apparent mark
    size.  Reinitialisation: ``nproc`` equal bands covering the frame.
    """
    if not state.tracking or not state.tracks:
        return tile_image(frame, nproc)
    config = state.config
    rects: List[Rect] = []
    for track in state.tracks:
        for row, col, radius in _predicted_mark_positions(config, track):
            half = max(config.min_window, int(math.ceil(radius * config.window_margin)))
            rects.append(
                Rect(int(round(row)) - half, int(round(col)) - half,
                     2 * half, 2 * half)
            )
    return windows_around(frame, rects)


# -- rigidity grouping ---------------------------------------------------


@dataclass(frozen=True)
class VehicleObservation:
    """A validated mark triple with its recovered 3D pose."""

    marks: Tuple[Mark, Mark, Mark]  # bottom-left, bottom-right, top
    x: float
    z: float
    residual: float

    def mark_centers(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(m.center for m in self.marks)


def _triple_residual(
    config: TrackerConfig, bl: Mark, br: Mark, top: Mark
) -> Optional[Tuple[float, float, float]]:
    """Validate a candidate triple; returns (x, z, residual) or None.

    Rigidity criteria: the bottom pair must be level and spaced like the
    known baseline at a plausible depth; the top mark must sit centred
    above the pair at the height the depth implies.
    """
    camera, layout = config.camera, config.layout
    spacing = br.col - bl.col
    if spacing <= 0:
        return None
    z = camera.depth_from_baseline(layout.baseline, spacing)
    if not (config.z_min <= z <= config.z_max):
        return None
    # Bottom pair must be level (tolerance scales with apparent size).
    level_tol = config.row_tolerance * spacing
    if abs(br.row - bl.row) > level_tol:
        return None
    # Top mark: centred above the pair, at the projected triangle height.
    expected_rise = camera.focal * layout.top_height / z
    mid_col = (bl.col + br.col) / 2.0
    mid_row = (bl.row + br.row) / 2.0
    d_col = abs(top.col - mid_col)
    d_row = abs((mid_row - top.row) - expected_rise)
    if d_col > config.spacing_tolerance * spacing:
        return None
    if d_row > config.spacing_tolerance * expected_rise + level_tol:
        return None
    x = camera.lateral_from_col(mid_col, z)
    residual = (abs(br.row - bl.row) + d_col + d_row) / max(spacing, 1.0)
    return (x, z, residual)


def group_marks(
    config: TrackerConfig, marks: Sequence[Mark]
) -> List[VehicleObservation]:
    """Group detected marks into vehicles using the rigidity criteria.

    Examines every (bottom-left, bottom-right, top) candidate triple,
    keeps those passing :func:`_triple_residual`, then greedily selects
    non-overlapping triples by ascending residual (best geometry first)
    up to ``config.n_vehicles``.
    """
    candidates: List[Tuple[float, VehicleObservation]] = []
    n = len(marks)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            bl, br = marks[i], marks[j]
            if bl.col >= br.col:
                continue
            for k in range(n):
                if k in (i, j):
                    continue
                top = marks[k]
                if top.row >= min(bl.row, br.row):
                    continue  # top mark must be above the pair
                fit = _triple_residual(config, bl, br, top)
                if fit is None:
                    continue
                x, z, residual = fit
                candidates.append(
                    (residual, VehicleObservation((bl, br, top), x, z, residual))
                )
    candidates.sort(key=lambda c: c[0])
    chosen: List[VehicleObservation] = []
    used: set = set()
    for _residual, obs in candidates:
        ids = {id(m) for m in obs.marks}
        if ids & used:
            continue
        chosen.append(obs)
        used |= ids
        if len(chosen) >= config.n_vehicles:
            break
    # Report left-to-right for determinism.
    chosen.sort(key=lambda o: o.x)
    return chosen


# -- track update (the core of ``predict``) ------------------------------------


def _dedupe_marks(marks: Sequence[Mark], tol: float = 3.0) -> List[Mark]:
    """Collapse duplicate detections of the same physical mark.

    Windows of interest overlap (three per vehicle, each large enough to
    absorb inter-frame motion), so one reflector is often detected in
    several windows.  Marks whose centres fall within ``tol`` pixels are
    one physical mark; the detection with the most support (pixel count)
    wins.
    """
    kept: List[Mark] = []
    for mark in sorted(marks, key=lambda m: -m.pixel_count):
        if all(mark.distance_to(existing) > tol for existing in kept):
            kept.append(mark)
    return kept


def update_tracks(
    state: TrackerState, marks: Sequence[Mark]
) -> Tuple[List[Mark], TrackerState]:
    """One prediction step: marks -> (marks to display, next state).

    Matches vehicle observations to existing tracks (nearest (x, z)),
    updates the constant-velocity estimates, and decides the next mode:
    tracking requires every expected vehicle seen with all three marks,
    otherwise the next iteration reinitialises (§4's failure rule).
    """
    config = state.config
    observations = group_marks(config, _dedupe_marks(marks))

    new_tracks: List[VehicleTrack] = []
    available = list(state.tracks)
    for obs in observations:
        best_idx, best_d = None, None
        for idx, track in enumerate(available):
            d = math.hypot(track.x - obs.x, track.z - obs.z)
            if best_d is None or d < best_d:
                best_idx, best_d = idx, d
        if best_idx is not None and best_d is not None and best_d < 5.0:
            prev = available.pop(best_idx)
            new_tracks.append(
                VehicleTrack(
                    x=obs.x,
                    z=obs.z,
                    vx=obs.x - prev.x,
                    vz=obs.z - prev.z,
                    marks=obs.mark_centers(),
                    age=prev.age + 1,
                )
            )
        else:
            new_tracks.append(
                VehicleTrack(x=obs.x, z=obs.z, marks=obs.mark_centers())
            )
    new_tracks.sort(key=lambda t: t.x)

    complete = len(observations) >= config.n_vehicles and all(
        len(o.marks) == 3 for o in observations
    )
    next_mode = "track" if complete else "reinit"
    next_state = replace(
        state,
        mode=next_mode,
        tracks=tuple(new_tracks),
        iteration=state.iteration + 1,
    )
    display = [m for obs in observations for m in obs.marks]
    return display, next_state
