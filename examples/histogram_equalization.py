"""Parallel histogram equalisation — the tutorial application.

Two chained ``scm`` instances per frame inside an ``itermem`` loop:
a reduction (per-band histograms merged by addition) computes the
global histogram, a sequential function derives the equalisation LUT,
and a second ``scm`` remaps the pixels band by band.  See
docs/TUTORIAL.md for the step-by-step walk-through.

Run:  python examples/histogram_equalization.py
"""

import numpy as np

from repro import EndOfStream, FunctionTable, T9000, build
from repro.syndex import ring
from repro.vision import (
    Image,
    apply_lut,
    equalization_lut,
    equalize,
    histogram,
    merge_image,
    split_rows,
)

SHAPE = (128, 128)
N_FRAMES = 4


def make_table():
    table = FunctionTable()
    count = {"i": 0}
    written = []

    @table.register("read_frame", ins=["int * int"], outs=["img"], cost=1_000.0)
    def read_frame(_shape):
        k = count["i"]
        if k >= N_FRAMES:
            raise EndOfStream
        count["i"] += 1
        # Low-contrast synthetic frames whose brightness drifts.
        rng = np.random.default_rng(k)
        base = 90 + 10 * k
        pixels = rng.normal(base, 6.0, SHAPE)
        return Image(np.clip(pixels, 0, 255).astype(np.uint8))

    @table.register(
        "split_bands", ins=["int", "img"], outs=["band list"],
        cost=lambda n, im: 200.0 + 0.05 * im.nrows * im.ncols,
    )
    def split_bands(n, image):
        return split_rows(image, n)

    @table.register(
        "band_hist", ins=["band"], outs=["hist"],
        cost=lambda d: 100.0 + 1.0 * d.pixels.nrows * d.pixels.ncols,
    )
    def band_hist(domain):
        return histogram(domain.pixels)

    @table.register(
        "sum_hists", ins=["img", "hist list"], outs=["hist"],
        cost=lambda im, parts: 50.0 + 2.0 * len(parts),
    )
    def sum_hists(_image, partials):
        return sum(partials)

    @table.register(
        "lut_of", ins=["lut", "img", "hist"], outs=["job"], cost=300.0,
        doc="derive the LUT and bundle it with the frame for phase 2",
    )
    def lut_of(_prev_lut, image, hist):
        return (equalization_lut(hist), image)

    @table.register(
        "split_job", ins=["int", "job"], outs=["piece list"],
        cost=lambda n, job: 200.0 + 0.05 * job[1].nrows * job[1].ncols,
    )
    def split_job(n, job):
        lut, image = job
        return [(lut, domain) for domain in split_rows(image, n)]

    @table.register(
        "remap_band", ins=["piece"], outs=["done"],
        cost=lambda piece: 100.0 + 0.8 * piece[1].pixels.nrows * piece[1].pixels.ncols,
    )
    def remap_band(piece):
        lut, domain = piece
        return (domain, apply_lut(domain.pixels, lut))

    @table.register(
        "rebuild", ins=["job", "done list"], outs=["img"],
        cost=lambda job, parts: 200.0 + 0.05 * job[1].nrows * job[1].ncols,
    )
    def rebuild(job, parts):
        _lut, image = job
        domains = [d for d, _res in parts]
        results = [res for _d, res in parts]
        return merge_image(image.shape, domains, results)

    @table.register("lut_part", ins=["job"], outs=["lut"], cost=10.0)
    def lut_part(job):
        return job[0]

    @table.register("init_lut", ins=[], outs=["lut"], cost=50.0)
    def init_lut():
        return np.arange(256, dtype=np.uint8)  # identity LUT

    @table.register("write_frame", ins=["img"], cost=500.0)
    def write_frame(image):
        written.append(image)

    return table, written


SOURCE = """
let nbands = 4;;
let l0 = init_lut ();;
let loop (prev_lut, im) =
  let hist = scm nbands split_bands band_hist sum_hists im in
  let job = lut_of prev_lut im hist in
  let lut = lut_part job in
  let out = scm nbands split_job remap_band rebuild job in
  (lut, out);;
let main = itermem read_frame loop write_frame l0 (128,128);;
"""


def main() -> None:
    table, written = make_table()
    built = build(SOURCE, table, ring(5), costs=T9000)
    report = built.run()
    print(f"equalised {len(written)} frames on {built.mapping.arch.name}; "
          f"mean simulated latency {report.mean_latency / 1000:.1f} ms")
    # Compare against the sequential whole-image reference.
    table2, _ = make_table()
    for k, out in enumerate(written):
        reference = equalize(table2["read_frame"]((128, 128)))
        in_range = int(out.pixels.max()) - int(out.pixels.min())
        match = "matches" if out == reference else "DIFFERS FROM"
        print(f"  frame {k}: contrast span {in_range:3d} "
              f"({match} the sequential reference)")


if __name__ == "__main__":
    main()
