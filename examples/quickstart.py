"""Quickstart: a data farm in five minutes.

Writes the smallest useful SKiPPER program — a ``df`` (data-farming)
skeleton squaring and summing a list — runs it through every stage of
the environment, and shows the two execution paths of the paper's
Fig. 2 agreeing:

1. sequential emulation on the "workstation" (plain function calls);
2. simulated parallel execution on a ring of Transputer-class
   processors, with real latency numbers.

Run:  python examples/quickstart.py
"""

from repro import FunctionTable, T9000, build, emulate_once
from repro.minicaml import compile_source
from repro.syndex import ring


def main() -> None:
    # -- 1. the sequential functions (the paper's "C functions") ---------
    table = FunctionTable()

    @table.register("square", ins=["int"], outs=["int"], cost=500.0)
    def square(x: int) -> int:
        return x * x

    @table.register("add", ins=["int", "int"], outs=["int"], cost=10.0)
    def add(acc: int, y: int) -> int:
        return acc + y

    # -- 2. the functional specification (the coordination layer) ---------
    source = """
    let nworkers = 4;;
    let main xs = df nworkers square add 0 xs;;
    """

    # -- 3. type-check it ------------------------------------------------
    compiled = compile_source(source, table)
    print("inferred type of main:", compiled.type_of("main"))

    # -- 4. sequential emulation ------------------------------------------
    xs = list(range(1, 33))
    (sequential_result,) = emulate_once(compiled.ir, table, xs)
    print("sequential emulation :", sequential_result)

    # -- 5. parallel execution on a simulated 5-processor ring -------------
    built = build(source, table, ring(5), costs=T9000)
    report = built.run(args=(xs,))
    (parallel_result,) = report.one_shot_results
    print("simulated parallel   :", parallel_result)
    print("results agree        :", parallel_result == sequential_result)
    print(f"simulated makespan   : {report.makespan / 1000:.2f} ms "
          f"on {built.mapping.arch.name}")
    print()
    print("process placement (SynDEx-style AAA distribution):")
    print(built.mapping.summary())


if __name__ == "__main__":
    main()
