"""Connected-component labelling under the ``scm`` skeleton.

SKiPPER's first published demo [Ginhac et al., MVA'98] parallelised
connected-component labelling with the Split-Compute-Merge skeleton.
The interesting part is the *merge*: components crossing the band
boundary get different labels in different bands, so the merge walks
each seam with a union-find, exactly like the second pass of the
sequential two-pass algorithm.

This example writes those three functions, runs the scm version on a
simulated 4-processor ring, and cross-checks against the sequential
whole-image labeller.

Run:  python examples/region_labelling.py
"""

import numpy as np

from repro import FunctionTable, T9000, build
from repro.syndex import ring
from repro.vision import Image, UnionFind, checkerboard, label, split_rows
from repro.vision.synth import scene_with_blobs


def make_table() -> FunctionTable:
    table = FunctionTable()

    @table.register(
        "split_bands",
        ins=["int", "img"],
        outs=["band list"],
        cost=lambda n, im: 200.0 + 0.05 * im.nrows * im.ncols,
    )
    def split_bands(n, image):
        """Cut the binary image into n horizontal bands."""
        return split_rows(image, n)

    @table.register(
        "label_band",
        ins=["band"],
        outs=["labelled"],
        cost=lambda dom: 100.0 + 4.0 * dom.pixels.nrows * dom.pixels.ncols,
    )
    def label_band(domain):
        """Two-pass CCL inside one band (local labels)."""
        labels, count = label(domain.pixels)
        return (domain.core, labels, count)

    @table.register(
        "merge_bands",
        ins=["img", "labelled list"],
        outs=["labels"],
        cost=lambda im, parts: 300.0 + 2.0 * im.ncols * len(parts),
    )
    def merge_bands(image, parts):
        """Stitch band labellings: offset, then union across each seam."""
        full = np.zeros(image.shape, dtype=np.int64)
        offset = 0
        tops = []
        for core, labels, count in parts:
            shifted = np.where(labels > 0, labels + offset, 0)
            full[core.row : core.row_end, :] = shifted
            tops.append(core.row)
            offset += count
        uf = UnionFind()
        for _ in range(offset):
            uf.make_set()
        for seam in tops[1:]:
            above, below = full[seam - 1], full[seam]
            ncols = image.ncols
            for c in range(ncols):
                if below[c] == 0:
                    continue
                for dc in (-1, 0, 1):  # 8-connectivity across the seam
                    cc = c + dc
                    if 0 <= cc < ncols and above[cc] != 0:
                        uf.union(int(above[cc]) - 1, int(below[c]) - 1)
        remap = np.zeros(offset + 1, dtype=np.int64)
        next_label = 0
        for provisional in range(offset):
            root = uf.find(provisional)
            if remap[root + 1] == 0:
                next_label += 1
                remap[root + 1] = next_label
            remap[provisional + 1] = remap[root + 1]
        return remap[full]

    return table


SOURCE = """
let nbands = 4;;
let main im = scm nbands split_bands label_band merge_bands im;;
"""


def main() -> None:
    rng = np.random.default_rng(7)
    blobs = [((r, c), (6, 9)) for r, c in rng.uniform(10, 118, size=(12, 2))]
    frame = scene_with_blobs((128, 128), blobs, background=0)
    board = checkerboard((128, 128), cell=16)
    table = make_table()
    built = build(SOURCE, table, ring(4), costs=T9000)

    for name, image in (("random blobs", frame), ("checkerboard", board)):
        report = built.run(args=(image,))
        (parallel_labels,) = report.one_shot_results
        _seq_labels, seq_count = label(image)
        par_count = int(parallel_labels.max())
        print(
            f"{name:13}: {par_count} components via scm on "
            f"{built.mapping.arch.name} "
            f"(sequential reference: {seq_count}) "
            f"{'OK' if par_count == seq_count else 'MISMATCH'}; "
            f"simulated makespan {report.makespan / 1000:.2f} ms"
        )


if __name__ == "__main__":
    main()
