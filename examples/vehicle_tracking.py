"""The paper's case study: real-time vehicle detection and tracking (§4).

Builds the complete application — synthetic in-car video, mark
detection, predict-then-verify tracking with the 3D trajectory model —
compiles the Caml specification, maps it onto a ring of 8 simulated
T9000-class processors with profiled (AAA) placement, and runs it in
real time against the 25 Hz 512x512 stream.

Prints the paper-vs-measured latency comparison and the tracking
accuracy against the synthetic ground truth.

Run:  python examples/vehicle_tracking.py
"""

from repro import build
from repro.syndex import ring
from repro.tracking import build_tracking_app


def main() -> None:
    nproc = 8
    app = build_tracking_app(
        nproc=nproc, n_frames=12, frame_size=512, n_vehicles=3
    )
    print("functional specification (what the programmer writes):")
    print(app.source)
    print(f"plus {len(app.table)} sequential functions:",
          ", ".join(sorted(app.table.names())))
    print()

    built = build(
        app.source,
        app.table,
        ring(nproc),
        profile_iterations=2,
        rewind=app.rewind,
    )
    print(built.graph.summary())
    print(built.deadlock.render())
    print()

    report = built.run(real_time=True, budget=app.latency_budget())
    print("iteration  frame  phase     latency    frames-skipped")
    for rec in report.iterations:
        phase = "reinit " if rec.index == 0 else "track  "
        print(
            f"  {rec.index:>6}  {rec.frame_index:>5}  {phase}  "
            f"{rec.latency / 1000:7.1f} ms   {rec.frames_skipped}"
        )
    rt = report.realtime
    print()
    print(f"25 Hz deadline contract: {rt.summary()}")
    for miss in rt.deadline_miss_events:
        print(f"  frame {miss.frame} missed the 40 ms budget ({miss.detail})")

    reinit = report.iterations[0].latency / 1000
    stable = [r.latency for r in report.iterations[2:]]
    tracking = sum(stable) / len(stable) / 1000
    print()
    print("paper (ring of 8 T9000, 25 Hz 512x512)   vs   this reproduction")
    print(f"  tracking phase :  30 ms                    {tracking:6.1f} ms")
    print(f"  reinit phase   : 110 ms                    {reinit:6.1f} ms")
    print(f"  frames skipped in reinit: 'one image out of 3'   "
          f"step={report.iterations[1].frame_index - report.iterations[0].frame_index}")
    print()

    state = report.final_state
    truth = app.scene.vehicles_at(report.iterations[-1].frame_index)
    print("tracking accuracy (final frame):")
    for track in state.tracks:
        best = min(truth, key=lambda v: abs(v.x - track.x) + abs(v.z - track.z))
        print(
            f"  estimated (x={track.x:5.2f} m, z={track.z:5.2f} m)   "
            f"truth (x={best.x:5.2f} m, z={best.z:5.2f} m)"
        )


if __name__ == "__main__":
    main()
