"""Road following by white-line detection, as a stream application.

The second SKiPPER application the paper cites [Ginhac '99]: detect the
lane lines bounding the road.  The parallel structure composes both
stream and data parallelism:

* ``itermem`` carries the previously detected lines from frame to frame
  (they seed the expected lane position — a tiny predict-verify loop);
* ``df`` farms per-band Hough voting: each band of the frame votes into
  a partial accumulator, and the accumulators merge by addition (an
  associative, commutative fold — the df correctness condition).

Run:  python examples/road_following.py
"""

import math

import numpy as np

from repro import EndOfStream, FunctionTable, T9000, build
from repro.syndex import ring
from repro.vision import (
    gradient_magnitude,
    hough_accumulate,
    hough_peaks,
    road_scene,
    split_rows,
    threshold,
)


def make_table(n_frames: int, shape=(128, 128)):
    """Register the sequential functions; returns (table, log)."""
    table = FunctionTable()
    state = {"frame": 0}
    log = []

    @table.register("read_road", ins=["int * int"], outs=["img"], cost=1_500.0)
    def read_road(_shape):
        k = state["frame"]
        if k >= n_frames:
            raise EndOfStream
        state["frame"] += 1
        # The car drifts: lane offsets shift slowly with the frame index.
        drift = 6.0 * math.sin(k / 3.0)
        return road_scene(
            shape,
            lane_offsets=(-38.0 + drift, 38.0 + drift),
            noise_sigma=3.0,
            rng=np.random.default_rng(k),
        )

    @table.register(
        "edge_bands",
        ins=["int", "line list", "img"],
        outs=["band list"],
        cost=lambda n, prev, im: 400.0 + 6.0 * im.nrows * im.ncols,
    )
    def edge_bands(n, _previous_lines, image):
        edges = threshold(gradient_magnitude(image), 60)
        # The zero-padded gradient sees the frame border as an edge;
        # mask it out so only scene structure votes.
        edges.pixels[:2, :] = 0
        edges.pixels[-2:, :] = 0
        edges.pixels[:, :2] = 0
        edges.pixels[:, -2:] = 0
        return split_rows(edges, n)

    @table.register(
        "vote_band",
        ins=["band"],
        outs=["acc"],
        cost=lambda dom: 200.0 + 8.0 * dom.pixels.nrows * dom.pixels.ncols,
    )
    def vote_band(domain):
        return hough_accumulate(
            domain.pixels, origin=(domain.rect.row, domain.rect.col)
        )

    @table.register(
        "add_acc",
        ins=["acc", "acc"],
        outs=["acc"],
        cost=lambda a, b: 50.0 + b.size * 0.001,
    )
    def add_acc(total, partial):
        return total + partial

    @table.register(
        "pick_lines",
        ins=["line list", "acc"],
        outs=["line list", "line list"],
        cost=500.0,
    )
    def pick_lines(_previous, accumulator):
        candidates = hough_peaks(accumulator, k=8, min_votes=25)
        lines = []
        for line in candidates:  # keep the two clearly distinct best lines
            if all(
                abs(line.rho - kept.rho) > 15
                or abs(line.theta - kept.theta) > math.radians(10)
                for kept in lines
            ):
                lines.append(line)
            if len(lines) == 2:
                break
        return lines, lines  # (to display, next memory)

    @table.register("show_lines", ins=["line list"], cost=200.0)
    def show_lines(lines):
        log.append(lines)

    return table, log


SOURCE = """
let nbands = 4;;
let loop (prev, im) =
  let bands = edge_bands nbands prev im in
  let zero_acc = make_zero () in
  let acc = df nbands vote_band add_acc zero_acc bands in
  let out, next = pick_lines prev acc in
  (next, out);;
let main = itermem read_road loop show_lines [] (128,128);;
"""


def main() -> None:
    n_frames = 6
    table, log = make_table(n_frames)

    @table.register("make_zero", ins=[], outs=["acc"], cost=100.0)
    def make_zero():
        return np.zeros((2049, 180), dtype=np.int64)

    built = build(SOURCE, table, ring(5), costs=T9000)
    report = built.run()
    print(f"processed {len(report.iterations)} frames on "
          f"{built.mapping.arch.name}; mean simulated latency "
          f"{report.mean_latency / 1000:.1f} ms")
    print()
    for k, lines in enumerate(log):
        rendered = ", ".join(
            f"(rho={line.rho:7.1f}, theta={math.degrees(line.theta):5.1f} deg, "
            f"votes={line.votes})"
            for line in lines
        )
        print(f"frame {k}: {len(lines)} line(s)  {rendered}")


if __name__ == "__main__":
    main()
