"""Divide-and-conquer segmentation under the ``tf`` (task farm) skeleton.

The paper (§2): the tf skeleton's "main use is for implementing the
so-called divide-and-conquer algorithms" — each worker may recursively
generate new packets.  Here the packets are image regions: a worker
examines one region and either emits it as a homogeneous leaf or spawns
its four quadrants back into the farm.  A final merge groups adjacent
leaves into segments.

The sequential quadtree (repro.vision.segment.quadtree_leaves) is the
declarative oracle the farmed version must match.

Run:  python examples/quadtree_segmentation.py
"""

import numpy as np

from repro import FunctionTable, T9000, TaskOutcome, build
from repro.syndex import ring
from repro.vision import Image, scene_with_blobs
from repro.vision.segment import (
    is_homogeneous,
    merge_adjacent,
    quadtree_leaves,
    region_stats,
    split_region,
)

VAR_THRESHOLD = 120.0
MIN_SIZE = 4


def make_table(image: Image) -> FunctionTable:
    table = FunctionTable()

    @table.register(
        "examine",
        ins=["rect"],
        outs=["leaf list", "rect list"],
        cost=lambda rect: 100.0 + 0.5 * rect.area,  # variance scan
        doc="one split-or-accept decision per region packet",
    )
    def examine(rect):
        if is_homogeneous(
            image, rect, var_threshold=VAR_THRESHOLD, min_size=MIN_SIZE
        ):
            return TaskOutcome(results=[region_stats(image, rect)])
        return TaskOutcome(subtasks=split_region(rect))

    @table.register(
        "collect",
        ins=["leaf list", "leaf"],
        outs=["leaf list"],
        cost=10.0,
        properties=["append"],
    )
    def collect(acc, leaf):
        return sorted(
            acc + [leaf], key=lambda s: (s.rect.row, s.rect.col, s.rect.height)
        )

    return table


SOURCE = """
let nworkers = 4;;
let main roots = tf nworkers examine collect [] roots;;
"""


def main() -> None:
    rng = np.random.default_rng(5)
    blobs = [((r, c), (8, 12)) for r, c in rng.uniform(12, 116, size=(5, 2))]
    image = scene_with_blobs(
        (128, 128), blobs, background=50, intensity=210, noise_sigma=3.0
    )

    table = make_table(image)
    built = build(SOURCE, table, ring(4), costs=T9000)
    report = built.run(args=([image.rect],))
    (leaves,) = report.one_shot_results

    reference = quadtree_leaves(
        image, var_threshold=VAR_THRESHOLD, min_size=MIN_SIZE
    )
    print(
        f"task farm produced {len(leaves)} quadtree leaves on "
        f"{built.mapping.arch.name} "
        f"({'matches' if leaves == reference else 'DIFFERS FROM'} the "
        f"sequential oracle); simulated makespan "
        f"{report.makespan / 1000:.1f} ms"
    )

    segments = merge_adjacent(leaves, mean_threshold=25.0)
    sizes = sorted((sum(l.area for l in g) for g in segments), reverse=True)
    print(
        f"merge phase: {len(segments)} segments; "
        f"largest covers {sizes[0]} px "
        f"({100.0 * sizes[0] / image.rect.area:.0f}% of the frame)"
    )
    bright = [
        g for g in segments
        if sum(l.mean * l.area for l in g) / sum(l.area for l in g) > 150
    ]
    blob_area = sum(l.area for g in bright for l in g)
    print(
        f"{len(bright)} bright segments covering {blob_area} px "
        f"(the {len(blobs)} blobs plus noise fragments)"
    )


if __name__ == "__main__":
    main()
