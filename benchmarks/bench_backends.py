"""E12 — real multi-core speedup: processes vs threads backends.

The paper's promise is that the same skeletal program retargets from the
workstation to the parallel machine by swapping the kernel primitives
(§3).  This benchmark makes that concrete on the host itself: one farm
program, executed by the generated executive on the ``threads`` backend
(one interpreter, GIL-serialised compute) and on the ``processes``
backend (one OS process per mapped processor).  With CPU-bound
sequential functions the thread executive cannot exceed one core, so on
a multi-core host the process executive wins roughly linearly in the
farm degree; on a single-core host the two tie (processes pay the
fork/IPC overhead).

Run standalone with ``PYTHONPATH=src python benchmarks/bench_backends.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import time
from typing import List, Optional

from conftest import default_artifact, run_once

from repro import FunctionTable, ProgramBuilder
from repro.backends import get_backend
from repro.pnt import expand_program
from repro.shm import BatchPolicy, RingChannel, create_ring
from repro.syndex import distribute, ring

WORKERS = 4
#: Pure-Python arithmetic per work item — holds the GIL for its whole
#: duration, unlike numpy kernels which release it.  Sized to ~300 ms
#: per item so process startup (~100 ms) cannot mask the parallelism.
SPINS = 3_000_000


#: The I/O-bound leg: per-item latency is a 40 ms await, not compute.
#: Both executives overlap it — threads across OS threads, asyncio
#: across tasks on one loop — so the honest expectation is a tie; the
#: gated metric asserts the coroutine executive keeps pace without
#: needing a thread per mapped processor.
IO_MS = 40
IO_ITEMS = 12


def burn(x):
    acc = float(x)
    for i in range(SPINS):
        acc = (acc * 1.0000001 + i) % 1e9
    return int(acc)


async def fetch(x):
    """An async-native table function: pure awaited I/O latency."""
    await asyncio.sleep(IO_MS / 1000.0)
    return x + 1


def chunk(n, xs):
    base, extra = divmod(len(xs), n)
    out, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(xs[start:start + size])
        start += size
    return out


def burn_chunk(xs):
    return sum(burn(x) for x in xs)


def total(_orig, parts):
    return sum(parts)


def add(a, b):
    return a + b


def make_table():
    table = FunctionTable()
    table.register("chunk", ins=["int", "int list"], outs=["int list list"])(chunk)
    table.register("burn_chunk", ins=["int list"], outs=["int"])(burn_chunk)
    table.register("total", ins=["int list", "int list"], outs=["int"])(total)
    table.register("burn", ins=["int"], outs=["int"])(burn)
    table.register(
        "add", ins=["int", "int"], outs=["int"],
        properties=["commutative", "associative"],
    )(add)
    return table


def make_io_table():
    table = FunctionTable()
    table.register("fetch", ins=["int"], outs=["int"])(fetch)
    table.register(
        "add", ins=["int", "int"], outs=["int"],
        properties=["commutative", "associative"],
    )(add)
    return table


def io_program(table, degree):
    b = ProgramBuilder("bench_io", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="fetch", acc="add", z=b.const(0), xs=xs)
    return b.returns(r)


def scm_program(table, degree):
    b = ProgramBuilder("bench_scm", table)
    (xs,) = b.params("xs")
    r = b.scm(degree, split="chunk", comp="burn_chunk", merge="total", x=xs)
    return b.returns(r)


def df_program(table, degree):
    b = ProgramBuilder("bench_df", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="burn", acc="add", z=b.const(0), xs=xs)
    return b.returns(r)


def measure(backend_name, program_factory, degree=WORKERS, items=None,
            table_factory=make_table):
    """Wall-clock seconds and result of one run on ``backend_name``."""
    table = table_factory()
    prog = program_factory(table, degree)
    mapping = distribute(expand_program(prog, table), ring(degree + 1))
    backend = get_backend(backend_name)
    args = (items if items is not None else list(range(degree)),)
    start = time.perf_counter()
    report = backend.run(mapping, table, args=args, timeout=300.0)
    elapsed = time.perf_counter() - start
    return elapsed, report.one_shot_results


def compare(program_factory, label, extra_info=None):
    threads_s, threads_result = measure("threads", program_factory)
    procs_s, procs_result = measure("processes", program_factory)
    assert threads_result == procs_result, "backends disagree on the result"
    speedup = threads_s / procs_s if procs_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    print(f"\nE12 {label}: {WORKERS}-worker farm, CPU-bound kernel, "
          f"{cores} core(s)")
    print(f"  threads   {threads_s * 1000:8.1f} ms")
    print(f"  processes {procs_s * 1000:8.1f} ms   ({speedup:.2f}x)")
    if extra_info is not None:
        extra_info[f"{label}_threads_ms"] = round(threads_s * 1000, 1)
        extra_info[f"{label}_processes_ms"] = round(procs_s * 1000, 1)
        extra_info[f"{label}_speedup"] = round(speedup, 2)
    # True parallelism only materialises when the host has the cores for
    # it; elsewhere (laptops in power-save, 1-2 vCPU CI runners) just
    # report the tie.
    if cores >= 4:
        assert speedup >= 1.5, (
            f"processes should beat threads on a {cores}-core host, "
            f"got {speedup:.2f}x"
        )
    return speedup


def compare_io(extra_info=None):
    """Asyncio vs threads on awaited-I/O work: both must overlap it."""
    items = list(range(IO_ITEMS))
    threads_s, threads_result = measure(
        "threads", io_program, items=items, table_factory=make_io_table
    )
    asyncio_s, asyncio_result = measure(
        "asyncio", io_program, items=items, table_factory=make_io_table
    )
    assert threads_result == asyncio_result, "backends disagree on the result"
    io_speedup = threads_s / asyncio_s if asyncio_s > 0 else float("inf")
    ideal_ms = IO_MS * IO_ITEMS / WORKERS
    print(f"\nE12 io: {WORKERS}-worker farm, {IO_ITEMS} items x "
          f"{IO_MS} ms awaited I/O (ideal {ideal_ms:.0f} ms)")
    print(f"  threads   {threads_s * 1000:8.1f} ms")
    print(f"  asyncio   {asyncio_s * 1000:8.1f} ms   ({io_speedup:.2f}x)")
    if extra_info is not None:
        extra_info["io_threads_ms"] = round(threads_s * 1000, 1)
        extra_info["io_asyncio_ms"] = round(asyncio_s * 1000, 1)
        extra_info["io_speedup"] = round(io_speedup, 2)
    # A serialised coroutine executive would lose by the farm degree;
    # anything close to parity proves the I/O genuinely overlapped.
    assert io_speedup >= 0.5, (
        f"asyncio should keep pace with threads on awaited I/O, "
        f"got {io_speedup:.2f}x"
    )
    return io_speedup


# -- E13: the intra-host transport data plane (ring vs mp.Queue) --------------
#
# Two legs.  The *pump* measures raw packet throughput: one producer
# process streams PUMP_PACKETS df-style small payloads through a single
# channel while the parent drains it — the pattern where the ring's
# preallocated slots and batched frames replace a per-packet
# pickle/pipe/lock cycle.  The *farm* leg runs the same small-payload
# df program end-to-end under both transports; its dispatch protocol
# keeps one packet in flight per worker, so batching cannot engage and
# parity (not speedup) is the honest expectation there.

PUMP_PACKETS = 20000
#: A typical df dispatch: a tag, a sequence number, a small value.
PUMP_PAYLOAD = ("pkt", 1234, [1, 2, 3])
PUMP_STOP = ("stop",)
FARM_ITEMS = 1200


def bump(x):
    return x + 1


def make_farm_table():
    table = FunctionTable()
    table.register("bump", ins=["int"], outs=["int"], cost=1.0)(bump)
    table.register(
        "add", ins=["int", "int"], outs=["int"],
        properties=["commutative", "associative"],
    )(add)
    return table


def farm_program(table, degree):
    b = ProgramBuilder("bench_transport", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="bump", acc="add", z=b.const(0), xs=xs)
    return b.returns(r)


def _pump_queue(channel, ready, go):
    ready.set()
    go.wait()
    for _ in range(PUMP_PACKETS):
        channel.put(PUMP_PAYLOAD)
    channel.put(PUMP_STOP)


def _pump_ring(channel, ready, go):
    ready.set()
    go.wait()
    for _ in range(PUMP_PACKETS):
        channel.put(PUMP_PAYLOAD, timeout=60.0)
    channel.put(PUMP_STOP, timeout=60.0)
    while channel.has_pending:
        if channel.try_flush():
            break
        time.sleep(0.0002)
    channel.close()


def _drain(channel):
    got = 0
    while True:
        value = channel.get(timeout=30.0)
        if value == PUMP_STOP:
            return got
        got += 1


def measure_pump(kind):
    """Seconds to stream PUMP_PACKETS through one ``kind`` channel."""
    ctx = multiprocessing.get_context()
    ready, go = ctx.Event(), ctx.Event()
    if kind == "queue":
        channel = ctx.Queue(maxsize=64)
        producer = ctx.Process(target=_pump_queue,
                               args=(channel, ready, go))
    else:
        channel = RingChannel(create_ring(64, 16384),
                              policy=BatchPolicy(), label="bench-pump")
        producer = ctx.Process(target=_pump_ring,
                               args=(channel, ready, go))
    producer.start()
    try:
        if not ready.wait(30.0):
            raise RuntimeError("pump producer never came up")
        go.set()
        start = time.perf_counter()
        got = _drain(channel)
        elapsed = time.perf_counter() - start
    finally:
        producer.join(10.0)
        if producer.is_alive():  # pragma: no cover - wedged producer
            producer.terminate()
        if kind == "ring":
            channel.destroy()
    assert got == PUMP_PACKETS, f"lost packets: {got}/{PUMP_PACKETS}"
    return elapsed


def measure_farm(transport):
    """Wall-clock seconds of the small-payload df farm end to end."""
    table = make_farm_table()
    prog = farm_program(table, WORKERS)
    mapping = distribute(expand_program(prog, table), ring(WORKERS + 1))
    args = (list(range(FARM_ITEMS)),)
    start = time.perf_counter()
    report = get_backend("processes").run(
        mapping, table, args=args, timeout=300.0, transport=transport,
    )
    elapsed = time.perf_counter() - start
    return elapsed, report.one_shot_results


def compare_transport(extra_info=None):
    queue_pump_s = measure_pump("queue")
    ring_pump_s = measure_pump("ring")
    pump_speedup = (
        queue_pump_s / ring_pump_s if ring_pump_s > 0 else float("inf")
    )
    queue_farm_s, queue_result = measure_farm("queue")
    ring_farm_s, ring_result = measure_farm("ring")
    assert queue_result == ring_result, "transports disagree on the result"
    farm_speedup = (
        queue_farm_s / ring_farm_s if ring_farm_s > 0 else float("inf")
    )
    transfers = 2 * FARM_ITEMS  # one dispatch + one collect per item
    print(f"\nE13 transport pump: {PUMP_PACKETS} small packets, "
          "one producer process")
    print(f"  mp.Queue  {queue_pump_s * 1000:8.1f} ms   "
          f"({PUMP_PACKETS / queue_pump_s / 1000:6.1f} kpps)")
    print(f"  ring      {ring_pump_s * 1000:8.1f} ms   "
          f"({PUMP_PACKETS / ring_pump_s / 1000:6.1f} kpps, "
          f"{pump_speedup:.2f}x)")
    print(f"E13 transport farm: {WORKERS}-worker df, "
          f"{FARM_ITEMS} one-int packets")
    print(f"  mp.Queue  {queue_farm_s * 1000:8.1f} ms")
    print(f"  ring      {ring_farm_s * 1000:8.1f} ms   "
          f"({farm_speedup:.2f}x)")
    if extra_info is not None:
        extra_info["transport_queue_ms"] = round(queue_pump_s * 1000, 1)
        extra_info["transport_ring_ms"] = round(ring_pump_s * 1000, 1)
        extra_info["transport_speedup"] = round(pump_speedup, 2)
        extra_info["transport_ring_kpps"] = round(
            PUMP_PACKETS / ring_pump_s / 1000, 1)
        extra_info["transport_farm_queue_ms"] = round(queue_farm_s * 1000, 1)
        extra_info["transport_farm_ring_ms"] = round(ring_farm_s * 1000, 1)
        extra_info["transport_farm_speedup"] = round(farm_speedup, 2)
        extra_info["transport_farm_ring_kpps"] = round(
            transfers / ring_farm_s / 1000, 1)
    # The data plane is where the preallocated slots + batching pay off;
    # the farm leg must simply never lose to the queue badly (its
    # packet protocol is one-in-flight, so parity is the ceiling).
    assert pump_speedup >= 1.5, (
        f"ring should clearly beat mp.Queue on packet throughput, "
        f"got {pump_speedup:.2f}x"
    )
    return pump_speedup


def transport_document():
    metrics: dict = {}
    compare_transport(extra_info=metrics)
    return {"pump_packets": PUMP_PACKETS, "farm_items": FARM_ITEMS,
            "cores": os.cpu_count(), **metrics}


def test_scm_processes_vs_threads(benchmark):
    run_once(benchmark, lambda: compare(
        scm_program, "scm", extra_info=benchmark.extra_info,
    ))


def test_df_processes_vs_threads(benchmark):
    run_once(benchmark, lambda: compare(
        df_program, "df", extra_info=benchmark.extra_info,
    ))


def test_io_asyncio_vs_threads(benchmark):
    run_once(benchmark, lambda: compare_io(
        extra_info=benchmark.extra_info,
    ))


def test_transport_ring_vs_queue(benchmark):
    run_once(benchmark, lambda: compare_transport(
        extra_info=benchmark.extra_info,
    ))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="threads-vs-processes speedup on CPU-bound farms"
    )
    parser.add_argument("--json", metavar="FILE",
                        default=default_artifact("backends"),
                        help="write the headline numbers as a JSON "
                             "document (default: repo-root "
                             "BENCH_backends.json)")
    parser.add_argument("--shm-json", metavar="FILE",
                        default=default_artifact("shm"),
                        help="write the transport (ring vs queue) "
                             "numbers as a JSON document (default: "
                             "repo-root BENCH_shm.json)")
    parser.add_argument("--transport-only", action="store_true",
                        help="run only the E13 transport legs (the shm "
                             "CI job's fast path)")
    args = parser.parse_args(argv)
    shm_document = transport_document()
    with open(args.shm_json, "w") as handle:
        json.dump(shm_document, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.shm_json}")
    if args.transport_only:
        return 0
    metrics: dict = {}
    compare(scm_program, "scm", extra_info=metrics)
    compare(df_program, "df", extra_info=metrics)
    compare_io(extra_info=metrics)
    document = {"workers": WORKERS, "cores": os.cpu_count(), **metrics}
    with open(args.json, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
