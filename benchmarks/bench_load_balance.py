"""E8 — why ``df``: dynamic load balancing on irregular window lists.

Paper (§2, §4): window lists "may vary in length ... and each window may
itself vary widely in size", a "dynamic behaviour, involving a very
uneven work load, [that] calls for a df skeleton".

This benchmark compares the df farm against a static alternative (an
``scm`` that deals windows round-robin to fixed workers) on two
workloads: uniform window sizes (static should roughly tie) and heavily
skewed sizes (dynamic dispatch should win clearly).
"""

from conftest import run_once

from repro import FunctionTable, ProgramBuilder, T9000
from repro.machine import simulate
from repro.pnt import expand_program
from repro.syndex import distribute, ring

NPROC = 6


def make_table():
    table = FunctionTable()
    # A "window" is just its pixel count; detection costs 2500 + 2/px,
    # the tracking detector's calibrated cost model.
    table.register(
        "detect", ins=["window"], outs=["mark list"],
        cost=lambda w: 2500.0 + 2.0 * w,
    )(lambda w: [w])
    table.register(
        "concat", ins=["mark list", "mark list"], outs=["mark list"],
        cost=lambda a, b: 20.0 + 5.0 * len(b),
    )(lambda a, b: sorted(a + b))
    def deal(n, ws):
        """Static contiguous chunking — what a hand-coded geometric
        assignment does, oblivious to per-window cost."""
        base, extra = divmod(len(ws), n)
        out, start = [], 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            out.append(ws[start : start + size])
            start += size
        return out

    table.register(
        "deal", ins=["int", "window list"], outs=["window list list"],
        cost=500.0,
    )(deal)
    table.register(
        "detect_chunk", ins=["window list"], outs=["mark list"],
        cost=lambda ws: sum(2500.0 + 2.0 * w for w in ws),
    )(lambda ws: sorted(m for w in ws for m in [w]))
    table.register(
        "collect", ins=["window list", "mark list list"], outs=["mark list"],
        cost=lambda ws, parts: 100.0 + 5.0 * sum(len(p) for p in parts),
    )(lambda _ws, parts: sorted(m for p in parts for m in p))
    return table


def dynamic_farm(table):
    b = ProgramBuilder("df_version", table)
    (ws,) = b.params("ws")
    out = b.df(NPROC, comp="detect", acc="concat", z=b.const([]), xs=ws)
    return b.returns(out)


def static_split(table):
    b = ProgramBuilder("static_version", table)
    (ws,) = b.params("ws")
    out = b.scm(NPROC, split="deal", comp="detect_chunk", merge="collect", x=ws)
    return b.returns(out)


UNIFORM = [4000] * 24
# Same total pixel volume, but concentrated: a few huge windows.
SKEWED = [30000, 30000, 24000, 2000, 2000] + [800] * 10


def _makespan(prog, table, workload) -> float:
    mapping = distribute(expand_program(prog, table), ring(NPROC))
    report = simulate(mapping, table, T9000, args=(list(workload),))
    return report.makespan / 1000


def test_df_beats_static_split_on_skewed_loads(benchmark):
    table = make_table()

    def measure():
        return {
            ("df", "uniform"): _makespan(dynamic_farm(table), table, UNIFORM),
            ("df", "skewed"): _makespan(dynamic_farm(table), table, SKEWED),
            ("static", "uniform"): _makespan(static_split(table), table, UNIFORM),
            ("static", "skewed"): _makespan(static_split(table), table, SKEWED),
        }

    results = run_once(benchmark, measure)
    print("\nE8: dynamic farming vs static splitting (6 workers)")
    print("  workload   df (dynamic)   scm (static)   static/df")
    for workload in ("uniform", "skewed"):
        df_ms = results[("df", workload)]
        st_ms = results[("static", workload)]
        print(f"  {workload:8} {df_ms:10.1f} ms {st_ms:12.1f} ms"
              f"   {st_ms / df_ms:6.2f}x")
        benchmark.extra_info[f"df_{workload}_ms"] = round(df_ms, 1)
        benchmark.extra_info[f"static_{workload}_ms"] = round(st_ms, 1)

    # Shape: roughly even on uniform loads (farm overhead <= 35%)...
    assert results[("df", "uniform")] <= 1.35 * results[("static", "uniform")]
    # ...clear win for dynamic dispatch on skewed loads.
    assert results[("df", "skewed")] < 0.8 * results[("static", "skewed")]


def test_results_identical_between_strategies(benchmark):
    table = make_table()

    def both():
        mapping_df = distribute(
            expand_program(dynamic_farm(table), table), ring(NPROC)
        )
        mapping_st = distribute(
            expand_program(static_split(table), table), ring(NPROC)
        )
        a = simulate(mapping_df, table, T9000, args=(list(SKEWED),))
        b = simulate(mapping_st, table, T9000, args=(list(SKEWED),))
        return a, b

    a, b = run_once(benchmark, both)
    assert a.one_shot_results == b.one_shot_results
