"""E17 (extension, §4) — the road-following application.

The paper lists "road-following by white line detection [6]" among the
applications parallelised with SKiPPER.  This benchmark runs the
packaged implementation (repro.roadfollow) on the simulated ring:
real-time latency against the 25 Hz budget, steering-signal accuracy
against the synthetic ground truth, and the sequential/parallel
equivalence check.
"""

from conftest import run_once

from repro import build
from repro.core import emulate
from repro.minicaml import compile_source
from repro.roadfollow import RoadScene, build_road_app
from repro.syndex import ring

NBANDS = 4
N_FRAMES = 50


def _run():
    app = build_road_app(nbands=NBANDS, n_frames=N_FRAMES)
    built = build(
        app.source, app.table, ring(NBANDS + 1),
        profile_iterations=2, rewind=app.rewind,
    )
    report = built.run(real_time=True)
    return app, report


def test_road_following_realtime(benchmark):
    app, report = run_once(benchmark, _run)
    errors = [
        abs(off - app.scene.lateral_offset(rec.frame_index))
        for rec, off in zip(report.iterations, app.offsets)
    ]
    mean_err = sum(errors) / len(errors)
    print("\nE17: road following on a 5-processor ring (25 Hz, 128x128)")
    print(f"  mean latency      : {report.mean_latency / 1000:6.1f} ms "
          f"(budget 40 ms)")
    print(f"  frames skipped    : {report.total_frames_skipped}")
    print(f"  steering error    : mean {mean_err:.2f} px, "
          f"max {max(errors):.2f} px (drift amplitude "
          f"{app.scene.drift_amplitude:.0f} px)")
    benchmark.extra_info.update(
        {
            "mean_latency_ms": round(report.mean_latency / 1000, 1),
            "mean_steering_error_px": round(mean_err, 2),
            "max_steering_error_px": round(max(errors), 2),
        }
    )
    # Real-time: every frame processed inside the budget.
    assert report.total_frames_skipped == 0
    assert report.mean_latency < 40_000.0
    # The steering signal follows the wander to ~1 px on average.
    assert mean_err < 2.0
    assert max(errors) < 0.5 * app.scene.drift_amplitude


def test_parallel_equals_sequential(benchmark):
    def both():
        app_seq = build_road_app(nbands=NBANDS, n_frames=10)
        compiled = compile_source(app_seq.source, app_seq.table)
        emulate(compiled.ir, app_seq.table, call_sink=True)

        app_par = build_road_app(nbands=NBANDS, n_frames=10)
        built = build(app_par.source, app_par.table, ring(NBANDS + 1))
        built.run()
        return app_seq, app_par

    app_seq, app_par = run_once(benchmark, both)
    assert app_par.offsets == app_seq.offsets


def test_dashed_markings_still_followed(benchmark):
    """Dashed lane markings (fewer votes, flickering with motion) must
    not break the follower."""

    def run_dashed():
        scene = RoadScene(dashes=(8, 4), drift_amplitude=6.0)
        app = build_road_app(nbands=NBANDS, n_frames=30, scene=scene)
        built = build(
            app.source, app.table, ring(NBANDS + 1),
            profile_iterations=2, rewind=app.rewind,
        )
        report = built.run()
        return app, report

    app, report = run_once(benchmark, run_dashed)
    errors = [
        abs(off - app.scene.lateral_offset(rec.frame_index))
        for rec, off in zip(report.iterations, app.offsets)
    ]
    # Allow larger error on dashes, but the lane must stay followed.
    mean_err = sum(errors) / len(errors)
    benchmark.extra_info["dashed_mean_error_px"] = round(mean_err, 2)
    assert mean_err < 3.0
