"""E15 (extension) — target portability: Transputer ring vs NOW.

The paper demonstrates SKiPPER "both on a multi-DSP platform and a
network of workstations" — the same source retargets by swapping the
architecture description.  This benchmark runs the tracking application
unchanged on four machine models and reports the latency table: the
ring's fast point-to-point links beat the shared-bus NOW (whose single
medium serialises the farm traffic), and the fully-connected fabric
bounds what any topology could achieve.
"""

from conftest import run_once

from repro import build
from repro.syndex import chain, fully_connected, now, ring
from repro.tracking import build_tracking_app

NPROC = 8

ARCHES = {
    "ring": lambda: ring(NPROC),
    "chain": lambda: chain(NPROC),
    "full": lambda: fully_connected(NPROC),
    # 10 Mb/s shared Ethernet of the era.
    "now": lambda: now(NPROC),
}


def _measure(arch_name: str) -> dict:
    app = build_tracking_app(
        nproc=NPROC, n_frames=24, frame_size=512, n_vehicles=3
    )
    built = build(
        app.source, app.table, ARCHES[arch_name](),
        profile_iterations=2, rewind=app.rewind,
    )
    report = built.run(real_time=True)
    stable = [r.latency for r in report.iterations[2:]] or [
        r.latency for r in report.iterations[1:]
    ]
    return {
        "reinit_ms": report.iterations[0].latency / 1000,
        "tracking_ms": sum(stable) / len(stable) / 1000,
        "displayed": [
            [(m.row, m.col) for m in ms] for ms in app.displayed
        ],
    }


def test_same_source_across_architectures(benchmark):
    results = run_once(
        benchmark, lambda: {name: _measure(name) for name in ARCHES}
    )
    print("\nE15: one source, four machine models (8 processors)")
    print("  target   tracking     reinit")
    for name in ("full", "ring", "chain", "now"):
        r = results[name]
        print(f"  {name:6} {r['tracking_ms']:8.1f} ms {r['reinit_ms']:8.1f} ms")
        benchmark.extra_info[f"{name}_tracking_ms"] = round(r["tracking_ms"], 1)
        benchmark.extra_info[f"{name}_reinit_ms"] = round(r["reinit_ms"], 1)

    # Portability: identical output on the first frame (later frames
    # differ only because slower targets skip different video frames).
    reference = results["ring"]["displayed"][0]
    for name in ARCHES:
        assert results[name]["displayed"][0] == reference

    # Shape: richer interconnects are at least as fast; the slow shared
    # bus pays a clear penalty on the data-heavy reinitialisation.
    assert results["full"]["reinit_ms"] <= results["ring"]["reinit_ms"] + 1.0
    assert results["ring"]["reinit_ms"] <= results["chain"]["reinit_ms"] + 1.0
    assert results["now"]["reinit_ms"] > 1.2 * results["ring"]["reinit_ms"]
