"""Serving-plane benchmark: compile-once payoff and multi-tenant scale.

Two questions the ``repro serve`` daemon exists to answer:

* **cold vs warm** — what does the compile cache buy a submit?  The
  compile path (parse → types → expand → map → codegen) is measured
  cold on fresh programs and warm on repeats, both as the pure build
  stage and as end-to-end submit latency over a live worker pool;
* **N-tenant throughput** — does one shared pool actually multiplex?
  The same batch of runs is pushed through the scheduler sequentially
  (one at a time) and concurrently (many tenants at once); their wall
  times give the concurrency speedup the run slots provide.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_serve.py``;
the JSON artifact lands at repo root as ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from typing import Dict, List, Optional

from conftest import default_artifact, run_once

from repro.serve import CompileCache, SkipperService
from repro.serve.scheduler import RunRequest
from repro.serve.soak import soak_source, soak_table
from repro.syndex import ring

COLD_PROGRAMS = 5          # distinct sources: every build is a miss
WARM_REPEATS = 5           # repeats of one source: every build is a hit
TENANTS = 6
RUNS_PER_TENANT = 2
FRAMES = 6                 # short stream: overheads dominate, on purpose


def _sources(n: int) -> List[str]:
    # Distinct frame counts give distinct token streams, hence distinct
    # cache keys — each is a genuinely cold program.
    return [soak_source(frames=FRAMES + i) for i in range(n)]


def measure_build() -> Dict:
    """The compile pipeline alone: cold misses vs warm cache hits."""
    table = soak_table()
    arch = ring(3)
    cache = CompileCache()
    cold_s = []
    for source in _sources(COLD_PROGRAMS):
        t0 = time.perf_counter()
        build = cache.build(source, table, arch)
        cold_s.append(time.perf_counter() - t0)
        assert not build.hit
    warm_source = _sources(1)[0]
    warm_s = []
    for _ in range(WARM_REPEATS):
        t0 = time.perf_counter()
        build = cache.build(warm_source, table, arch)
        warm_s.append(time.perf_counter() - t0)
        assert build.hit
    cold_ms = statistics.median(cold_s) * 1000
    warm_ms = statistics.median(warm_s) * 1000
    return {
        "build_cold_ms": round(cold_ms, 2),
        "build_warm_ms": round(warm_ms, 4),
        "build_speedup": round(cold_ms / warm_ms, 1) if warm_ms else None,
    }


def measure_submit(service: SkipperService) -> Dict:
    """End-to-end submit latency (compile + schedule + run) cold/warm."""
    table = soak_table()
    arch = ring(3)
    source = soak_source(frames=FRAMES, work_us=777)  # unique to this stage
    # One unrelated run first: the cold number must price the compile,
    # not the worker pool still dialling in.
    warmup = service.run(RunRequest(
        source=soak_source(frames=FRAMES, work_us=888), table=table,
        arch=arch, tenant="bench-lat",
    ))
    assert warmup.status == "ok", warmup.error
    latencies = []
    for _ in range(1 + WARM_REPEATS):
        t0 = time.perf_counter()
        ticket = service.run(RunRequest(
            source=source, table=table, arch=arch, tenant="bench-lat",
        ))
        latencies.append(time.perf_counter() - t0)
        assert ticket.status == "ok", ticket.error
    cold_ms = latencies[0] * 1000
    warm_ms = statistics.median(latencies[1:]) * 1000
    return {
        "submit_cold_ms": round(cold_ms, 1),
        "submit_warm_ms": round(warm_ms, 1),
        "submit_warm_speedup": round(cold_ms / warm_ms, 2),
    }


def measure_tenancy(service: SkipperService) -> Dict:
    """Sequential vs N-tenant-concurrent wall time for one batch."""
    table = soak_table()
    arch = ring(3)
    source = soak_source(frames=FRAMES, work_us=555)  # unique to this stage
    total = TENANTS * RUNS_PER_TENANT

    def request(tenant):
        return RunRequest(source=source, table=table, arch=arch,
                          tenant=tenant)

    service.run(request("bench-seq"))  # warm the cache out of the timing
    t0 = time.perf_counter()
    for _ in range(total):
        ticket = service.run(request("bench-seq"))
        assert ticket.status == "ok", ticket.error
    seq_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    tickets = [
        service.submit(request(f"bench-c{i}"))
        for i in range(TENANTS)
        for _ in range(RUNS_PER_TENANT)
    ]
    for ticket in tickets:
        ticket.wait(180.0)
    conc_s = time.perf_counter() - t0
    assert all(t.status == "ok" for t in tickets)
    return {
        "batch_runs": total,
        "sequential_runs_per_s": round(total / seq_s, 2),
        "concurrent_runs_per_s": round(total / conc_s, 2),
        "concurrency_speedup": round(seq_s / conc_s, 2),
    }


def sweep() -> Dict:
    doc = measure_build()
    with SkipperService(cluster_size=4) as service:
        doc.update(measure_submit(service))
        doc.update(measure_tenancy(service))
        doc["cache"] = service.cache.stats()
    return doc


def render(doc: Dict) -> None:
    print(f"\ncompile cache: cold build {doc['build_cold_ms']:.2f} ms, "
          f"warm lookup {doc['build_warm_ms']:.4f} ms "
          f"({doc['build_speedup']:.0f}x)")
    print(f"submit latency: cold {doc['submit_cold_ms']:.1f} ms, "
          f"warm {doc['submit_warm_ms']:.1f} ms "
          f"({doc['submit_warm_speedup']:.2f}x)")
    print(f"{TENANTS} tenants x {RUNS_PER_TENANT} runs: "
          f"{doc['sequential_runs_per_s']:.2f} runs/s sequential, "
          f"{doc['concurrent_runs_per_s']:.2f} runs/s concurrent "
          f"({doc['concurrency_speedup']:.2f}x)")


def check_shape(doc: Dict) -> None:
    """The qualitative contract: caching and multiplexing both pay."""
    # A hit still pays the content fingerprints (tokenise + bytecode
    # hashes) — that price is why the floor is 2x, not 100x.
    assert doc["build_speedup"] > 2, (
        "a cache hit must be clearly cheaper than a compile"
    )
    assert doc["submit_warm_speedup"] > 0.8, (
        "a warm submit must not be slower than a cold one"
    )
    assert doc["concurrency_speedup"] > 1.0, (
        "concurrent tenants must beat one-at-a-time on a multi-slot pool"
    )


def test_serve_bench(benchmark):
    doc = run_once(benchmark, sweep)
    render(doc)
    check_shape(doc)
    for key in ("build_speedup", "submit_warm_speedup",
                "concurrency_speedup", "concurrent_runs_per_s"):
        benchmark.extra_info[key] = doc[key]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serving-plane bench: cold/warm submits, N-tenant "
                    "throughput"
    )
    parser.add_argument("--json", metavar="FILE",
                        default=default_artifact("serve"),
                        help="write the numbers as a JSON document "
                             "(default: repo-root BENCH_serve.json)")
    args = parser.parse_args(argv)
    doc = sweep()
    render(doc)
    check_shape(doc)
    document = {
        "tenants": TENANTS,
        "runs_per_tenant": RUNS_PER_TENANT,
        "frames": FRAMES,
        **doc,
    }
    with open(args.json, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
