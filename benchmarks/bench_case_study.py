"""E5 — the headline numbers of §4.

Paper: on a ring of 8 Transputers (T9000) processing a 25 Hz 512x512
stream, minimal latency is **30 ms for the tracking phase** and **110 ms
for the reinitialisation phase**, "with the application processing each
image of the video stream in first case, and one image out of 3 in the
second".

This benchmark runs the full pipeline (spec -> HM types -> PNT ->
profiled AAA mapping -> simulated T9000 ring) and reports the same rows.
"""

from conftest import run_once

from repro import build
from repro.syndex import ring
from repro.tracking import build_tracking_app

PAPER_TRACKING_MS = 30.0
PAPER_REINIT_MS = 110.0


def _run_case_study():
    app = build_tracking_app(nproc=8, n_frames=10, frame_size=512, n_vehicles=3)
    built = build(
        app.source, app.table, ring(8),
        profile_iterations=2, rewind=app.rewind,
    )
    report = built.run(real_time=True)
    return app, report


def test_case_study_latencies(benchmark):
    _app, report = run_once(benchmark, _run_case_study)
    reinit_ms = report.iterations[0].latency / 1000
    stable = [r.latency for r in report.iterations[2:]]
    tracking_ms = sum(stable) / len(stable) / 1000
    reinit_step = (
        report.iterations[1].frame_index - report.iterations[0].frame_index
    )
    benchmark.extra_info.update(
        {
            "paper_tracking_ms": PAPER_TRACKING_MS,
            "measured_tracking_ms": round(tracking_ms, 1),
            "paper_reinit_ms": PAPER_REINIT_MS,
            "measured_reinit_ms": round(reinit_ms, 1),
            "reinit_frame_step": reinit_step,
        }
    )
    print("\nE5: case study latencies (ring of 8 simulated T9000)")
    print(f"  tracking : paper {PAPER_TRACKING_MS:6.1f} ms   "
          f"measured {tracking_ms:6.1f} ms")
    print(f"  reinit   : paper {PAPER_REINIT_MS:6.1f} ms   "
          f"measured {reinit_ms:6.1f} ms")
    print(f"  reinit processes one image out of {reinit_step + 1}"
          f" (paper: one out of 3)")
    # Shape assertions: same order of magnitude, same phase ordering,
    # tracking within the 40 ms frame budget, reinit well beyond it.
    assert 0.5 * PAPER_TRACKING_MS <= tracking_ms <= 1.5 * PAPER_TRACKING_MS
    assert 0.7 * PAPER_REINIT_MS <= reinit_ms <= 1.4 * PAPER_REINIT_MS
    assert tracking_ms < 40.0 < reinit_ms
    assert reinit_step >= 2


def test_case_study_tracks_ground_truth(benchmark):
    app, report = run_once(benchmark, _run_case_study)
    state = report.final_state
    assert state.tracking
    truth = app.scene.vehicles_at(report.iterations[-1].frame_index)
    errors = []
    for track in state.tracks:
        best = min(truth, key=lambda v: abs(v.x - track.x) + abs(v.z - track.z))
        errors.append(abs(best.z - track.z))
    benchmark.extra_info["max_depth_error_m"] = round(max(errors), 3)
    assert max(errors) < 1.0  # metre-level 3D accuracy from a mono camera
