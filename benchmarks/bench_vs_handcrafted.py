"""E6 — skeleton-generated vs hand-crafted parallel version.

Paper: "These performances are similar to the ones obtained by an
existing hand-crafted parallel version of the algorithm" — the skeleton
environment costs (almost) nothing over manual parallelisation, while
the hand version took >=10x longer to write (see E12).

Both versions run the same sequential functions on the same simulated
ring; the hand version uses a manually wired process graph (routers
inlined away) and a hard-coded placement.
"""

from conftest import run_once

from repro import build
from repro.baselines import handcrafted_mapping, handcrafted_tracking_graph
from repro.machine import Executive, T9000
from repro.syndex import ring
from repro.tracking import build_tracking_app

NPROC = 8


def _skeleton_version():
    app = build_tracking_app(
        nproc=NPROC, n_frames=8, frame_size=512, n_vehicles=3
    )
    built = build(
        app.source, app.table, ring(NPROC),
        profile_iterations=2, rewind=app.rewind,
    )
    return app, built.run(real_time=True)


def _handcrafted_version():
    app = build_tracking_app(
        nproc=NPROC, n_frames=8, frame_size=512, n_vehicles=3
    )
    graph = handcrafted_tracking_graph(NPROC)
    mapping = handcrafted_mapping(graph, ring(NPROC))
    executive = Executive(mapping, app.table, T9000, real_time=True)
    return app, executive.run()


def _phases(report):
    stable = [r.latency for r in report.iterations[2:]]
    return (
        report.iterations[0].latency / 1000,
        sum(stable) / len(stable) / 1000,
    )


def test_skeleton_matches_handcrafted_performance(benchmark):
    def both():
        return _skeleton_version(), _handcrafted_version()

    (skel_app, skel_report), (hand_app, hand_report) = run_once(benchmark, both)
    skel_reinit, skel_track = _phases(skel_report)
    hand_reinit, hand_track = _phases(hand_report)
    print("\nE6: skeleton-generated vs hand-crafted (8-processor ring)")
    print(f"  tracking : skeleton {skel_track:6.1f} ms   "
          f"hand-crafted {hand_track:6.1f} ms")
    print(f"  reinit   : skeleton {skel_reinit:6.1f} ms   "
          f"hand-crafted {hand_reinit:6.1f} ms")
    benchmark.extra_info.update(
        {
            "skeleton_tracking_ms": round(skel_track, 1),
            "handcrafted_tracking_ms": round(hand_track, 1),
            "skeleton_reinit_ms": round(skel_reinit, 1),
            "handcrafted_reinit_ms": round(hand_reinit, 1),
        }
    )
    # The paper's claim: similar performance (within 20% here).
    assert skel_track <= 1.2 * hand_track
    assert skel_reinit <= 1.2 * hand_reinit
    # And identical functional output.
    assert skel_app.displayed == hand_app.displayed


def test_both_versions_run_same_functions(benchmark):
    """The hand version reuses the very same sequential code — only the
    coordination differs (that is the paper's development-effort story)."""
    def build_graphs():
        app = build_tracking_app(nproc=NPROC, n_frames=1, frame_size=128)
        hand = handcrafted_tracking_graph(NPROC)
        return app, hand

    app, hand = run_once(benchmark, build_graphs)
    hand_funcs = {p.func for p in hand.processes.values() if p.func}
    assert hand_funcs <= set(app.table.names())
