"""E16 (extension, §4) — occlusion handling and recovery.

The paper credits the "set of rigidity criteria" with resolving
"ambiguous cases (occultations, etc)" and specifies the failure rule:
fewer than three marks detected → assume prediction failed →
reinitialise by tiling the image.  This benchmark injects a mark
occlusion mid-stream and measures the full cycle: detection of the
loss, the reinitialisation iterations (and their latency spike), and
recovery back to full tracking with correct 3D pose.
"""

from conftest import run_once

from repro import build
from repro.syndex import ring
from repro.tracking import Occlusion, build_tracking_app
from repro.tracking.metrics import depth_rmse

NPROC = 8
N_FRAMES = 24
# Hide the top mark of vehicle 0 for frames 6-8.
OCCLUSION = (Occlusion(vehicle_index=0, mark_index=2, start=6, end=9),)


def _run():
    app = build_tracking_app(
        nproc=NPROC, n_frames=N_FRAMES, frame_size=512, n_vehicles=1,
        occlusions=OCCLUSION,
    )
    built = build(
        app.source, app.table, ring(NPROC),
        profile_iterations=2, rewind=app.rewind,
    )
    report = built.run(real_time=True)
    return app, report


def test_occlusion_recovery_cycle(benchmark):
    app, report = run_once(benchmark, _run)
    # Classify each iteration by what the tracker saw.
    phases = []
    for rec, marks in zip(report.iterations, app.displayed):
        phases.append((rec.frame_index, len(marks), rec.latency / 1000))

    print("\nE16: occlusion injected on frames 6-8 (top mark of vehicle 0)")
    print("  frame  marks  latency")
    for frame, n_marks, latency in phases:
        note = " <- occluded" if 6 <= frame < 9 else ""
        print(f"  {frame:>5}  {n_marks:>5}  {latency:7.1f} ms{note}")

    # 1. Before the occlusion: stable tracking with 3 marks.
    before = [p for p in phases if p[0] < 6]
    assert all(n == 3 for _f, n, _l in before[1:])

    # 2. The occluded frame yields fewer than 3 marks (the failure rule
    #    fires) ...
    occluded = [p for p in phases if 6 <= p[0] < 9]
    assert any(n < 3 for _f, n, _l in occluded)

    # 3. ... and the *following* iteration reinitialises: full-frame
    #    bands cost reinit-level latency.
    reinit_lat = [
        l for (f, _n, l) in phases
        if f > 6 and l > 80.0
    ]
    assert reinit_lat, "no reinitialisation latency spike observed"

    # 4. After the occlusion ends, tracking recovers: final iterations
    #    see all 3 marks again at tracking-level latency.
    tail = phases[-3:]
    assert all(n == 3 for _f, n, _l in tail)
    assert all(l < 40.0 for _f, _n, l in tail)

    # 5. And the recovered 3D pose is accurate.
    final_frame = report.iterations[-1].frame_index
    rmse = depth_rmse(app.scene, final_frame, report.final_state)
    assert rmse < 1.0
    benchmark.extra_info.update(
        {
            "reinit_spikes": len(reinit_lat),
            "recovered_depth_rmse_m": round(rmse, 3),
        }
    )


def test_no_occlusion_baseline_never_reinitialises(benchmark):
    """Control: the same scene without occlusion keeps tracking after
    the initial reinitialisation."""

    def run_clean():
        app = build_tracking_app(
            nproc=NPROC, n_frames=12, frame_size=512, n_vehicles=1
        )
        built = build(
            app.source, app.table, ring(NPROC),
            profile_iterations=2, rewind=app.rewind,
        )
        return app, built.run(real_time=True)

    app, report = run_once(benchmark, run_clean)
    laters = [r.latency / 1000 for r in report.iterations[1:]]
    assert all(l < 40.0 for l in laters)
    assert all(len(ms) == 3 for ms in app.displayed[:1] + app.displayed[1:])
