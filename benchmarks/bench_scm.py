"""E9 — geometric data parallelism under ``scm``.

Paper (§2): the first pattern class is "geometric processing of iconic
data" — split the image, process sub-domains independently, merge.  Its
canonical applications are regular low-level operators (convolution)
and connected-component labelling [7].

This benchmark sweeps the split degree for a convolution-style operator
whose cost is proportional to band pixels (near-linear speedup
expected) and for CCL whose merge cost grows with the number of seams
(sublinear expected) — the classic shape of scm scaling.
"""

from conftest import run_once

from repro import FunctionTable, ProgramBuilder, T9000
from repro.machine import simulate
from repro.pnt import expand_program
from repro.syndex import distribute, ring

ROWS, COLS = 512, 512
DEGREES = (1, 2, 4, 8, 16)


def make_table():
    """Cost-model-driven substrate: data are (nrows, ncols) shapes."""
    table = FunctionTable()
    table.register(
        "split_img", ins=["int", "img"], outs=["band list"],
        cost=lambda n, im: 200.0 + 0.05 * im[0] * im[1],
    )(lambda n, im: [(im[0] // n, im[1])] * n)
    # Convolution: 9 taps/pixel at ~0.8 us each on the reference CPU.
    table.register(
        "convolve_band", ins=["band"], outs=["band"],
        cost=lambda band: 500.0 + 7.0 * band[0] * band[1],
    )(lambda band: band)
    table.register(
        "merge_img", ins=["img", "band list"], outs=["img"],
        cost=lambda im, parts: 200.0 + 0.05 * im[0] * im[1],
    )(lambda im, parts: im)
    # CCL: ~4 us/pixel locally, plus a per-seam merge charged in merge.
    table.register(
        "label_band", ins=["band"], outs=["band"],
        cost=lambda band: 500.0 + 4.0 * band[0] * band[1],
    )(lambda band: band)
    table.register(
        "merge_labels", ins=["img", "band list"], outs=["img"],
        cost=lambda im, parts: 200.0 + 60.0 * im[1] * max(0, len(parts) - 1),
    )(lambda im, parts: im)
    return table


def scm_program(table, comp, merge, degree):
    b = ProgramBuilder(f"scm_{comp}_{degree}", table)
    (im,) = b.params("im")
    out = b.scm(degree, split="split_img", comp=comp, merge=merge, x=im)
    return b.returns(out)


def _makespan(table, comp, merge, degree) -> float:
    prog = scm_program(table, comp, merge, degree)
    arch = ring(max(degree, 1))
    mapping = distribute(expand_program(prog, table), arch)
    report = simulate(mapping, table, T9000, args=((ROWS, COLS),))
    return report.makespan / 1000


def test_scm_scaling_convolution_vs_ccl(benchmark):
    table = make_table()

    def sweep():
        out = {}
        for degree in DEGREES:
            out[("conv", degree)] = _makespan(
                table, "convolve_band", "merge_img", degree
            )
            out[("ccl", degree)] = _makespan(
                table, "label_band", "merge_labels", degree
            )
        return out

    results = run_once(benchmark, sweep)
    print("\nE9: scm scaling on a 512x512 frame (simulated T9000 ring)")
    print("   P   convolution  speedup      CCL   speedup")
    for degree in DEGREES:
        conv = results[("conv", degree)]
        ccl = results[("ccl", degree)]
        s_conv = results[("conv", 1)] / conv
        s_ccl = results[("ccl", 1)] / ccl
        print(f"  {degree:>2}  {conv:9.1f} ms {s_conv:7.2f}x"
              f" {ccl:9.1f} ms {s_ccl:7.2f}x")
        benchmark.extra_info[f"conv_ms_p{degree}"] = round(conv, 1)
        benchmark.extra_info[f"ccl_ms_p{degree}"] = round(ccl, 1)

    conv_speedup_8 = results[("conv", 1)] / results[("conv", 8)]
    ccl_speedup_8 = results[("ccl", 1)] / results[("ccl", 8)]
    # Convolution scales near-linearly to 8 processors...
    assert conv_speedup_8 > 5.0
    # ...CCL scales too, but visibly worse (seam merging is serial).
    assert 1.5 < ccl_speedup_8 < conv_speedup_8
