"""E14 (extension) — what the mapping stage buys.

SynDEx's role in the pipeline is the "adequation": matching the
algorithm graph to the architecture graph using measured costs.  This
ablation maps the same tracking application four ways —

* bi-criteria (AAA-seeded Pareto search over latency x period x
  reliability, measured costs),
* profiled AAA (measured compute times + edge payloads),
* structural AAA (default kind weights, hop-count comm penalty),
* naive round-robin placement,

— and compares the simulated latencies.  The cost-aware mappings
dominate: they keep the frame-sized edges processor-local.

The second leg is the scheduler A/B the perf gate rides on: on a
heterogeneous-cost graph (one farm worker 8x heavier than its
siblings, a heavy post-farm stage) the bi-criteria search must beat
round-robin placement on predicted throughput period by a gated
margin, and never lose on predicted latency or reliability.  The cost
model is deterministic, so the gate can be tight.
"""

import argparse
import json
from typing import Dict, List, Optional

from conftest import default_artifact, run_once

from repro import pipeline
from repro.core import FunctionTable, ProgramBuilder
from repro.machine import Executive, T9000
from repro.pnt import expand_program
from repro.sched.costmodel import predict
from repro.sched.mapper import bicriteria_map
from repro.syndex import distribute, ring, round_robin
from repro.tracking import build_tracking_app

NPROC = 8

#: The heterogeneous leg: a df farm whose worker0 is 8x its siblings
#: plus a heavy post-farm stage — the shape naive dealing mishandles.
HET_DEGREE = 4
HET_NPROC = 4


def _measure(strategy: str) -> dict:
    app = build_tracking_app(nproc=NPROC, n_frames=8, frame_size=512,
                             n_vehicles=3)
    compiled = pipeline.compile_source(app.source, app.table)
    graph = pipeline.expand(compiled.ir, app.table)
    arch = ring(NPROC)
    if strategy in ("bicriteria", "profiled"):
        prof = pipeline.profile(
            graph, app.table, max_iterations=2, rewind=app.rewind
        )
        mapping = pipeline.map_onto(
            graph, arch, profile=prof,
            scheduler="bicriteria" if strategy == "bicriteria" else None,
        )
    elif strategy == "structural":
        mapping = distribute(graph, arch)
    else:
        mapping = round_robin(graph, arch)
    report = Executive(mapping, app.table, T9000, real_time=True).run()
    stable = [r.latency for r in report.iterations[2:]]
    return {
        "reinit_ms": report.iterations[0].latency / 1000,
        "tracking_ms": sum(stable) / len(stable) / 1000,
    }


STRATEGIES = ("bicriteria", "profiled", "structural", "naive")


def heterogeneous_graph():
    table = FunctionTable()
    table.register("feed", ins=["unit"], outs=["'a list"])(lambda _: [])
    table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
    table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
    table.register("step", ins=["'c", "'a list"], outs=["'c", "'d"])(
        lambda s, xs: (s, None)
    )
    table.register("emit", ins=["'d"])(lambda y: None)
    b = ProgramBuilder("het", table)
    state, item = b.params("state", "item")
    total = b.df(HET_DEGREE, comp="comp", acc="acc", z=state, xs=item)
    s2, y = b.apply("step", total, item)
    prog = b.stream(s2, y, inp="feed", out="emit", init_value=0, source=None)
    graph = expand_program(prog, table)
    durations = {}
    for pid in graph.processes:
        durations[pid] = 100.0
        if pid.endswith("worker0"):
            durations[pid] = 800.0
        elif pid.startswith("step"):
            durations[pid] = 600.0
    return graph, durations


def scheduler_ab() -> Dict[str, dict]:
    """Predicted criteria: bi-criteria vs round-robin, heterogeneous costs."""
    graph, durations = heterogeneous_graph()
    arch = ring(HET_NPROC)
    best = bicriteria_map(graph, arch, durations=durations)
    naive = round_robin(graph, arch)
    rows = {
        "bicriteria": predict(best, durations=durations).to_dict(),
        "round_robin": predict(naive, durations=durations).to_dict(),
    }
    rows["period_gain"] = round(
        rows["round_robin"]["period_us"] / rows["bicriteria"]["period_us"], 4
    )
    rows["latency_ratio"] = round(
        rows["bicriteria"]["latency_us"] / rows["round_robin"]["latency_us"],
        4,
    )
    return rows


def render_ab(ab: Dict[str, dict]) -> None:
    print("\nE14b: bi-criteria vs round-robin "
          f"(heterogeneous df:{HET_DEGREE}, ring of {HET_NPROC})")
    print("  policy        latency      period   reliability")
    for policy in ("bicriteria", "round_robin"):
        r = ab[policy]
        print(f"  {policy:12} {r['latency_us']:8.1f} us "
              f"{r['period_us']:8.1f} us   {r['reliability']:.6f}")
    print(f"  period gain {ab['period_gain']:.2f}x, "
          f"latency ratio {ab['latency_ratio']:.2f}")


def check_ab(ab: Dict[str, dict]) -> None:
    """The qualitative contract the gate quantifies."""
    assert ab["period_gain"] > 1.0, ab
    assert ab["latency_ratio"] <= 1.0 + 1e-9, ab
    assert (ab["bicriteria"]["reliability"]
            >= ab["round_robin"]["reliability"]), ab


def test_mapping_quality_ablation(benchmark):
    results = run_once(
        benchmark,
        lambda: {s: _measure(s) for s in STRATEGIES},
    )
    print("\nE14: mapping-strategy ablation (tracking app, ring of 8)")
    print("  strategy     tracking     reinit")
    for strategy in STRATEGIES:
        r = results[strategy]
        print(f"  {strategy:10} {r['tracking_ms']:8.1f} ms {r['reinit_ms']:8.1f} ms")
        benchmark.extra_info[f"{strategy}_tracking_ms"] = round(
            r["tracking_ms"], 1
        )
        benchmark.extra_info[f"{strategy}_reinit_ms"] = round(r["reinit_ms"], 1)

    # The measured-cost adequation dominates both ablations.
    assert (
        results["profiled"]["tracking_ms"]
        <= results["structural"]["tracking_ms"] + 0.5
    )
    assert (
        results["profiled"]["reinit_ms"]
        <= results["structural"]["reinit_ms"] + 0.5
    )
    # And clearly beats naive placement on at least one phase.
    assert (
        results["profiled"]["tracking_ms"] < results["naive"]["tracking_ms"]
        or results["profiled"]["reinit_ms"] < results["naive"]["reinit_ms"]
    )
    # The Pareto search never loses to its own AAA seed.
    assert (
        results["bicriteria"]["tracking_ms"]
        <= results["profiled"]["tracking_ms"] + 0.5
    )

    ab = scheduler_ab()
    render_ab(ab)
    check_ab(ab)
    benchmark.extra_info["period_gain"] = ab["period_gain"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="mapping-strategy ablation + scheduler A/B"
    )
    parser.add_argument("--json", metavar="FILE",
                        default=default_artifact("mapping"),
                        help="write the results as a JSON document "
                             "(default: repo-root BENCH_mapping.json)")
    parser.add_argument("--skip-simulation", action="store_true",
                        help="only run the deterministic scheduler A/B "
                             "(the gated leg)")
    args = parser.parse_args(argv)
    document: Dict[str, object] = {"nproc": NPROC}
    if not args.skip_simulation:
        results = {s: _measure(s) for s in STRATEGIES}
        print("E14: mapping-strategy ablation (tracking app, ring of 8)")
        for strategy in STRATEGIES:
            r = results[strategy]
            print(f"  {strategy:10} {r['tracking_ms']:8.1f} ms "
                  f"{r['reinit_ms']:8.1f} ms")
        document["ablation"] = results
    ab = scheduler_ab()
    render_ab(ab)
    check_ab(ab)
    document["scheduler_ab"] = ab
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
