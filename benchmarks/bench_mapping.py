"""E14 (extension) — what the AAA mapping stage buys.

SynDEx's role in the pipeline is the "adequation": matching the
algorithm graph to the architecture graph using measured costs.  This
ablation maps the same tracking application three ways —

* profiled AAA (measured compute times + edge payloads),
* structural AAA (default kind weights, hop-count comm penalty),
* naive round-robin placement,

— and compares the simulated latencies.  The profiled mapping should
dominate: it is the one that keeps the frame-sized edges processor-local.
"""

from conftest import run_once

from repro import pipeline
from repro.machine import Executive, T9000
from repro.syndex import Mapping, distribute, ring, round_robin
from repro.tracking import build_tracking_app

NPROC = 8


def _measure(strategy: str) -> dict:
    app = build_tracking_app(nproc=NPROC, n_frames=8, frame_size=512,
                             n_vehicles=3)
    compiled = pipeline.compile_source(app.source, app.table)
    graph = pipeline.expand(compiled.ir, app.table)
    arch = ring(NPROC)
    if strategy == "profiled":
        prof = pipeline.profile(
            graph, app.table, max_iterations=2, rewind=app.rewind
        )
        mapping = pipeline.map_onto(graph, arch, profile=prof)
    elif strategy == "structural":
        mapping = distribute(graph, arch)
    else:
        mapping = round_robin(graph, arch)
    report = Executive(mapping, app.table, T9000, real_time=True).run()
    stable = [r.latency for r in report.iterations[2:]]
    return {
        "reinit_ms": report.iterations[0].latency / 1000,
        "tracking_ms": sum(stable) / len(stable) / 1000,
    }


def test_mapping_quality_ablation(benchmark):
    results = run_once(
        benchmark,
        lambda: {s: _measure(s) for s in ("profiled", "structural", "naive")},
    )
    print("\nE14: mapping-strategy ablation (tracking app, ring of 8)")
    print("  strategy     tracking     reinit")
    for strategy in ("profiled", "structural", "naive"):
        r = results[strategy]
        print(f"  {strategy:10} {r['tracking_ms']:8.1f} ms {r['reinit_ms']:8.1f} ms")
        benchmark.extra_info[f"{strategy}_tracking_ms"] = round(
            r["tracking_ms"], 1
        )
        benchmark.extra_info[f"{strategy}_reinit_ms"] = round(r["reinit_ms"], 1)

    # The measured-cost adequation dominates both ablations.
    assert (
        results["profiled"]["tracking_ms"]
        <= results["structural"]["tracking_ms"] + 0.5
    )
    assert (
        results["profiled"]["reinit_ms"]
        <= results["structural"]["reinit_ms"] + 0.5
    )
    # And clearly beats naive placement on at least one phase.
    assert (
        results["profiled"]["tracking_ms"] < results["naive"]["tracking_ms"]
        or results["profiled"]["reinit_ms"] < results["naive"]["reinit_ms"]
    )
