"""E13 (extension, paper §6) — inter-skeleton transformation rules.

The paper's conclusion names "inter-skeleton transformational rules" as
the needed next step when "applications are built by composing ... a
large number of skeletons".  This repo implements them
(:mod:`repro.core.transform`); this benchmark is the ablation: a
two-stage farm pipeline (filter-marks then measure-marks) simulated
with and without farm fusion, plus degree clamping on an over-specified
program.
"""

from conftest import run_once

from repro import FunctionTable, ProgramBuilder, T9000
from repro.core import emulate_once, optimize
from repro.machine import simulate
from repro.pnt import expand_program
from repro.syndex import distribute, ring

NPROC = 4


def make_table():
    """Two farm stages whose *intermediate* values are heavy.

    Stage 1 turns a window id into a filtered 8 kB pixel block; stage 2
    reduces each block to a scalar.  Unfused, every block crosses the
    network twice (worker -> master, master -> worker); fused, blocks
    live and die inside one worker — the communication saving is the
    point of the rule.
    """
    table = FunctionTable()

    def clean(x):
        return bytes([x % 256]) * 8_192  # the filtered window

    table.register("clean", ins=["int"], outs=["block"], cost=1_500.0)(clean)
    table.register(
        "cons", ins=["block list", "block"], outs=["block list"],
        cost=20.0, properties=["append"],
    )(lambda acc, y: sorted(acc + [y]))
    table.register(
        "measure", ins=["block"], outs=["int"], cost=1_500.0
    )(lambda block: sum(block[:16]))
    table.register(
        "add", ins=["int", "int"], outs=["int"], cost=20.0,
        properties=["commutative", "associative"],
    )(lambda a, b: a + b)
    return table


def two_stage_program(table):
    b = ProgramBuilder("two_farms", table)
    (xs,) = b.params("xs")
    cleaned = b.df(NPROC, comp="clean", acc="cons", z=b.const([]), xs=xs)
    total = b.df(NPROC, comp="measure", acc="add", z=b.const(0), xs=cleaned)
    return b.returns(total)


WORKLOAD = list(range(24))


def test_farm_fusion_ablation(benchmark):
    def measure():
        table = make_table()
        original = two_stage_program(table)
        fused, report = optimize(original, table)
        assert len(fused.skeleton_instances()) == 1, report.render()

        m_orig = distribute(expand_program(original, table), ring(NPROC))
        m_fused = distribute(expand_program(fused, table), ring(NPROC))
        r_orig = simulate(m_orig, table, T9000, args=(WORKLOAD,))
        r_fused = simulate(m_fused, table, T9000, args=(WORKLOAD,))
        expected = emulate_once(original, table, WORKLOAD)
        return r_orig, r_fused, expected, m_orig, m_fused

    r_orig, r_fused, expected, m_orig, m_fused = run_once(benchmark, measure)
    orig_ms = r_orig.makespan / 1000
    fused_ms = r_fused.makespan / 1000
    print("\nE13: farm fusion ablation (two-stage pipeline, 4 workers)")
    print(f"  unfused : {orig_ms:7.1f} ms "
          f"({len(m_orig.graph)} processes)")
    print(f"  fused   : {fused_ms:7.1f} ms "
          f"({len(m_fused.graph)} processes)  "
          f"{orig_ms / fused_ms:.2f}x faster")
    benchmark.extra_info.update(
        {
            "unfused_ms": round(orig_ms, 1),
            "fused_ms": round(fused_ms, 1),
            "speedup": round(orig_ms / fused_ms, 2),
        }
    )
    # Semantics preserved on both paths.
    assert r_orig.one_shot_results == expected
    assert r_fused.one_shot_results == expected
    # Fusion removes a full dispatch/collect round-trip: >=25% faster
    # and a strictly smaller process network.
    assert fused_ms < 0.8 * orig_ms
    assert len(m_fused.graph) < len(m_orig.graph)


def test_degree_clamping_ablation(benchmark):
    """A degree-16 farm on a 4-processor ring: clamping sheds the
    useless workers and their routers."""

    def measure():
        table = make_table()
        table.register("work", ins=["int"], outs=["int"], cost=1_500.0)(
            lambda x: x * x
        )
        b = ProgramBuilder("over", table)
        (xs,) = b.params("xs")
        out = b.df(16, comp="work", acc="add", z=b.const(0), xs=xs)
        original = b.returns(out)
        clamped, _report = optimize(original, table, max_degree=4)
        m_orig = distribute(expand_program(original, table), ring(4))
        m_clamp = distribute(expand_program(clamped, table), ring(4))
        r_orig = simulate(m_orig, table, T9000, args=(WORKLOAD,))
        r_clamp = simulate(m_clamp, table, T9000, args=(WORKLOAD,))
        return r_orig, r_clamp, m_orig, m_clamp

    r_orig, r_clamp, m_orig, m_clamp = run_once(benchmark, measure)
    assert r_orig.one_shot_results == r_clamp.one_shot_results
    assert len(m_clamp.graph) < len(m_orig.graph)
    orig_ms = r_orig.makespan / 1000
    clamp_ms = r_clamp.makespan / 1000
    print(f"\nE13b: degree clamping 16->4 on ring4: "
          f"{orig_ms:.1f} ms -> {clamp_ms:.1f} ms, "
          f"{len(m_orig.graph)} -> {len(m_clamp.graph)} processes")
    benchmark.extra_info.update(
        {"overdegree_ms": round(orig_ms, 1), "clamped_ms": round(clamp_ms, 1)}
    )
    # Sixteen workers time-sliced on 4 CPUs cannot beat 4 workers.
    assert clamp_ms <= orig_ms * 1.02