"""E12 — the programmability claim.

Paper (§4): "the programmer's work here reduced to writing 6 sequential
C functions and the caml specification given above.  All underlying
parallel implementation details ... were transparently handled by the
environment.  The result is that it took less than one day to get a
first working implementation ... The previously hand-crafted parallel
version had required at least ten times longer."

Development time cannot be re-measured, so this benchmark reports the
measurable proxy the claim rests on: the volume of coordination
machinery the environment generates (process graph, mapping,
macro-code, executive source) per line of user-written specification —
and shows that retargeting to a different processor count or topology
is a one-line change that regenerates everything.
"""

from conftest import run_once

from repro import build
from repro.codegen import emit_all, generate_python
from repro.syndex import now, ring
from repro.tracking import build_tracking_app


def test_generated_vs_written_volume(benchmark):
    def measure():
        app = build_tracking_app(
            nproc=8, n_frames=1, frame_size=96, n_vehicles=1
        )
        built = build(app.source, app.table, ring(8))
        macro = emit_all(built.mapping)
        executive = generate_python(built.mapping)
        return app, built, macro, executive

    app, built, macro, executive = run_once(benchmark, measure)
    spec_lines = len([l for l in app.source.splitlines() if l.strip()])
    macro_lines = sum(len(m.splitlines()) for m in macro.values())
    exec_lines = len(executive.splitlines())
    ratio = (macro_lines + exec_lines) / spec_lines
    print("\nE12: user-written vs generated artefacts (8-processor ring)")
    print(f"  specification      : {spec_lines} lines "
          f"+ {len(app.table)} sequential functions")
    print(f"  process graph      : {len(built.graph)} processes, "
          f"{len(built.graph.edges)} edges")
    print(f"  macro-code         : {macro_lines} lines "
          f"({len(macro)} processors)")
    print(f"  executive source   : {exec_lines} lines")
    print(f"  generated/spec     : {ratio:.0f}x")
    benchmark.extra_info.update(
        {
            "spec_lines": spec_lines,
            "macro_lines": macro_lines,
            "executive_lines": exec_lines,
            "ratio": round(ratio, 1),
        }
    )
    # The environment writes >= 10x what the user writes — the mechanical
    # counterpart of the paper's >=10x development-time saving.
    assert ratio >= 10.0
    assert spec_lines <= 10
    assert len(app.table) <= 8  # "6 sequential C functions" (+grab/init here)


def test_retargeting_is_one_line(benchmark):
    """Changing processor count or topology regenerates everything."""

    def retarget():
        versions = {}
        for nproc, arch in ((4, ring(4)), (8, ring(8)), (6, now(6))):
            app = build_tracking_app(
                nproc=nproc, n_frames=1, frame_size=96, n_vehicles=1
            )
            built = build(app.source, app.table, arch)
            versions[(nproc, arch.name)] = built
        return versions

    versions = run_once(benchmark, retarget)
    sizes = {key: len(b.graph) for key, b in versions.items()}
    # Different degrees/topologies produce different executives from the
    # same user code modulo one constant.
    assert sizes[(4, "ring4")] != sizes[(8, "ring8")]
    for built in versions.values():
        assert built.deadlock.ok
    print(f"\nE12b: three targets regenerated: "
          + ", ".join(f"{k}={v} processes" for k, v in sorted(sizes.items())))
