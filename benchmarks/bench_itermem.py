"""E4 (Fig. 4) — the ``itermem`` stream skeleton.

Paper Fig. 4 defines itermem: results computed on image ``i`` feed the
computation on image ``i+1`` through the MEM process.  This benchmark
measures the skeleton's per-iteration overhead (the price of the
INPUT/MEM/OUTPUT machinery over the loop body's own cost) and verifies
the loop-carried-state semantics on the simulated machine.
"""

from conftest import run_once

from repro import EndOfStream, FunctionTable, ProgramBuilder, T9000
from repro.machine import simulate
from repro.pnt import expand_program
from repro.syndex import distribute, ring

N_FRAMES = 50


def make_stream(body_cost_us: float):
    table = FunctionTable()
    count = {"i": 0}

    @table.register("read", ins=["unit"], outs=["int"], cost=100.0)
    def read(_src):
        i = count["i"]
        count["i"] += 1
        if i >= N_FRAMES:
            raise EndOfStream
        return i

    table.register(
        "work", ins=["int", "int"], outs=["int", "int"], cost=body_cost_us
    )(lambda s, i: (s + i, s + i))
    table.register("emit", ins=["int"], cost=50.0)(lambda y: None)

    b = ProgramBuilder("stream", table)
    state, item = b.params("state", "item")
    s2, y = b.apply("work", state, item)
    prog = b.stream(s2, y, inp="read", out="emit", init_value=0, source=None)
    mapping = distribute(expand_program(prog, table), ring(1))
    return table, mapping


def test_itermem_overhead(benchmark):
    def measure():
        out = {}
        for body_us in (0.0, 10_000.0):
            table, mapping = make_stream(body_us)
            report = simulate(mapping, table, T9000)
            out[body_us] = report
        return out

    results = run_once(benchmark, measure)
    empty = results[0.0]
    loaded = results[10_000.0]
    overhead_us = empty.makespan / len(empty.iterations)
    per_iter_loaded = loaded.makespan / len(loaded.iterations)
    print(f"\nE4: itermem per-iteration overhead: {overhead_us:.0f} us "
          f"(body 0) vs {per_iter_loaded:.0f} us (body 10 ms)")
    benchmark.extra_info["overhead_us"] = round(overhead_us, 1)
    # The stream machinery costs well under a frame period...
    assert overhead_us < 2_000.0
    # ...and adds only its constant on top of the body.
    assert per_iter_loaded - 10_000.0 == overhead_us


def test_state_carried_across_iterations(benchmark):
    table, mapping = make_stream(100.0)
    report = run_once(benchmark, lambda: simulate(mapping, table, T9000))
    # Running sums of 0..49: the loop-carried memory works.
    expected, acc = [], 0
    for i in range(N_FRAMES):
        acc += i
        expected.append(acc)
    assert report.outputs == expected
    assert report.final_state == acc
