"""E11 — deadlock freedom of generated executives.

Paper (§3): SynDEx "generates a dead-lock free distributed executive".
This benchmark sweeps every application shape in the repo across every
architecture family and runs the four-point deadlock-freedom analysis
on each mapping — all must pass — and times the analysis itself.
"""

from conftest import run_once

from repro import FunctionTable, ProgramBuilder
from repro.baselines import handcrafted_mapping, handcrafted_tracking_graph
from repro.pnt import expand_program
from repro.syndex import (
    chain,
    check_deadlock_freedom,
    distribute,
    fully_connected,
    mesh,
    now,
    ring,
    star,
)
from repro.tracking import build_tracking_app

ARCHES = [
    ring(1), ring(4), ring(8), chain(4), star(5),
    mesh(2, 3), fully_connected(4), now(6),
]


def all_graphs():
    graphs = []
    # The case study.
    app = build_tracking_app(nproc=4, n_frames=1, frame_size=96)
    from repro.minicaml import compile_source

    compiled = compile_source(app.source, app.table)
    graphs.append(expand_program(compiled.ir, app.table))
    # Every skeleton shape via the builder.
    table = FunctionTable()
    table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
    table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
    table.register("split", ins=["int", "'a"], outs=["'b list"])(lambda n, x: [x])
    table.register("merge", ins=["'a", "'c list"], outs=["'d"])(lambda x, rs: rs)

    for kind in ("df", "tf"):
        b = ProgramBuilder(kind, table)
        (xs,) = b.params("xs")
        out = getattr(b, kind)(5, comp="comp", acc="acc", z=b.const(0), xs=xs)
        graphs.append(expand_program(b.returns(out), table))
    b = ProgramBuilder("scm", table)
    (x,) = b.params("x")
    out = b.scm(5, split="split", comp="comp", merge="merge", x=x)
    graphs.append(expand_program(b.returns(out), table))
    # The hand-crafted baseline too.
    graphs.append(handcrafted_tracking_graph(4))
    return graphs


def test_all_mappings_deadlock_free(benchmark):
    def sweep():
        graphs = all_graphs()
        checked = 0
        for graph in graphs:
            for arch in ARCHES:
                if graph.name == "handcrafted_tracking":
                    mapping = handcrafted_mapping(graph, arch)
                else:
                    mapping = distribute(graph, arch)
                report = check_deadlock_freedom(mapping)
                assert report.ok, (
                    f"{graph.name} on {arch.name}: {report.render()}"
                )
                checked += 1
        return checked

    checked = run_once(benchmark, sweep)
    print(f"\nE11: {checked} program/architecture mappings verified "
          "deadlock-free")
    benchmark.extra_info["mappings_checked"] = checked
    assert checked == 5 * len(ARCHES)
