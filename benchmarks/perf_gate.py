"""Perf regression gate: BENCH_*.json artifacts vs checked-in baselines.

Every benchmark writes its headline numbers to a repo-root
``BENCH_<name>.json`` document (see ``conftest.default_artifact``).
Each file in ``benchmarks/baselines/`` names one such artifact and a
list of gated metrics; the gate fails when a metric regresses more than
its tolerance (default 25%) against the checked-in baseline value:

* ``direction: max`` — bigger is better; fail when
  ``value < baseline * (1 - tolerance)``;
* ``direction: min`` — smaller is better; fail when
  ``value > baseline * (1 + tolerance)``.

A metric's ``path`` walks the JSON document: string keys index objects,
integers index lists, and an object like ``{"policy": "block"}``
selects the first element of a list whose fields all match — so rows
keyed by content, not position, survive reordering.

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py            # gate
    PYTHONPATH=src python benchmarks/perf_gate.py --update   # re-baseline

Baselines are deliberately set *below* healthy measurements (they are
floors, not targets) so runner-to-runner noise does not flake the CI
job; ``--update`` rewrites them from the current artifacts at an extra
margin for when the workload itself changes.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from typing import Dict, List, Optional

DEFAULT_TOLERANCE = 0.25
#: ``--update`` headroom: new baselines sit 15% inside the measurement.
UPDATE_MARGIN = 0.15

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(ROOT, "benchmarks", "baselines")


def resolve(doc, path: List):
    """Walk ``path`` through ``doc`` (keys, indices, match-objects)."""
    cur = doc
    for step in path:
        if isinstance(step, dict):
            try:
                cur = next(
                    el for el in cur
                    if all(el.get(k) == v for k, v in step.items())
                )
            except StopIteration:
                raise KeyError(f"no element matching {step!r}")
        else:
            cur = cur[step]
    return cur


def judge(metric: Dict, value: float) -> Dict:
    """One metric against its baseline: the verdict row."""
    baseline = float(metric["baseline"])
    tolerance = float(metric.get("tolerance", DEFAULT_TOLERANCE))
    direction = metric.get("direction", "max")
    if direction == "max":
        limit = baseline * (1.0 - tolerance)
        ok = value >= limit
    elif direction == "min":
        limit = baseline * (1.0 + tolerance)
        ok = value <= limit
    else:
        raise ValueError(f"bad direction {direction!r}")
    return {
        "name": metric["name"],
        "value": value,
        "baseline": baseline,
        "limit": round(limit, 4),
        "direction": direction,
        "ok": ok,
    }


def gate_file(baseline_path: str, artifacts_dir: str) -> List[Dict]:
    """All verdicts for one baseline file (artifact missing → all fail)."""
    with open(baseline_path) as handle:
        spec = json.load(handle)
    artifact = os.path.join(artifacts_dir, spec["artifact"])
    if not os.path.exists(artifact):
        return [
            {"name": m["name"], "value": None, "baseline": m["baseline"],
             "limit": None, "direction": m.get("direction", "max"),
             "ok": False, "error": f"missing artifact {spec['artifact']}"}
            for m in spec["metrics"]
        ]
    with open(artifact) as handle:
        doc = json.load(handle)
    rows = []
    for metric in spec["metrics"]:
        try:
            value = float(resolve(doc, metric["path"]))
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            rows.append({
                "name": metric["name"], "value": None,
                "baseline": metric["baseline"], "limit": None,
                "direction": metric.get("direction", "max"),
                "ok": False, "error": f"unresolvable path: {exc}",
            })
            continue
        rows.append(judge(metric, value))
    return rows


def update_file(baseline_path: str, artifacts_dir: str) -> bool:
    """Rewrite one baseline file from the current artifact (with margin)."""
    with open(baseline_path) as handle:
        spec = json.load(handle)
    artifact = os.path.join(artifacts_dir, spec["artifact"])
    if not os.path.exists(artifact):
        print(f"  skip {os.path.basename(baseline_path)}: "
              f"missing {spec['artifact']}")
        return False
    with open(artifact) as handle:
        doc = json.load(handle)
    for metric in spec["metrics"]:
        value = float(resolve(doc, metric["path"]))
        if metric.get("direction", "max") == "max":
            metric["baseline"] = round(value * (1.0 - UPDATE_MARGIN), 4)
        else:
            metric["baseline"] = round(value * (1.0 + UPDATE_MARGIN), 4)
    with open(baseline_path, "w") as handle:
        json.dump(spec, handle, indent=2)
        handle.write("\n")
    print(f"  rebaselined {os.path.basename(baseline_path)}")
    return True


def render(group: str, rows: List[Dict]) -> None:
    print(f"\n{group}")
    for row in rows:
        mark = "ok  " if row["ok"] else "FAIL"
        if row.get("error"):
            print(f"  {mark} {row['name']:<28} {row['error']}")
            continue
        op = ">=" if row["direction"] == "max" else "<="
        print(f"  {mark} {row['name']:<28} {row['value']:>10.3f}  "
              f"(need {op} {row['limit']:.3f}, baseline {row['baseline']})")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate BENCH_*.json artifacts against checked-in "
                    "baselines (fail on >25%% regression)"
    )
    parser.add_argument("--artifacts-dir", default=ROOT,
                        help="directory holding the BENCH_*.json files "
                             "(default: repo root)")
    parser.add_argument("--baselines", default=BASELINE_DIR,
                        help="directory of baseline specs")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="gate only these baseline files (stem match); "
                             "repeatable")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the current artifacts "
                             "instead of gating")
    args = parser.parse_args(argv)

    paths = sorted(glob.glob(os.path.join(args.baselines, "*.json")))
    if args.only:
        keep = set(args.only)
        paths = [p for p in paths
                 if os.path.splitext(os.path.basename(p))[0] in keep]
    if not paths:
        print("perf gate: no baseline specs found")
        return 1

    if args.update:
        print("perf gate: rebaselining from current artifacts")
        for path in paths:
            update_file(path, args.artifacts_dir)
        return 0

    failed = total = 0
    for path in paths:
        rows = gate_file(path, args.artifacts_dir)
        render(os.path.splitext(os.path.basename(path))[0], rows)
        failed += sum(1 for row in rows if not row["ok"])
        total += len(rows)
    if failed:
        print(f"\nperf gate: FAIL ({failed} metric(s) regressed)")
        return 1
    print(f"\nperf gate: PASS ({total} metrics within tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
