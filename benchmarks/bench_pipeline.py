"""E2 (Fig. 2) — the complete environment, end to end.

Paper Fig. 2 shows the whole dataflow: one .ml source feeds *both* the
parallel implementation (custom caml compiler -> process graph ->
SynDEx mapping -> macro-code -> target executable) and the sequential
emulation.  This benchmark runs every stage on the case-study source
and verifies the two paths produce identical results — then times the
full "compile" (front end + expansion + mapping + code generation),
which is what the paper's fast-prototyping claim rests on.
"""

from conftest import run_once

from repro import build
from repro.codegen import emit_all, generate_python, run_generated
from repro.core import emulate
from repro.minicaml import compile_source
from repro.syndex import ring
from repro.tracking import build_tracking_app

NPROC = 4


def test_full_pipeline_stages(benchmark):
    """Time the spec -> executable pipeline; verify all three execution
    paths (emulation, simulation, generated threads) agree."""

    def compile_everything():
        app = build_tracking_app(
            nproc=NPROC, n_frames=3, frame_size=96, n_vehicles=1
        )
        built = build(app.source, app.table, ring(NPROC))
        macro = emit_all(built.mapping)
        source = generate_python(built.mapping)
        return app, built, macro, source

    app, built, macro, source = run_once(benchmark, compile_everything)
    benchmark.extra_info.update(
        {
            "processes": len(built.graph),
            "macro_lines": sum(len(m.splitlines()) for m in macro.values()),
            "generated_lines": len(source.splitlines()),
        }
    )

    # Path 1: sequential emulation.
    seq = emulate(built.compiled.ir, app.table, call_sink=True)
    seq_displayed = list(app.displayed)

    # Path 2: discrete-event simulation.
    app.rewind()
    sim = built.run()
    sim_displayed = list(app.displayed)

    # Path 3: the generated thread executive.
    app.rewind()
    bb = run_generated(built.mapping, app.table)
    gen_displayed = list(app.displayed)

    assert seq_displayed == sim_displayed == gen_displayed
    assert seq.final_state == sim.final_state == bb["final_state"]
    print("\nE2: one source, three equivalent execution paths "
          f"({len(seq_displayed)} frames each) "
          f"— {benchmark.extra_info['generated_lines']} generated lines")


def test_type_checking_rejects_bad_composition(benchmark):
    """The front end's polymorphic type check is part of the pipeline:
    swapping the farm's two functions must fail *before* any parallel
    machinery runs."""
    import pytest

    from repro.minicaml import TypeError_

    def check():
        app = build_tracking_app(
            nproc=NPROC, n_frames=1, frame_size=96, n_vehicles=1
        )
        bad = app.source.replace(
            "df nproc detect_mark accum_marks", "df nproc accum_marks detect_mark"
        )
        with pytest.raises(TypeError_):
            compile_source(bad, app.table)
        return True

    assert run_once(benchmark, check)
