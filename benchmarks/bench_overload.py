"""E16 (extension) — overload behaviour of the four admission policies.

Sweeps the offered load (busy-wait per farm packet) across the four
overload policies of :mod:`repro.realtime` on the threads backend and
reports delivered-frame latency (p50/p99) and the shed rate at each
point.  The expected shape:

* ``block`` sheds nothing but its latency grows with the backlog —
  classic backpressure;
* the two ``shed-*`` policies hold latency roughly flat and pay in shed
  frames as the load passes saturation;
* ``degrade`` lands in between: it halves the admitted frame rate until
  the backlog clears, trading resolution in time for bounded latency.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_overload.py
[--json out.json]`` — the JSON document carries the full sweep for
dashboards or regression diffing.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional

from conftest import default_artifact, run_once

from repro.health import HealthPolicy
from repro.realtime import OVERLOAD_POLICIES
from repro.realtime.soak import run_soak

FRAMES = 30
PIECES = 4
DEADLINE_MS = 50.0
FRAME_PERIOD_MS = 4.0
#: Busy-wait per farm packet (µs): below, at, and past saturation of a
#: 3-worker farm fed every 4 ms.
OFFERED_LOADS_US = (300.0, 1_500.0, 4_000.0)


def measure(policy: str, work_us: float) -> Dict:
    result = run_soak(
        "threads",
        seed=0,
        frames=FRAMES,
        pieces=PIECES,
        work_us=work_us,
        deadline_ms=DEADLINE_MS,
        policy=policy,
        max_in_flight=2,
        frame_period_ms=FRAME_PERIOD_MS,
        chaos=False,
        timeout=120.0,
    )
    assert result.ok, result.violations
    ledger = result.report.realtime.ledger
    return {
        "policy": policy,
        "work_us": work_us,
        "submitted": ledger.submitted,
        "delivered": len(ledger.delivered),
        "shed": len(ledger.shed),
        "shed_rate": round(len(ledger.shed) / max(1, ledger.submitted), 3),
        "p50_ms": round(ledger.p50_us / 1000, 2),
        "p99_ms": round(ledger.p99_us / 1000, 2),
        "deadline_misses": ledger.deadline_misses,
    }


def sweep() -> List[Dict]:
    return [
        measure(policy, work_us)
        for policy in OVERLOAD_POLICIES
        for work_us in OFFERED_LOADS_US
    ]


#: Mid-sweep load for the hedging-overhead A/B: under saturation, so the
#: latency difference is the defense layer's bookkeeping, not queueing.
HEDGE_LOAD_US = 1_500.0


def measure_hedging() -> Dict:
    """Cost of the armed gray-failure defense on a *healthy* farm.

    Runs the same fault-free load twice — defense layer fully off vs the
    default armed policy (scoring, demotion and hedged re-dispatch all
    live) — and reports the p99 ratio.  On a healthy farm the adaptive
    hedge threshold should essentially never trip, so the overhead is
    the per-completion scoring plus the overdue scan, and the ratio
    stays close to 1.
    """
    arms = {}
    for label, health in (
        ("off", HealthPolicy(enabled=False)),
        ("on", None),  # None = the default armed policy
    ):
        result = run_soak(
            "threads",
            seed=0,
            frames=FRAMES,
            pieces=PIECES,
            work_us=HEDGE_LOAD_US,
            deadline_ms=DEADLINE_MS,
            policy="block",
            max_in_flight=2,
            frame_period_ms=FRAME_PERIOD_MS,
            chaos=False,
            timeout=120.0,
            health=health,
        )
        assert result.ok, result.violations
        ledger = result.report.realtime.ledger
        faults = result.report.faults
        arms[label] = {
            "p50_ms": round(ledger.p50_us / 1000, 2),
            "p99_ms": round(ledger.p99_us / 1000, 2),
            "hedges": getattr(faults, "hedges", 0) if faults else 0,
        }
    return {
        "work_us": HEDGE_LOAD_US,
        "off": arms["off"],
        "on": arms["on"],
        "overhead_ratio": round(
            arms["on"]["p99_ms"] / max(arms["off"]["p99_ms"], 1e-9), 3),
    }


def render(rows: List[Dict]) -> None:
    print(f"\nE16: offered load vs policy ({FRAMES} frames, "
          f"{FRAME_PERIOD_MS:.0f} ms period, {DEADLINE_MS:.0f} ms deadline)")
    print("  policy       work/pkt   delivered  shed rate   p50       p99")
    for row in rows:
        print(
            f"  {row['policy']:<11} {row['work_us']:7.0f} us"
            f"  {row['delivered']:>6}/{row['submitted']:<3}"
            f"  {row['shed_rate']:8.0%}"
            f"  {row['p50_ms']:7.1f} ms {row['p99_ms']:7.1f} ms"
        )


def render_hedging(hedging: Dict) -> None:
    print(f"\n  hedging overhead (healthy farm, "
          f"{hedging['work_us']:.0f} us/pkt, block policy)")
    for label in ("off", "on"):
        arm = hedging[label]
        print(f"  defense {label:<4} p50 {arm['p50_ms']:6.1f} ms  "
              f"p99 {arm['p99_ms']:6.1f} ms  hedges {arm['hedges']}")
    print(f"  p99 overhead ratio: {hedging['overhead_ratio']:.3f}x")


def check_shape(rows: List[Dict]) -> None:
    """The qualitative contract the sweep must reproduce."""
    by_policy = {}
    for row in rows:
        by_policy.setdefault(row["policy"], []).append(row)
    # block never sheds, whatever the load.
    assert all(r["shed"] == 0 for r in by_policy["block"])
    # Past saturation the shedding policies drop frames...
    overloaded = [r for r in by_policy["shed-oldest"]
                  if r["work_us"] == max(OFFERED_LOADS_US)]
    assert all(r["shed"] > 0 for r in overloaded)
    # ...and hold p99 below blocking backpressure at the same load.
    block_p99 = max(r["p99_ms"] for r in by_policy["block"])
    shed_p99 = max(r["p99_ms"] for r in by_policy["shed-oldest"])
    assert shed_p99 <= block_p99


def test_overload_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    render(rows)
    check_shape(rows)
    for row in rows:
        key = f"{row['policy']}_{row['work_us']:.0f}us"
        benchmark.extra_info[f"{key}_p99_ms"] = row["p99_ms"]
        benchmark.extra_info[f"{key}_shed_rate"] = row["shed_rate"]
    hedging = measure_hedging()
    render_hedging(hedging)
    benchmark.extra_info["hedging_overhead_ratio"] = (
        hedging["overhead_ratio"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="overload-policy sweep (p50/p99 and shed rate vs load)"
    )
    parser.add_argument("--json", metavar="FILE",
                        default=default_artifact("overload"),
                        help="write the sweep as a JSON document "
                             "(default: repo-root BENCH_overload.json)")
    args = parser.parse_args(argv)
    rows = sweep()
    render(rows)
    check_shape(rows)
    hedging = measure_hedging()
    render_hedging(hedging)
    if args.json:
        document = {
            "frames": FRAMES,
            "deadline_ms": DEADLINE_MS,
            "frame_period_ms": FRAME_PERIOD_MS,
            "offered_loads_us": list(OFFERED_LOADS_US),
            "rows": rows,
            "hedging": hedging,
        }
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
