"""E7 — scalability over processor count.

Paper: "it was then almost instantaneous to get variant versions with
different numbers of processors" (while the hand-crafted version "could
not be scaled in a straightforward way").  The interesting *performance*
shape: tracking latency falls as workers are added, then saturates when
the per-window fixed costs, the master and the ring hops dominate.

This benchmark rebuilds the tracking application for P in {1,2,4,8,16}
(changing only the ``nproc`` constant, exactly as the paper describes)
and reports the latency/speedup series.
"""

from conftest import run_once

from repro import build
from repro.syndex import ring
from repro.tracking import build_tracking_app

PROCESSOR_COUNTS = (1, 2, 4, 8, 16)


def _latency_for(nproc: int) -> dict:
    app = build_tracking_app(
        nproc=nproc, n_frames=6, frame_size=512, n_vehicles=3
    )
    built = build(
        app.source, app.table, ring(nproc),
        profile_iterations=2, rewind=app.rewind,
    )
    report = built.run()
    stable = [r.latency for r in report.iterations[2:]]
    return {
        "reinit_ms": report.iterations[0].latency / 1000,
        "tracking_ms": sum(stable) / len(stable) / 1000,
    }


def test_tracking_scales_with_processors(benchmark):
    results = run_once(
        benchmark, lambda: {p: _latency_for(p) for p in PROCESSOR_COUNTS}
    )
    print("\nE7: latency vs processor count (simulated T9000 ring)")
    print("  P   tracking     reinit    speedup(track)  speedup(reinit)")
    base_t = results[1]["tracking_ms"]
    base_r = results[1]["reinit_ms"]
    for p in PROCESSOR_COUNTS:
        r = results[p]
        print(
            f"  {p:>2}  {r['tracking_ms']:7.1f} ms {r['reinit_ms']:7.1f} ms"
            f"  {base_t / r['tracking_ms']:8.2f}x   {base_r / r['reinit_ms']:8.2f}x"
        )
        benchmark.extra_info[f"tracking_ms_p{p}"] = round(r["tracking_ms"], 1)
        benchmark.extra_info[f"reinit_ms_p{p}"] = round(r["reinit_ms"], 1)

    # Shape: more processors help both phases...
    assert results[8]["tracking_ms"] < results[1]["tracking_ms"]
    assert results[8]["reinit_ms"] < results[1]["reinit_ms"]
    # ...reinit (8 equal bands) scales hard up to 8 processors...
    assert results[8]["reinit_ms"] < 0.3 * results[1]["reinit_ms"]
    # ...and the curve saturates: 16 processors buy little over 8 for the
    # 9-window tracking phase (the farm has only 9 packets to spread).
    gain_8_to_16 = results[8]["tracking_ms"] / results[16]["tracking_ms"]
    gain_1_to_8 = results[1]["tracking_ms"] / results[8]["tracking_ms"]
    assert gain_1_to_8 > 2.0
    assert gain_8_to_16 < 1.5
