"""E1 (Fig. 1) — process network template instantiation.

Paper Fig. 1 draws the df PNT on a ring: a Master on P0, and on each of
the n worker processors a Worker flanked by M->W and W->M router
processes.  This benchmark regenerates that structure across degrees —
checking the census (1 + 3n processes) and the ring wiring — and
measures the wall-time cost of expansion + mapping, the "compile time"
a SKiPPER user pays per rebuild.
"""

import pytest

from repro import FunctionTable, ProgramBuilder
from repro.pnt import ProcessKind, expand_program, instantiate_df, ProcessGraph
from repro.syndex import distribute, ring


def make_table():
    table = FunctionTable()
    table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
    table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
    return table


@pytest.mark.parametrize("degree", [2, 8, 32])
def test_df_template_census(benchmark, degree):
    def stamp():
        graph = ProcessGraph("fig1")
        instantiate_df(graph, "df0", degree, "comp", "acc")
        return graph

    graph = benchmark(stamp)
    assert len(graph.by_kind(ProcessKind.MASTER)) == 1
    assert len(graph.by_kind(ProcessKind.WORKER)) == degree
    assert len(graph.by_kind(ProcessKind.ROUTER_MW)) == degree
    assert len(graph.by_kind(ProcessKind.ROUTER_WM)) == degree
    assert len(graph) == 1 + 3 * degree  # the Fig. 1 census
    benchmark.extra_info["processes"] = len(graph)


@pytest.mark.parametrize("degree", [8])
def test_expand_and_map_wall_time(benchmark, degree):
    """Wall-clock cost of PNT expansion + AAA mapping at case-study size."""
    table = make_table()

    def build_and_map():
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        out = b.df(degree, comp="comp", acc="acc", z=b.const(0), xs=xs)
        prog = b.returns(out)
        graph = expand_program(prog, table)
        return distribute(graph, ring(degree))

    mapping = benchmark(build_and_map)
    # Fig. 1 placement: master on the I/O processor, workers spread.
    assert mapping.processor_of("df0.master") == "p0"
    worker_homes = {mapping.processor_of(f"df0.worker{i}") for i in range(degree)}
    assert len(worker_homes) == degree
    # Routers ride with their workers, as drawn.
    for i in range(degree):
        assert (
            mapping.processor_of(f"df0.mw{i}")
            == mapping.processor_of(f"df0.worker{i}")
        )
