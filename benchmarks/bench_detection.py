"""E3 (Fig. 3) — mark detection: threshold + CCL + centroid/frame.

Paper §4: "Marks are detected as connected groups of pixels with values
above a given threshold.  Each mark is then characterized by computing
its center of gravity and an englobing frame."

This benchmark measures the *wall-clock* throughput of the Python
detection kernels on both window sizes the application uses (a tracking
window of interest and a reinitialisation band) and verifies detection
quality on noisy frames — the substrate numbers behind the simulated
costs of E5.
"""

from conftest import run_once

from repro.tracking import build_tracking_app
from repro.vision import Rect, extract_marks, extract_window


def make_frame(frame_size=512, n_vehicles=3, noise=6.0, seed=3):
    app = build_tracking_app(
        nproc=8, n_frames=1, frame_size=frame_size, n_vehicles=n_vehicles,
        seed=seed,
    )
    scene = app.scene
    scene.noise_sigma = noise
    return scene.render(0), scene.truth_marks(0)


def test_detect_tracking_window(benchmark):
    """A ~90x90 window of interest around one mark."""
    frame, truth = make_frame()
    row, col = truth[0][0]
    window = extract_window(frame, Rect(int(row) - 45, int(col) - 45, 90, 90))

    marks = benchmark(
        lambda: extract_marks(window.pixels, level=120, min_pixels=3,
                              origin=window.origin)
    )
    assert len(marks) >= 1
    best = min(marks, key=lambda m: abs(m.row - row) + abs(m.col - col))
    assert abs(best.row - row) < 1.5 and abs(best.col - col) < 1.5
    benchmark.extra_info["window_pixels"] = window.area


def test_detect_reinit_band(benchmark):
    """A 64x512 reinitialisation band (1/8 of the frame)."""
    frame, truth = make_frame()
    band = extract_window(frame, Rect(128, 0, 64, 512))

    marks = benchmark(
        lambda: extract_marks(band.pixels, level=120, min_pixels=3,
                              origin=band.origin)
    )
    in_band = [
        (r, c) for vehicle in truth for (r, c) in vehicle if 128 <= r < 192
    ]
    assert len(marks) >= len(in_band)
    benchmark.extra_info["band_pixels"] = band.area
    benchmark.extra_info["marks_found"] = len(marks)


def test_detection_finds_all_marks_under_noise(benchmark):
    """Whole-frame sweep: every truth mark recovered at sigma=6 noise."""
    frame, truth = make_frame(noise=6.0)

    def detect_all():
        return extract_marks(frame, level=120, min_pixels=3)

    marks = run_once(benchmark, detect_all)
    for vehicle in truth:
        for (row, col) in vehicle:
            best = min(
                marks, key=lambda m: abs(m.row - row) + abs(m.col - col)
            )
            assert abs(best.row - row) < 2.0 and abs(best.col - col) < 2.0
    benchmark.extra_info["marks_found"] = len(marks)
    benchmark.extra_info["marks_expected"] = sum(len(v) for v in truth)
