"""Network backend costs: wire-codec throughput and tcp vs processes.

Two questions a network-of-workstations deployment asks of the runtime:
how fast can a frame cross the wire (the pickle-free codec against raw
pickle, per frame size), and what the extra hop through the coordinator
costs end to end — the same quiet stream-of-farms pipeline run on the
single-host multiprocess backend and on a localhost tcp cluster, so the
delta is pure protocol overhead (framing, credits, the star hop), not
network distance.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_network.py
[--json out.json]`` — the JSON document carries both sweeps for
dashboards or regression diffing.
"""

from __future__ import annotations

import argparse
import json
import pickle
import time
from typing import Dict, List, Optional

import numpy as np
from conftest import default_artifact, run_once

from repro.net import decode, encode, encoded_size
from repro.realtime.soak import run_soak

#: Square u8 frames: 16 KB, 256 KB and 1 MB on the wire.
FRAME_SIDES = (128, 512, 1024)
CODEC_REPEATS = 20

FRAMES = 30
FRAME_PERIOD_MS = 5.0
DEADLINE_MS = 200.0
BACKENDS = ("processes", "tcp")


def _join(buffers) -> bytes:
    return b"".join(
        bytes(b) if isinstance(b, memoryview) else b for b in buffers
    )


def measure_codec(side: int) -> Dict:
    frame = np.arange(side * side, dtype=np.uint8).reshape(side, side)
    payload = (7, ("frame", frame))
    nbytes = encoded_size(encode(payload))
    t0 = time.perf_counter()
    for _ in range(CODEC_REPEATS):
        decode(_join(encode(payload)))
    codec_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(CODEC_REPEATS):
        pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    pickle_s = time.perf_counter() - t0
    mb = nbytes / 1e6
    return {
        "frame": f"{side}x{side} u8",
        "payload_bytes": frame.nbytes,
        "wire_bytes": nbytes,
        "codec_mb_s": round(CODEC_REPEATS * mb / codec_s, 1),
        "pickle_mb_s": round(CODEC_REPEATS * mb / pickle_s, 1),
    }


def measure_backend(backend: str) -> Dict:
    # ``block`` backpressure delivers every frame, so the tcp-vs-
    # processes delta shows up purely as latency, never as shed frames.
    result = run_soak(
        backend, seed=0, frames=FRAMES, chaos=False, policy="block",
        deadline_ms=DEADLINE_MS, frame_period_ms=FRAME_PERIOD_MS,
        timeout=120.0,
    )
    assert result.ok, result.violations
    ledger = result.report.realtime.ledger
    wall_s = result.report.makespan / 1e6
    return {
        "backend": backend,
        "delivered": len(ledger.delivered),
        "submitted": ledger.submitted,
        "p50_ms": round(ledger.p50_us / 1000, 2),
        "p99_ms": round(ledger.p99_us / 1000, 2),
        "wall_s": round(wall_s, 2),
        "frames_per_s": round(len(ledger.delivered) / wall_s, 1),
    }


def sweep() -> Dict[str, List[Dict]]:
    return {
        "codec": [measure_codec(side) for side in FRAME_SIDES],
        "backends": [measure_backend(b) for b in BACKENDS],
    }


def render(doc: Dict[str, List[Dict]]) -> None:
    print(f"\nwire codec vs pickle ({CODEC_REPEATS} round trips each)")
    print("  frame          bytes        codec       pickle")
    for row in doc["codec"]:
        print(f"  {row['frame']:<12} {row['wire_bytes']:>9}"
              f"  {row['codec_mb_s']:7.1f} MB/s {row['pickle_mb_s']:7.1f} MB/s")
    print(f"\ntcp vs processes ({FRAMES} frames, "
          f"{FRAME_PERIOD_MS:.0f} ms period, quiet load)")
    print("  backend     delivered   p50        p99        wall   throughput")
    for row in doc["backends"]:
        print(f"  {row['backend']:<10} {row['delivered']:>6}/{row['submitted']:<3}"
              f"  {row['p50_ms']:7.1f} ms {row['p99_ms']:7.1f} ms"
              f"  {row['wall_s']:5.2f} s {row['frames_per_s']:7.1f} f/s")


def check_shape(doc: Dict[str, List[Dict]]) -> None:
    """The qualitative contract the sweep must reproduce."""
    for row in doc["codec"]:
        # The wire image is tags + payload: tens of bytes over raw.
        assert row["payload_bytes"] < row["wire_bytes"] \
            < row["payload_bytes"] + 64
        assert row["codec_mb_s"] > 0
    # Both backends deliver the whole quiet stream, on deadline.
    for row in doc["backends"]:
        assert row["delivered"] == row["submitted"] == FRAMES
        assert row["p99_ms"] <= DEADLINE_MS


def test_network_bench(benchmark):
    doc = run_once(benchmark, sweep)
    render(doc)
    check_shape(doc)
    for row in doc["codec"]:
        benchmark.extra_info[f"codec_{row['frame'].split()[0]}_mb_s"] = (
            row["codec_mb_s"]
        )
    for row in doc["backends"]:
        benchmark.extra_info[f"{row['backend']}_p99_ms"] = row["p99_ms"]
        benchmark.extra_info[f"{row['backend']}_frames_per_s"] = (
            row["frames_per_s"]
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="wire-codec throughput and tcp-vs-processes overhead"
    )
    parser.add_argument("--json", metavar="FILE",
                        default=default_artifact("network"),
                        help="write the sweeps as a JSON document "
                             "(default: repo-root BENCH_network.json)")
    args = parser.parse_args(argv)
    doc = sweep()
    render(doc)
    check_shape(doc)
    if args.json:
        document = {
            "frames": FRAMES,
            "frame_period_ms": FRAME_PERIOD_MS,
            "deadline_ms": DEADLINE_MS,
            "codec_repeats": CODEC_REPEATS,
            **doc,
        }
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
