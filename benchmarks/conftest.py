"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (see the
experiment index in DESIGN.md) and stores its headline numbers in
``benchmark.extra_info`` so they appear in the pytest-benchmark report;
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import os

import pytest


def default_artifact(name: str) -> str:
    """Repo-root path of a benchmark's JSON artifact (``BENCH_<name>.json``).

    The perf CI job runs each bench standalone, uploads these documents,
    and gates them against ``benchmarks/baselines/``.
    """
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(root, f"BENCH_{name}.json")


def run_once(benchmark, fn):
    """Benchmark ``fn`` with exactly one timed execution.

    Most benchmarks here drive stateful stream sources (video) or build
    whole applications; repeated timed rounds would re-consume state, so
    each is measured once — the interesting output is the *simulated*
    time recorded in extra_info, not the wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
