"""E10 — task farming for divide-and-conquer algorithms.

Paper (§2): ``tf`` generalises ``df`` — "each worker can recursively
generate new packets to be processed.  Its main use is for implementing
the so-called divide-and-conquer algorithms."

Workload: recursive quadtree splitting of an image region (the classic
split-and-merge segmentation shape): homogeneous regions finish, mixed
regions spawn their four quadrants.  The benchmark sweeps worker count
and also shows tf beating a one-shot df over the *initial* regions only
(df cannot exploit the recursively generated work).
"""

from conftest import run_once

from repro import FunctionTable, ProgramBuilder, T9000, TaskOutcome
from repro.machine import simulate
from repro.pnt import expand_program
from repro.syndex import distribute, ring

DEGREES = (1, 2, 4, 8)
MIN_LEAF = 64  # stop splitting below this size


def _is_homogeneous(region) -> bool:
    """Deterministic pseudo-content: a region is homogeneous when its
    coordinates hash 'cleanly' — stands in for a pixel-variance test."""
    row, col, size = region
    return size <= MIN_LEAF or (row * 7 + col * 13 + size) % 3 == 0


def make_table():
    table = FunctionTable()

    def examine(region):
        row, col, size = region
        if _is_homogeneous(region):
            return TaskOutcome(results=[(row, col, size)])
        half = size // 2
        return TaskOutcome(
            subtasks=[
                (row, col, half),
                (row, col + half, half),
                (row + half, col, half),
                (row + half, col + half, half),
            ]
        )

    # Homogeneity test cost ~ area/4 sampled pixels at 2 us each.
    table.register(
        "examine", ins=["region"], outs=["outcome"],
        cost=lambda r: 200.0 + 0.5 * r[2] * r[2],
    )(examine)
    table.register(
        "collect", ins=["region list", "region"], outs=["region list"],
        cost=lambda acc, r: 10.0,
    )(lambda acc, r: sorted(acc + [r]))
    return table


def tf_program(table, degree):
    b = ProgramBuilder(f"quadtree_{degree}", table)
    (regions,) = b.params("regions")
    out = b.tf(degree, comp="examine", acc="collect", z=b.const([]), xs=regions)
    return b.returns(out)


ROOT = [(0, 0, 512)]


def _run(table, degree):
    prog = tf_program(table, degree)
    mapping = distribute(expand_program(prog, table), ring(max(degree, 1)))
    return simulate(mapping, table, T9000, args=(list(ROOT),))


def test_tf_quadtree_scaling(benchmark):
    table = make_table()

    def sweep():
        return {degree: _run(table, degree) for degree in DEGREES}

    results = run_once(benchmark, sweep)
    leaves = results[1].one_shot_results[0]
    print("\nE10: task-farm quadtree segmentation (512x512 region)")
    print(f"  {len(leaves)} leaf regions")
    print("   P   makespan   speedup")
    for degree in DEGREES:
        ms = results[degree].makespan / 1000
        speedup = results[1].makespan / results[degree].makespan
        print(f"  {degree:>2}  {ms:8.1f} ms {speedup:7.2f}x")
        benchmark.extra_info[f"tf_ms_p{degree}"] = round(ms, 1)

    # All degrees compute the same segmentation.
    for degree in DEGREES:
        assert results[degree].one_shot_results[0] == leaves
    # Recursive work keeps the farm busy: real speedup at 4 workers.
    assert results[1].makespan / results[4].makespan > 2.0


def test_leaves_partition_the_root(benchmark):
    table = make_table()
    report = run_once(benchmark, lambda: _run(table, 4))
    leaves = report.one_shot_results[0]
    # The leaf areas tile the 512x512 root exactly.
    assert sum(size * size for _r, _c, size in leaves) == 512 * 512
    # Every leaf is homogeneous by the splitting rule.
    assert all(_is_homogeneous(leaf) for leaf in leaves)
