"""FrameLedger conservation over the ring transport with batching.

Batching coalesces several df/tf packets into one ring slot, so a
single physical transfer can carry pieces of several frames.  The
ledger must not care: every submitted frame still ends in exactly one
terminal state (delivered, shed, or failed), shed frames are counted
exactly once, and deadline accounting stays consistent — whether the
batcher is eager (the default whenever a budget is attached) or holds
packets up to its flush window.
"""

import pytest

from repro.backends import get_backend
from repro.conformance.invariants import (
    check_deadline_accounting,
    check_frame_conservation,
)
from repro.machine import FAST_TEST
from repro.realtime import LatencyBudget
from repro.realtime.soak import frame_value, make_soak
from repro.shm import BatchPolicy


def run_ring_soak(budget, *, frames=10, pieces=4, work_us=300.0,
                  transport_options=None, timeout=90.0):
    prog, table, mapping = make_soak(
        nproc=3, frames=frames, pieces=pieces, work_us=work_us,
    )
    return get_backend("processes").run(
        mapping, table, program=prog, costs=FAST_TEST, timeout=timeout,
        budget=budget, transport="ring",
        transport_options=transport_options,
    )


def assert_conserved_once(report):
    rt = report.realtime
    assert rt is not None
    violations = (
        check_frame_conservation(report) + check_deadline_accounting(report)
    )
    assert violations == [], violations
    assert rt.ledger.conserved()
    # Exactly-once: no frame may reach two terminal states, and no shed
    # frame may be recorded twice (a batched re-transfer would do that
    # if the framer re-admitted an entry).
    terminal = [f.frame for f in rt.ledger.frames
                if f.status in ("delivered", "shed", "failed")]
    assert len(terminal) == len(set(terminal))
    shed = [rec.frame for rec in rt.ledger.shed]
    assert len(shed) == len(set(shed))


class TestLedgerOverRingBatching:
    def test_block_policy_delivers_every_frame(self):
        """Eager batching (auto-selected under a budget): no frame lost."""
        budget = LatencyBudget(deadline_ms=10_000.0, policy="block",
                               max_in_flight=2)
        report = run_ring_soak(budget, frames=10)
        rt = report.realtime
        assert rt.ledger.submitted == 10
        assert len(rt.ledger.delivered) == 10
        assert rt.ledger.shed == []
        assert_conserved_once(report)
        for k, value in report.outputs:
            assert value == frame_value(k, 4)

    def test_shedding_conserves_frames_over_ring(self):
        """Overload with batched transfers: every refusal counted once."""
        budget = LatencyBudget(deadline_ms=10_000.0, policy="shed-oldest",
                               max_in_flight=1, queue_depth=1)
        report = run_ring_soak(budget, frames=12, work_us=2_000.0)
        rt = report.realtime
        assert rt.ledger.submitted == 12
        assert rt.ledger.shed, "overload never triggered shedding"
        assert_conserved_once(report)
        for k, value in report.outputs:
            assert value == frame_value(k, 4)

    def test_holding_batcher_still_conserves(self):
        """A non-eager policy may delay packets, never drop them."""
        budget = LatencyBudget(deadline_ms=10_000.0, policy="block",
                               max_in_flight=2)
        report = run_ring_soak(
            budget, frames=8,
            transport_options={
                "batch_policy": BatchPolicy(
                    small_max=1024, max_bytes=4096,
                    max_packets=8, max_delay_s=0.005,
                ),
            },
        )
        rt = report.realtime
        assert len(rt.ledger.delivered) == 8
        assert_conserved_once(report)

    def test_eager_policy_is_injected_under_budget(self):
        """The backend must not Nagle a latency-budgeted stream."""
        prog, table, mapping = make_soak(
            nproc=3, frames=4, pieces=4, work_us=300.0,
        )
        captured = {}
        import repro.backends.process_backend as pb
        original = pb.build_channels

        def spy(name, specs, ctx, *, queue_size, options):
            captured.update(options or {})
            return original(name, specs, ctx, queue_size=queue_size,
                            options=options)

        pb.build_channels = spy
        try:
            get_backend("processes").run(
                mapping, table, program=prog, costs=FAST_TEST,
                timeout=60.0, transport="ring",
                budget=LatencyBudget(deadline_ms=10_000.0, policy="block",
                                     max_in_flight=2),
            )
        finally:
            pb.build_channels = original
        policy = captured.get("batch_policy")
        assert isinstance(policy, BatchPolicy)
        assert policy.eager
