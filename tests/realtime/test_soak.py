"""The chaos-soak harness: frame conservation, value correctness and
deadline accounting under seeded crash+overload chaos."""

import pytest

from repro.realtime.soak import make_soak, run_soak, soak_plan

REAL_BACKENDS = ["threads", "processes"]


class TestSoakPlan:
    def test_same_seed_same_plan(self):
        _prog, _table, mapping = make_soak(nproc=3, frames=10)
        a = soak_plan(11, mapping)
        b = soak_plan(11, mapping)
        assert a.events == b.events

    def test_mixes_crash_and_overload_chaos(self):
        _prog, _table, mapping = make_soak(nproc=3, frames=10)
        plan = soak_plan(0, mapping, n_faults=8)
        kinds = {e.kind for e in plan.events}
        assert kinds & {"crash", "slow-worker"}
        assert kinds & {"burst", "input-surge"}
        # Overload chaos targets the stream source, never a worker.
        for event in plan.events:
            if event.kind in ("burst", "input-surge"):
                assert event.process == "stream.input"


class TestChaosSoak:
    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_no_unaccounted_frames_under_chaos(self, backend):
        result = run_soak(
            backend, seed=3, frames=40, n_faults=4, timeout=90.0,
        )
        assert result.ok, result.violations
        rt = result.report.realtime
        assert rt.ledger.submitted == 40
        assert rt.ledger.unaccounted() == 0

    def test_seeds_vary_but_always_conserve(self):
        for seed in (0, 1, 2):
            result = run_soak(
                "threads", seed=seed, frames=30, n_faults=4, timeout=90.0,
            )
            assert result.ok, (seed, result.violations)

    def test_ledger_payload_is_json_ready(self):
        import json

        result = run_soak("threads", seed=1, frames=20, n_faults=3,
                          timeout=90.0)
        payload = result.ledger_payload()
        text = json.dumps(payload)
        assert json.loads(text)["ok"] == result.ok
        assert payload["plan"]["seed"] == 1
        assert payload["realtime"]["frames"]


class TestQuietSoak:
    def test_p99_within_budget_without_chaos(self):
        # The acceptance criterion: with no chaos and a sane offered
        # load, the pipeline holds its deadline on a real backend.
        result = run_soak(
            "threads", seed=0, frames=40, chaos=False,
            deadline_ms=50.0, frame_period_ms=5.0, timeout=90.0,
        )
        assert result.ok, result.violations
        ledger = result.report.realtime.ledger
        assert ledger.delivered
        assert ledger.p99_us <= 50_000.0
        assert ledger.deadline_misses == 0
