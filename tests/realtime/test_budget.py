"""Unit tests for the realtime data model: budgets, the frame ledger,
and the admission/delivery join of :func:`assemble_report`."""

import pytest

from repro.realtime import (
    OVERLOAD_POLICIES,
    FrameLedger,
    FrameRecord,
    LatencyBudget,
    RealtimeReport,
    assemble_report,
)


class TestLatencyBudget:
    def test_defaults_are_valid(self):
        budget = LatencyBudget()
        assert budget.policy == "block"
        assert budget.deadline_us == 40_000.0
        assert budget.admission_depth == budget.max_in_flight

    def test_all_policies_accepted(self):
        for policy in OVERLOAD_POLICIES:
            assert LatencyBudget(policy=policy).policy == policy

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown overload policy"):
            LatencyBudget(policy="panic")

    def test_bad_numbers(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            LatencyBudget(deadline_ms=0.0)
        with pytest.raises(ValueError, match="max_in_flight"):
            LatencyBudget(max_in_flight=0)
        with pytest.raises(ValueError, match="queue_depth"):
            LatencyBudget(queue_depth=-1)
        with pytest.raises(ValueError, match="degrade_ratio"):
            LatencyBudget(degrade_ratio=1)

    def test_unit_conversions(self):
        budget = LatencyBudget(deadline_ms=25.0, frame_period_ms=40.0)
        assert budget.deadline_us == 25_000.0
        assert budget.frame_period_s == 0.04

    def test_explicit_queue_depth_wins(self):
        budget = LatencyBudget(max_in_flight=4, queue_depth=7)
        assert budget.admission_depth == 7

    def test_round_trip(self):
        budget = LatencyBudget(
            deadline_ms=33.0, policy="shed-oldest", max_in_flight=2,
            queue_depth=5, frame_period_ms=40.0, degrade_ratio=3,
        )
        assert LatencyBudget.from_dict(budget.to_dict()) == budget


def frame(i, admitted, **kw):
    return FrameRecord(frame=i, admitted_us=admitted, **kw)


class TestFrameLedger:
    def test_conservation_identity(self):
        ledger = FrameLedger([
            frame(0, 0.0, status="delivered", delivered_us=10.0),
            frame(1, 1.0, status="shed", reason="shed-oldest"),
            frame(2, 2.0, status="failed", reason="aborted"),
        ])
        assert ledger.conserved()
        assert ledger.unaccounted() == 0
        ledger.frames.append(frame(3, 3.0))  # still in flight
        assert not ledger.conserved()
        assert ledger.unaccounted() == 1

    def test_latency_is_admission_to_delivery(self):
        rec = frame(0, 100.0, status="delivered", released_us=150.0,
                    delivered_us=400.0)
        assert rec.latency_us == 300.0
        assert frame(1, 0.0, status="shed").latency_us is None

    def test_percentiles_nearest_rank(self):
        ledger = FrameLedger([
            frame(i, 0.0, status="delivered", delivered_us=float(i + 1))
            for i in range(100)
        ])
        assert ledger.p50_us == 50.0
        assert ledger.p99_us == 99.0
        assert ledger.percentile_us(100.0) == 100.0

    def test_percentiles_of_empty_ledger(self):
        assert FrameLedger().p99_us == 0.0

    def test_payload_round_trip(self):
        ledger = FrameLedger([
            frame(0, 0.0, status="delivered", released_us=1.0,
                  delivered_us=9.0, deadline_missed=True),
            frame(1, 2.0, status="shed", reason="shed-newest"),
        ])
        again = FrameLedger.from_payload(ledger.to_payload())
        assert again.frames == ledger.frames
        assert again.deadline_misses == 1


class TestRealtimeReport:
    def test_event_views(self):
        report = RealtimeReport(budget=LatencyBudget())
        report.add_event("deadline-miss", 3, 50.0)
        report.add_event("degraded-enter", None, 60.0)
        report.add_event("degraded-exit", None, 90.0)
        assert [e.frame for e in report.deadline_miss_events] == [3]
        assert report.degraded_spells == 1

    def test_summary_reports_unaccounted_frames(self):
        report = RealtimeReport(budget=LatencyBudget())
        report.ledger.frames.append(frame(0, 0.0))  # in flight forever
        assert "UNACCOUNTED: 1 frame(s)" in report.summary()

    def test_payload_round_trip(self):
        report = RealtimeReport(budget=LatencyBudget(policy="degrade"))
        report.ledger.frames.append(
            frame(0, 0.0, status="delivered", delivered_us=5.0)
        )
        report.add_event("shed", 1, 2.0, detail="shed-oldest")
        again = RealtimeReport.from_payload(report.to_payload())
        assert again.budget == report.budget
        assert again.ledger.frames == report.ledger.frames
        assert again.events == report.events

    def test_annotate_trace_emits_rt_instants(self):
        from repro.machine.trace import Trace

        report = RealtimeReport(budget=LatencyBudget())
        report.add_event("deadline-miss", 2, 11.0)
        report.add_event("degraded-enter", None, 12.0, detail="backlog")
        trace = Trace()
        report.annotate_trace(trace)
        names = [i.name for i in trace.instants]
        assert names == ["rt:deadline-miss", "rt:degraded-enter"]
        assert trace.instants[0].detail == "frame 2"


class TestAssembleReport:
    BUDGET = LatencyBudget(deadline_ms=1.0)  # 1000 µs

    def admission(self, *frames, events=()):
        return {"frames": [f.to_dict() for f in frames],
                "events": list(events)}

    def test_fifo_pairing(self):
        report = assemble_report(
            self.BUDGET,
            self.admission(
                frame(0, 0.0, released_us=1.0),
                frame(1, 10.0, status="shed", reason="shed-oldest"),
                frame(2, 20.0, released_us=21.0),
            ),
            {"stamps": [500.0, 700.0], "events": []},
        )
        ledger = report.ledger
        assert [f.status for f in ledger.frames] == [
            "delivered", "shed", "delivered",
        ]
        # j-th stamp pairs with the j-th *released* frame: the shed frame
        # never entered the network and consumes no stamp.
        assert ledger.frames[0].delivered_us == 500.0
        assert ledger.frames[2].delivered_us == 700.0
        assert ledger.conserved()

    def test_released_but_undelivered_frames_fail(self):
        report = assemble_report(
            self.BUDGET,
            self.admission(
                frame(0, 0.0, released_us=1.0),
                frame(1, 2.0, released_us=3.0),
            ),
            {"stamps": [400.0], "events": []},
        )
        assert report.ledger.frames[1].status == "failed"
        assert report.ledger.frames[1].reason == "undelivered at teardown"
        assert report.ledger.conserved()

    def test_unreleased_in_flight_frames_fail(self):
        report = assemble_report(
            self.BUDGET,
            self.admission(frame(0, 0.0)),  # grabbed, never released
            {"stamps": [], "events": []},
        )
        assert report.ledger.frames[0].status == "failed"
        assert report.ledger.frames[0].reason == "aborted before release"

    def test_late_delivery_gets_backstop_miss_event(self):
        # Watchdog missed it (crossed the deadline between ticks): the
        # join must still flag the frame AND emit the event so the
        # deadline-accounting invariant holds.
        report = assemble_report(
            self.BUDGET,
            self.admission(frame(0, 0.0, released_us=1.0)),
            {"stamps": [5_000.0], "events": []},
        )
        rec = report.ledger.frames[0]
        assert rec.deadline_missed
        (event,) = report.deadline_miss_events
        assert event.frame == 0
        assert event.detail == "at delivery"

    def test_watchdog_event_suppresses_backstop(self):
        report = assemble_report(
            self.BUDGET,
            self.admission(
                frame(0, 0.0, released_us=1.0),
                events=[{"kind": "deadline-miss", "frame": 0,
                         "time_us": 1_000.0, "detail": "in flight"}],
            ),
            {"stamps": [5_000.0], "events": []},
        )
        (event,) = report.deadline_miss_events  # no duplicate
        assert event.detail == "in flight"

    def test_events_merge_sorted_from_both_sides(self):
        report = assemble_report(
            self.BUDGET,
            self.admission(
                frame(0, 0.0, status="shed", reason="shed-newest"),
                events=[{"kind": "shed", "frame": 0, "time_us": 30.0}],
            ),
            {"stamps": [],
             "events": [{"kind": "degraded-enter", "time_us": 10.0,
                         "frame": None}]},
        )
        assert [e.time_us for e in report.events] == [10.0, 30.0]

    def test_no_admission_side_yields_empty_report(self):
        report = assemble_report(self.BUDGET, None, None)
        assert not report
        assert report.ledger.conserved()
