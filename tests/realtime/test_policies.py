"""Integration: the four overload policies on the threads backend, the
watchdog's in-flight deadline detection, trace instants, and the
simulator's deterministic realtime projection."""

import pytest

from repro.backends import BackendError, get_backend
from repro.conformance.invariants import (
    check_deadline_accounting,
    check_frame_conservation,
)
from repro.machine import FAST_TEST
from repro.realtime import LatencyBudget
from repro.realtime.soak import frame_value, make_soak


def run_soak_program(backend, budget, *, frames=12, pieces=4,
                     work_us=300.0, record_trace=False):
    prog, table, mapping = make_soak(
        nproc=3, frames=frames, pieces=pieces, work_us=work_us,
    )
    return get_backend(backend).run(
        mapping, table, program=prog, costs=FAST_TEST, timeout=60.0,
        budget=budget, record_trace=record_trace,
    )


def assert_invariants(report):
    violations = (
        check_frame_conservation(report) + check_deadline_accounting(report)
    )
    assert violations == [], violations


def assert_delivered_values(report, pieces):
    for k, value in report.outputs:
        assert value == frame_value(k, pieces)


class TestPoliciesOnThreads:
    def test_block_delivers_every_frame(self):
        budget = LatencyBudget(deadline_ms=5_000.0, policy="block",
                               max_in_flight=2)
        report = run_soak_program("threads", budget, frames=10)
        rt = report.realtime
        assert rt is not None
        assert rt.ledger.submitted == 10
        assert len(rt.ledger.delivered) == 10
        assert rt.ledger.shed == []
        assert_invariants(report)
        assert_delivered_values(report, 4)

    @pytest.mark.parametrize("policy", ["shed-newest", "shed-oldest"])
    def test_shedding_conserves_frames(self, policy):
        # Free-running grabber vs slow workers: the admission buffer must
        # overflow, and every refused frame must be accounted for.
        budget = LatencyBudget(deadline_ms=5_000.0, policy=policy,
                               max_in_flight=1, queue_depth=1)
        report = run_soak_program(
            "threads", budget, frames=16, work_us=2_000.0,
        )
        rt = report.realtime
        assert rt.ledger.submitted == 16
        assert rt.ledger.shed, "overload never triggered shedding"
        for rec in rt.ledger.shed:
            assert rec.reason
        assert len(rt.by_kind("shed")) == len(rt.ledger.shed)
        assert_invariants(report)
        assert_delivered_values(report, 4)

    def test_shed_oldest_keeps_the_freshest_frames(self):
        budget = LatencyBudget(deadline_ms=5_000.0, policy="shed-oldest",
                               max_in_flight=1, queue_depth=1)
        report = run_soak_program(
            "threads", budget, frames=16, work_us=2_000.0,
        )
        rt = report.realtime
        # The final frame survives under shed-oldest (staleness is what
        # gets dropped); with shed-newest it would be the refused one.
        delivered = [f.frame for f in rt.ledger.delivered]
        assert delivered and delivered[-1] == max(
            f.frame for f in rt.ledger.frames
            if f.status in ("delivered", "failed")
        )

    def test_degrade_mode_enters_under_overload(self):
        budget = LatencyBudget(deadline_ms=5_000.0, policy="degrade",
                               max_in_flight=1, queue_depth=1,
                               degrade_ratio=2)
        report = run_soak_program(
            "threads", budget, frames=16, work_us=2_000.0,
        )
        rt = report.realtime
        assert rt.degraded_spells >= 1
        # Degraded-mode skips are shed with the policy's reason so the
        # ledger still balances.
        assert rt.ledger.shed
        assert_invariants(report)
        assert_delivered_values(report, 4)

    def test_watchdog_flags_misses_in_flight(self):
        # 1 ms budget vs ~8 ms of work per frame: every delivered frame
        # is late, and the watchdog (2 ms tick) catches it while the
        # frame is still inside the network.
        budget = LatencyBudget(deadline_ms=1.0, policy="block",
                               max_in_flight=2)
        report = run_soak_program(
            "threads", budget, frames=6, work_us=2_000.0,
        )
        rt = report.realtime
        assert rt.ledger.deadline_misses > 0
        assert rt.deadline_miss_events
        in_flight = [e for e in rt.deadline_miss_events
                     if e.detail != "at delivery"]
        assert in_flight, "no miss was detected while in flight"
        assert_invariants(report)

    def test_trace_carries_rt_instants(self):
        budget = LatencyBudget(deadline_ms=1.0, policy="shed-oldest",
                               max_in_flight=1, queue_depth=1)
        report = run_soak_program(
            "threads", budget, frames=12, work_us=2_000.0,
            record_trace=True,
        )
        names = {i.name for i in report.trace.instants}
        assert any(n.startswith("rt:") for n in names)
        assert "rt:shed" in names or "rt:deadline-miss" in names

    def test_budget_on_one_shot_program_is_rejected(self):
        from repro.core import FunctionTable, ProgramBuilder
        from repro.pnt import expand_program
        from repro.syndex import distribute, ring

        def square(x):
            return x * x

        def add(a, b):
            return a + b

        table = FunctionTable()
        table.register("square", ins=["int"], outs=["int"])(square)
        table.register("add", ins=["int", "int"], outs=["int"],
                       properties=["commutative", "associative"])(add)
        b = ProgramBuilder("one_shot", table)
        (xs,) = b.params("xs")
        prog = b.returns(
            b.df(3, comp="square", acc="add", z=b.const(0), xs=xs)
        )
        mapping = distribute(expand_program(prog, table), ring(4))
        with pytest.raises(BackendError, match="stream"):
            get_backend("threads").run(
                mapping, table, program=prog, costs=FAST_TEST,
                args=([1, 2, 3],), timeout=30.0,
                budget=LatencyBudget(),
            )


class TestSimulatorProjection:
    def test_same_budget_same_ledger(self):
        budget = LatencyBudget(deadline_ms=100.0, policy="block")
        payloads = []
        for _ in range(2):
            report = run_soak_program("simulate", budget, frames=8)
            assert report.realtime is not None
            payloads.append(report.realtime.to_payload())
        assert payloads[0] == payloads[1]

    def test_virtual_deadline_misses_are_flagged(self):
        # FAST_TEST charges ~hundreds of virtual µs per frame; a 50 µs
        # budget must flag every delivered frame, deterministically.
        budget = LatencyBudget(deadline_ms=0.05, policy="block")
        report = run_soak_program("simulate", budget, frames=6)
        rt = report.realtime
        assert len(rt.ledger.delivered) == 6
        assert rt.ledger.deadline_misses == 6
        assert_invariants(report)

    def test_generous_budget_has_no_misses(self):
        budget = LatencyBudget(deadline_ms=10_000.0, policy="block")
        report = run_soak_program("simulate", budget, frames=6)
        rt = report.realtime
        assert rt.ledger.deadline_misses == 0
        assert rt.ledger.conserved()
        assert_invariants(report)
