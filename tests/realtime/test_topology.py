"""Stream-topology extraction: admission/delivery edge roles."""

from repro.faults.demo import make_demo
from repro.realtime import StreamTopology
from repro.realtime.soak import make_soak


class TestStreamTopology:
    def test_soak_stream_roles(self):
        _prog, _table, mapping = make_soak(nproc=3, frames=4)
        topo = StreamTopology.from_mapping(mapping)
        assert topo is not None
        assert topo.input_pid == "stream.input"
        assert topo.output_pid == "stream.output"
        assert topo.admission_edges
        assert topo.primary_edge == topo.admission_edges[0]
        assert topo.delivery_edge
        # Edge names index mapping.graph.edges and roles do not overlap.
        assert topo.delivery_edge not in topo.admission_edges
        # Admission edges come back in ascending edge index: the primary
        # edge (the frame boundary) is the lowest-numbered one.
        indices = [int(e[1:]) for e in topo.admission_edges]
        assert indices == sorted(indices)

    def test_processors_resolved_from_mapping(self):
        _prog, _table, mapping = make_soak(nproc=3, frames=4)
        topo = StreamTopology.from_mapping(mapping)
        procs = mapping.arch.processor_ids()
        assert topo.input_processor in procs
        assert topo.output_processor in procs

    def test_thread_names_follow_codegen(self):
        _prog, _table, mapping = make_soak(nproc=3, frames=4)
        topo = StreamTopology.from_mapping(mapping)
        from repro.codegen.pygen import thread_name

        assert topo.input_thread == thread_name("stream.input")
        assert topo.output_thread == thread_name("stream.output")

    def test_one_shot_program_has_no_stream(self):
        _prog, _table, _args, mapping = make_demo("df")
        assert StreamTopology.from_mapping(mapping) is None
