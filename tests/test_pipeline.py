"""Tests for the end-to-end pipeline API (repro.pipeline / repro.build)."""

import pytest

from repro import EndOfStream, FunctionTable, T9000, build, pipeline
from repro.machine import FAST_TEST
from repro.syndex import now, ring


def farm_source():
    return """
    let n = 3;;
    let main xs = df n square add 0 xs;;
    """


def farm_table():
    table = FunctionTable()
    table.register("square", ins=["int"], outs=["int"], cost=100.0)(
        lambda x: x * x
    )
    table.register("add", ins=["int", "int"], outs=["int"], cost=10.0)(
        lambda a, b: a + b
    )
    return table


def stream_source():
    return """
    let loop (s, i) = step s i;;
    let main = itermem read loop emit 0 ();;
    """


def stream_table(n_frames):
    table = farm_table()
    count = {"i": 0}

    @table.register("read", ins=["unit"], outs=["int"], cost=50.0)
    def read(_src):
        i = count["i"]
        count["i"] += 1
        if i >= n_frames:
            raise EndOfStream
        return i

    table.register("step", ins=["int", "int"], outs=["int", "int"], cost=30.0)(
        lambda s, i: (s + i, s + i)
    )
    table.register("emit", ins=["int"], cost=10.0)(lambda y: None)

    def rewind():
        count["i"] = 0

    return table, rewind


class TestBuild:
    def test_one_shot_build_and_run(self):
        built = build(farm_source(), farm_table(), ring(3))
        report = built.run(args=([1, 2, 3],))
        assert report.one_shot_results == (14,)
        assert built.deadlock.ok

    def test_emulate_through_built(self):
        table, rewind = stream_table(4)
        built = build(stream_source(), table, ring(2))
        rewind()
        final = built.emulate()
        assert final == 6  # 0+1+2+3

    def test_stream_with_profile(self):
        table, rewind = stream_table(6)
        built = build(
            stream_source(), table, ring(2),
            profile_iterations=2, rewind=rewind,
        )
        assert built.profile is not None
        assert built.profile.edge_bytes  # sizes were measured
        report = built.run()
        assert report.outputs == [0, 1, 3, 6, 10, 15]

    def test_profile_rewind_called(self):
        table, rewind = stream_table(5)
        built = build(
            stream_source(), table, ring(1),
            profile_iterations=2, rewind=rewind,
        )
        # Without the rewind the run would only see the 3 leftover frames.
        report = built.run()
        assert len(report.outputs) == 5


class TestProfileDrivenMapping:
    def test_profile_moves_big_edge_consumers(self):
        """A function consuming a huge input gets colocated with its
        producer when the profile reveals the edge size."""
        table = FunctionTable()
        count = {"i": 0}

        @table.register("grab", ins=["unit"], outs=["blob"], cost=100.0)
        def grab(_src):
            if count["i"] >= 3:
                raise EndOfStream
            count["i"] += 1
            return bytes(200_000)  # a 200 kB frame

        table.register(
            "crunch", ins=["int", "blob"], outs=["int", "int"], cost=1000.0
        )(lambda s, blob: (s + 1, len(blob)))
        table.register("emit", ins=["int"], cost=10.0)(lambda y: None)
        source = """
        let loop (s, i) = crunch s i;;
        let main = itermem grab loop emit 0 ();;
        """
        compiled = pipeline.compile_source(source, table)
        graph = pipeline.expand(compiled.ir, table)
        profile = pipeline.profile(
            graph, table, max_iterations=2,
            rewind=lambda: count.update(i=0),
        )
        mapping = pipeline.map_onto(graph, ring(4), profile=profile)
        crunch_pid = [p.id for p in graph.by_kind("apply")][0]
        assert mapping.processor_of(crunch_pid) == mapping.processor_of(
            "stream.input"
        )

    def test_unprofiled_mapping_still_valid(self):
        built = build(farm_source(), farm_table(), now(4))
        assert built.profile is None
        built.mapping.validate()


class TestMapOnto:
    def test_deadlock_check_raises_on_sabotage(self):
        table = farm_table()
        compiled = pipeline.compile_source(farm_source(), table)
        graph = pipeline.expand(compiled.ir, table)
        # Sabotage the farm and ensure map_onto refuses it.
        victim = next(
            e for e in graph.edges if e.dst == "df0.master" and e.dst_port >= 2
        )
        graph.edges.remove(victim)
        with pytest.raises(RuntimeError, match="DEADLOCK"):
            pipeline.map_onto(graph, ring(3))

    def test_check_can_be_skipped(self):
        table = farm_table()
        compiled = pipeline.compile_source(farm_source(), table)
        graph = pipeline.expand(compiled.ir, table)
        mapping = pipeline.map_onto(graph, ring(3), check=False)
        mapping.validate()


class TestRunModes:
    def test_costs_affect_makespan_not_results(self):
        r1 = build(farm_source(), farm_table(), ring(3), costs=T9000).run(
            args=([1, 2, 3],)
        )
        r2 = build(farm_source(), farm_table(), ring(3), costs=FAST_TEST).run(
            args=([1, 2, 3],)
        )
        assert r1.one_shot_results == r2.one_shot_results
        assert r1.makespan > r2.makespan

    def test_max_iterations_passthrough(self):
        table, _rewind = stream_table(100)
        built = build(stream_source(), table, ring(2))
        report = built.run(max_iterations=5)
        assert len(report.iterations) == 5
