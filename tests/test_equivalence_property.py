"""Property-based equivalence of the three execution paths.

The paper's correctness story rests on the equivalence of each
skeleton's declarative and operational definitions.  Here hypothesis
generates random skeletal programs (random chains of function
applications and farms with random degrees over random inputs) and
checks that the discrete-event simulation reproduces the sequential
emulation exactly; a smaller sample also exercises the generated thread
executive.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FunctionTable,
    ProgramBuilder,
    TaskOutcome,
    emulate_once,
)
from repro.codegen import run_generated
from repro.machine import FAST_TEST, simulate
from repro.pnt import expand_program
from repro.syndex import chain, distribute, now, ring

# Pools of pure building blocks.  Accumulators are order-insensitive,
# as the df contract demands.
COMPS = {
    "inc": lambda x: x + 1,
    "dbl": lambda x: 2 * x,
    "sq": lambda x: x * x,
    "negabs": lambda x: -abs(x),
}
ACCS = {
    "add": lambda a, b: a + b,
    "mul": lambda a, b: a * b,
    "maxi": lambda a, b: max(a, b),
}


def make_table():
    table = FunctionTable()
    for name, fn in COMPS.items():
        table.register(name, ins=["int"], outs=["int"], cost=50.0)(fn)
    for name, fn in ACCS.items():
        table.register(
            name, ins=["int", "int"], outs=["int"], cost=10.0,
            properties=["commutative", "associative"],
        )(fn)
    table.register(
        "spread", ins=["int"], outs=["int list"], cost=20.0
    )(lambda x: [x + d for d in range(3)])
    table.register(
        "tolist", ins=["int", "int"], outs=["int list"], cost=10.0,
        properties=["append"],
    )(lambda acc, y: sorted([y] if isinstance(acc, int) else acc + [y]))

    def halve(x):
        # Leaf small values, but also cap the recursion for the huge
        # products a preceding 'mul' stage can produce — otherwise the
        # farm would process O(|x|) packets and the test never ends.
        if abs(x) <= 1 or abs(x) > 64:
            return TaskOutcome(results=[x])
        return TaskOutcome(subtasks=[x // 2, x - x // 2])

    table.register("halve", ins=["int"], outs=["outcome"], cost=30.0)(halve)
    return table


# A program recipe: list of stages applied to the running list value.
stage = st.one_of(
    st.tuples(
        st.just("df"),
        st.sampled_from(sorted(COMPS)),
        st.sampled_from(sorted(ACCS)),
        st.integers(1, 6),
    ),
    st.tuples(st.just("tf"), st.just("halve"), st.sampled_from(sorted(ACCS)),
              st.integers(1, 5)),
)

recipes = st.lists(stage, min_size=1, max_size=2)
inputs = st.lists(st.integers(-9, 9), max_size=8)
arches = st.sampled_from(["ring1", "ring3", "ring7", "chain4", "now5"])


def build_program(table, recipe):
    """Chain farms: each stage folds the previous list into a scalar,
    then 'spread' re-expands it for the next stage."""
    b = ProgramBuilder("random_prog", table)
    (xs,) = b.params("xs")
    current = xs
    result = None
    for i, (kind, comp, acc, degree) in enumerate(recipe):
        if result is not None:
            current = b.apply("spread", result)
        if kind == "df":
            result = b.df(degree, comp=comp, acc=acc, z=b.const(1), xs=current)
        else:
            result = b.tf(degree, comp=comp, acc=acc, z=b.const(1), xs=current)
    return b.returns(result)


def make_arch(name):
    kind, n = name[:-1], int(name[-1])
    return {"ring": ring, "chain": chain, "now": now}[kind](n)


class TestSimulationEquivalence:
    @given(recipes, inputs, arches)
    @settings(max_examples=30, deadline=None)
    def test_simulation_matches_emulation(self, recipe, xs, arch_name):
        table = make_table()
        prog = build_program(table, recipe)
        expected = emulate_once(prog, table, xs)
        mapping = distribute(expand_program(prog, table), make_arch(arch_name))
        report = simulate(mapping, table, FAST_TEST, args=(xs,))
        assert report.one_shot_results == expected

    @given(recipes, inputs)
    @settings(max_examples=10, deadline=None)
    def test_result_independent_of_architecture(self, recipe, xs):
        table = make_table()
        prog = build_program(table, recipe)
        results = set()
        for arch_name in ("ring1", "ring3", "now5"):
            mapping = distribute(
                expand_program(prog, table), make_arch(arch_name)
            )
            report = simulate(mapping, table, FAST_TEST, args=(xs,))
            results.add(report.one_shot_results)
        assert len(results) == 1


class TestGeneratedCodeEquivalence:
    @given(recipes, inputs)
    @settings(max_examples=5, deadline=None)
    def test_generated_executive_matches_emulation(self, recipe, xs):
        table = make_table()
        prog = build_program(table, recipe)
        expected = emulate_once(prog, table, xs)
        mapping = distribute(expand_program(prog, table), ring(3))
        blackboard = run_generated(mapping, table, args=(xs,))
        assert blackboard["result_0"] == expected[0]


class TestItermemAndScmEquivalence:
    """Strategies over the remaining skeletons — ``itermem`` stream
    wrappers and ``scm`` — built on the conformance generator's typed
    case grammar (its differential oracle *is* the equivalence check:
    every backend run diffs against sequential emulation)."""

    scm_stage = st.fixed_dictionaries({
        "op": st.just("scm"),
        "split": st.sampled_from(["chunk", "stride"]),
        "comp": st.sampled_from(["sumlist", "maxlist", "lenlist"]),
        "merge": st.sampled_from(["total", "peak"]),
        "degree": st.integers(1, 5),
    })
    farm_stage = st.one_of(
        scm_stage,
        st.fixed_dictionaries({
            "op": st.just("df"),
            "comp": st.sampled_from(["inc", "sq", "negabs"]),
            "acc": st.sampled_from(["add", "maxi"]),
            "degree": st.integers(1, 4),
        }),
        st.fixed_dictionaries({
            "op": st.just("tf"),
            "comp": st.sampled_from(["halve", "countdown"]),
            "acc": st.sampled_from(["add", "maxi"]),
            "degree": st.integers(1, 4),
        }),
    )
    expand_stage = st.fixed_dictionaries({
        "op": st.just("expand"),
        "fn": st.sampled_from(["spread", "rangeto"]),
    })

    @given(scm_stage, inputs, arches)
    @settings(max_examples=25, deadline=None)
    def test_scm_simulation_matches_emulation(self, stage, xs, arch_name):
        from repro.conformance import CaseSpec, run_case

        spec = CaseSpec(seed=0, kind="oneshot",
                        arch=(arch_name[:-1], int(arch_name[-1])),
                        input=xs, iterations=0, stages=[stage])
        failure = run_case(spec, ["simulate"])
        assert failure is None, failure.describe()

    @given(expand_stage, farm_stage, st.integers(1, 3), arches)
    @settings(max_examples=25, deadline=None)
    def test_itermem_wrapped_farms_match_emulation(
        self, expand, farm, iterations, arch_name
    ):
        """A stream loop around any farm: state threads through the
        ``itermem`` MEM process, the body re-expands each stream item."""
        from repro.conformance import CaseSpec, run_case

        spec = CaseSpec(seed=0, kind="stream",
                        arch=(arch_name[:-1], int(arch_name[-1])),
                        input=[], iterations=iterations,
                        stages=[expand, farm])
        failure = run_case(spec, ["simulate"])
        assert failure is None, failure.describe()

    @given(expand_stage, farm_stage, st.integers(1, 2))
    @settings(max_examples=8, deadline=None)
    def test_itermem_on_generated_thread_executive(
        self, expand, farm, iterations
    ):
        from repro.conformance import CaseSpec, run_case

        spec = CaseSpec(seed=0, kind="stream", arch=("ring", 3),
                        input=[], iterations=iterations,
                        stages=[expand, farm])
        failure = run_case(spec, ["threads"])
        assert failure is None, failure.describe()


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="lambda tables need the fork start method",
)
class TestProcessBackendEquivalence:
    """A few samples through the multiprocess backend (it is slow to
    spin up OS processes, so the bulk of the coverage stays on the
    simulated/threaded paths; the dedicated four-way suite is in
    tests/backends/)."""

    @given(recipes, inputs)
    @settings(max_examples=3, deadline=None)
    def test_process_backend_matches_emulation(self, recipe, xs):
        from repro.backends import get_backend

        table = make_table()
        prog = build_program(table, recipe)
        expected = emulate_once(prog, table, xs)
        mapping = distribute(expand_program(prog, table), ring(3))
        report = get_backend("processes").run(
            mapping, table, args=(xs,), timeout=60.0, start_method="fork",
        )
        assert report.one_shot_results == expected
