"""Tests for the hand-crafted baseline (E6 substrate)."""

import pytest

from repro.baselines import handcrafted_mapping, handcrafted_tracking_graph
from repro.machine import Executive, FAST_TEST
from repro.pnt import ProcessKind
from repro.syndex import check_deadlock_freedom, ring, star
from repro.tracking import build_tracking_app


class TestHandcraftedGraph:
    def test_structure(self):
        g = handcrafted_tracking_graph(4)
        g.validate()
        assert len(g.by_kind(ProcessKind.WORKER)) == 4
        # The hand version inlines the routers away.
        assert g.by_kind(ProcessKind.ROUTER_MW) == []
        assert g.by_kind(ProcessKind.ROUTER_WM) == []

    def test_mapping_workers_spread(self):
        g = handcrafted_tracking_graph(8)
        m = handcrafted_mapping(g, ring(8))
        homes = {m.processor_of(f"det{i}") for i in range(8)}
        assert len(homes) == 8

    def test_mapping_wraps_when_short(self):
        g = handcrafted_tracking_graph(8)
        m = handcrafted_mapping(g, ring(3))
        m.validate()

    def test_single_processor(self):
        g = handcrafted_tracking_graph(2)
        m = handcrafted_mapping(g, ring(1))
        assert set(m.assignment.values()) == {"p0"}

    def test_deadlock_free_everywhere(self):
        g = handcrafted_tracking_graph(4)
        for arch in (ring(4), star(5), ring(1)):
            assert check_deadlock_freedom(handcrafted_mapping(g, arch)).ok


class TestFunctionalEquivalence:
    def test_same_outputs_as_skeleton_version(self):
        from repro import build

        app_skel = build_tracking_app(
            nproc=3, n_frames=4, frame_size=96, n_vehicles=1
        )
        built = build(app_skel.source, app_skel.table, ring(3))
        built.run()
        skeleton_displayed = list(app_skel.displayed)

        app_hand = build_tracking_app(
            nproc=3, n_frames=4, frame_size=96, n_vehicles=1
        )
        g = handcrafted_tracking_graph(3)
        # The handcrafted graph hard-codes a 512x512 source; patch for the
        # small test frame.
        g["grab"].params["source"] = (96, 96)
        m = handcrafted_mapping(g, ring(3))
        Executive(m, app_hand.table, FAST_TEST).run()
        assert app_hand.displayed == skeleton_displayed
