"""Unit tests for the supervision plumbing: health board, farm topology
extraction, fault reports, and the policy's deadline schedule."""

from repro.faults import FaultPolicy, FaultReport
from repro.faults.demo import make_demo
from repro.faults.supervisor import HealthBoard, Packet, Result
from repro.faults.topology import FaultTopology
from repro.machine.trace import Trace
from repro.syndex.distribute import Mapping


class TestHealthBoard:
    def test_fresh_after_beat(self):
        board = HealthBoard.local(2)
        board.beat(0)
        now = board.last(0)
        assert not board.stale(0, now + 0.01, timeout=0.1)

    def test_stale_after_timeout(self):
        board = HealthBoard.local(1)
        board.beat(0)
        assert board.stale(0, board.last(0) + 1.0, timeout=0.1)

    def test_never_beaten_slot_is_fresh_until_first_deadline(self):
        # Slots start at "now" conceptually: last() is 0.0, so staleness
        # is measured from the epoch and the supervisor only consults it
        # once a packet is overdue.
        board = HealthBoard.local(1)
        assert board.last(0) == 0.0


class TestEnvelopes:
    def test_packet_and_result_pickle(self):
        import pickle

        packet = pickle.loads(pickle.dumps(Packet(3, [1, 2])))
        assert (packet.seq, packet.value) == (3, [1, 2])
        result = pickle.loads(pickle.dumps(Result(3, 99)))
        assert (result.seq, result.value) == (3, 99)


class TestTopologyExtraction:
    def test_df_farm_roles(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        (farm,) = topo.farms
        assert farm.kind == "farm"
        assert farm.sid == "df0"
        assert farm.owner_pid == farm.dispatcher_pid == "df0.master"
        assert farm.supervised
        assert farm.degree == 3
        # Every role edge is distinct and registered in the lookups.
        edges = [
            (w.dispatch_edge, w.work_in_edge, w.work_out_edge, w.collect_edge)
            for w in farm.workers
        ]
        flat = [e for quad in edges for e in quad]
        assert len(set(flat)) == len(flat)
        for w in farm.workers:
            assert topo.dispatch_edges[w.dispatch_edge] == (farm, w)
            assert topo.collect_edges[w.collect_edge] == (farm, w)

    def test_scm_farm_roles(self):
        _prog, _table, _args, mapping = make_demo("scm")
        topo = FaultTopology.from_mapping(mapping)
        (farm,) = topo.farms
        assert farm.kind == "scm"
        assert farm.owner_pid.endswith(".merge")
        assert farm.dispatcher_pid.endswith(".split")
        for w in farm.workers:
            # scm has no routers: the split->worker edge is both the
            # dispatch and the work-in edge.
            assert w.dispatch_edge == w.work_in_edge
            assert w.work_out_edge == w.collect_edge

    def test_slots_are_unique_and_dense(self):
        _prog, _table, _args, mapping = make_demo("tf")
        topo = FaultTopology.from_mapping(mapping)
        slots = [w.slot for f in topo.farms for w in f.workers]
        assert sorted(slots) == list(range(topo.n_slots))

    def test_worker_pids(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        assert topo.worker_pids == [
            "df0.worker0", "df0.worker1", "df0.worker2",
        ]

    def test_farm_of_collect_edges(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        (farm,) = topo.farms
        edges = [w.collect_edge for w in farm.workers]
        assert topo.farm_of_collect_edges(edges) is farm
        assert topo.farm_of_collect_edges(edges + ["e999"]) is None

    def test_scm_split_merge_apart_is_unsupervised(self):
        _prog, _table, _args, mapping = make_demo("scm")
        split = next(p for p in mapping.assignment if p.endswith(".split"))
        merge = next(p for p in mapping.assignment if p.endswith(".merge"))
        assignment = dict(mapping.assignment)
        procs = mapping.arch.processor_ids()
        assignment[split], assignment[merge] = procs[0], procs[-1]
        assert assignment[split] != assignment[merge]
        apart = Mapping(mapping.graph, mapping.arch, assignment)
        topo = FaultTopology.from_mapping(apart)
        (farm,) = topo.farms
        assert not farm.supervised
        assert farm.workers  # workers still enumerated for slot layout
        assert topo.dispatch_edges == {}  # but no supervised role lookups


class TestFaultReport:
    def test_categories_and_views(self):
        report = FaultReport()
        report.add("injected", "crash", "w1", 10.0)
        report.add("detected", "crash", "w1", 20.0, processor="p2")
        report.add("quarantine", "crash", "w1", 20.0, processor="p2")
        report.add("quarantine", "crash", "w1", 21.0, processor="p2")
        report.add("redispatch", "crash", "w2", 25.0, latency_us=15.0)
        assert len(report.injected) == 1
        assert len(report.detected) == 1
        assert report.redispatches == 1
        assert report.quarantined == ["w1@p2"]  # deduplicated
        assert report.recovery_latencies() == [15.0]
        summary = report.summary()
        assert "1 injected" in summary
        assert "1 re-dispatch" in summary
        assert "w1@p2" in summary

    def test_merge_and_sort(self):
        a = FaultReport()
        a.add("detected", "crash", "w", 30.0)
        b = FaultReport()
        b.add("injected", "crash", "w", 10.0)
        a.merge(b).merge(None)
        assert [r.category for r in a.sorted().records] == [
            "injected", "detected",
        ]

    def test_payload_round_trip(self):
        report = FaultReport()
        report.add("redispatch", "stall", "w", 5.0, seq=3, attempts=1,
                   latency_us=2.5, note="moved")
        again = FaultReport.from_payload(report.to_payload())
        (record,) = again.records
        assert record.seq == 3
        assert record.attempts == 1
        assert record.latency_us == 2.5
        assert record.note == "moved"

    def test_annotate_trace_emits_instants(self):
        report = FaultReport()
        report.add("detected", "crash", "w1", 12.0, processor="p2")
        trace = Trace()
        report.annotate_trace(trace)
        (instant,) = trace.instants
        assert instant.name == "fault:detected"
        assert instant.resource == "p2"
        assert instant.time == 12.0


class TestFaultPolicy:
    def test_deadline_backoff(self):
        policy = FaultPolicy(packet_timeout_s=1.0, backoff=2.0)
        assert policy.deadline_s(0) == 1.0
        assert policy.deadline_s(1) == 2.0
        assert policy.deadline_s(2) == 4.0
