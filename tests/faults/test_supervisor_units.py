"""Unit tests for the supervision plumbing: health board, farm topology
extraction, fault reports, the policy's deadline schedule, the circuit
breaker, and the bounded re-dispatch flush."""

import time

from repro.codegen.kernel import ThreadKernel
from repro.faults import FaultPolicy, FaultReport
from repro.faults.demo import make_demo
from repro.faults.supervisor import (
    HealthBoard,
    Packet,
    Result,
    SupervisedKernel,
    _InFlight,
)
from repro.faults.topology import FaultTopology
from repro.machine.trace import Trace
from repro.syndex.distribute import Mapping


def make_supervised(**policy_kwargs):
    """A SupervisedKernel over the df demo farm, no threads started."""
    _prog, _table, _args, mapping = make_demo("df")
    topo = FaultTopology.from_mapping(mapping)
    kernel = SupervisedKernel(
        ThreadKernel(), topo, policy=FaultPolicy(**policy_kwargs)
    )
    return kernel, kernel._states["df0"]


class TestHealthBoard:
    def test_fresh_after_beat(self):
        board = HealthBoard.local(2)
        board.beat(0)
        now = board.last(0)
        assert not board.stale(0, now + 0.01, timeout=0.1)

    def test_stale_after_timeout(self):
        board = HealthBoard.local(1)
        board.beat(0)
        assert board.stale(0, board.last(0) + 1.0, timeout=0.1)

    def test_never_beaten_slot_is_fresh_until_first_deadline(self):
        # Slots start at "now" conceptually: last() is 0.0, so staleness
        # is measured from the epoch and the supervisor only consults it
        # once a packet is overdue.
        board = HealthBoard.local(1)
        assert board.last(0) == 0.0

    def test_never_beaten_slot_is_never_stale(self):
        # A worker that never started cannot have died: even an
        # arbitrarily late "now" must not flag the untouched slot (the
        # stall path covers workers that never start).
        board = HealthBoard.local(2)
        for now in (0.0, 1.0, 1e9):
            assert not board.stale(0, now, timeout=0.1)

    def test_future_timestamp_is_not_stale(self):
        # Clock skew: a heartbeat stamped *after* the supervisor's "now"
        # (shared-memory boards cross processes; monotonic clocks need
        # not agree to the microsecond) yields a negative age, which must
        # read as fresh, not wrap into a huge staleness.
        board = HealthBoard.local(1)
        board.beat(0)
        assert not board.stale(0, board.last(0) - 5.0, timeout=0.1)


class TestEnvelopes:
    def test_packet_and_result_pickle(self):
        import pickle

        packet = pickle.loads(pickle.dumps(Packet(3, [1, 2])))
        assert (packet.seq, packet.value) == (3, [1, 2])
        result = pickle.loads(pickle.dumps(Result(3, 99)))
        assert (result.seq, result.value) == (3, 99)


class TestTopologyExtraction:
    def test_df_farm_roles(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        (farm,) = topo.farms
        assert farm.kind == "farm"
        assert farm.sid == "df0"
        assert farm.owner_pid == farm.dispatcher_pid == "df0.master"
        assert farm.supervised
        assert farm.degree == 3
        # Every role edge is distinct and registered in the lookups.
        edges = [
            (w.dispatch_edge, w.work_in_edge, w.work_out_edge, w.collect_edge)
            for w in farm.workers
        ]
        flat = [e for quad in edges for e in quad]
        assert len(set(flat)) == len(flat)
        for w in farm.workers:
            assert topo.dispatch_edges[w.dispatch_edge] == (farm, w)
            assert topo.collect_edges[w.collect_edge] == (farm, w)

    def test_scm_farm_roles(self):
        _prog, _table, _args, mapping = make_demo("scm")
        topo = FaultTopology.from_mapping(mapping)
        (farm,) = topo.farms
        assert farm.kind == "scm"
        assert farm.owner_pid.endswith(".merge")
        assert farm.dispatcher_pid.endswith(".split")
        for w in farm.workers:
            # scm has no routers: the split->worker edge is both the
            # dispatch and the work-in edge.
            assert w.dispatch_edge == w.work_in_edge
            assert w.work_out_edge == w.collect_edge

    def test_slots_are_unique_and_dense(self):
        _prog, _table, _args, mapping = make_demo("tf")
        topo = FaultTopology.from_mapping(mapping)
        slots = [w.slot for f in topo.farms for w in f.workers]
        assert sorted(slots) == list(range(topo.n_slots))

    def test_worker_pids(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        assert topo.worker_pids == [
            "df0.worker0", "df0.worker1", "df0.worker2",
        ]

    def test_farm_of_collect_edges(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        (farm,) = topo.farms
        edges = [w.collect_edge for w in farm.workers]
        assert topo.farm_of_collect_edges(edges) is farm
        assert topo.farm_of_collect_edges(edges + ["e999"]) is None

    def test_scm_split_merge_apart_is_unsupervised(self):
        _prog, _table, _args, mapping = make_demo("scm")
        split = next(p for p in mapping.assignment if p.endswith(".split"))
        merge = next(p for p in mapping.assignment if p.endswith(".merge"))
        assignment = dict(mapping.assignment)
        procs = mapping.arch.processor_ids()
        assignment[split], assignment[merge] = procs[0], procs[-1]
        assert assignment[split] != assignment[merge]
        apart = Mapping(mapping.graph, mapping.arch, assignment)
        topo = FaultTopology.from_mapping(apart)
        (farm,) = topo.farms
        assert not farm.supervised
        assert farm.workers  # workers still enumerated for slot layout
        assert topo.dispatch_edges == {}  # but no supervised role lookups


class TestFaultReport:
    def test_categories_and_views(self):
        report = FaultReport()
        report.add("injected", "crash", "w1", 10.0)
        report.add("detected", "crash", "w1", 20.0, processor="p2")
        report.add("quarantine", "crash", "w1", 20.0, processor="p2")
        report.add("quarantine", "crash", "w1", 21.0, processor="p2")
        report.add("redispatch", "crash", "w2", 25.0, latency_us=15.0)
        assert len(report.injected) == 1
        assert len(report.detected) == 1
        assert report.redispatches == 1
        assert report.quarantined == ["w1@p2"]  # deduplicated
        assert report.recovery_latencies() == [15.0]
        summary = report.summary()
        assert "1 injected" in summary
        assert "1 re-dispatch" in summary
        assert "w1@p2" in summary

    def test_merge_and_sort(self):
        a = FaultReport()
        a.add("detected", "crash", "w", 30.0)
        b = FaultReport()
        b.add("injected", "crash", "w", 10.0)
        a.merge(b).merge(None)
        assert [r.category for r in a.sorted().records] == [
            "injected", "detected",
        ]

    def test_payload_round_trip(self):
        report = FaultReport()
        report.add("redispatch", "stall", "w", 5.0, seq=3, attempts=1,
                   latency_us=2.5, note="moved")
        again = FaultReport.from_payload(report.to_payload())
        (record,) = again.records
        assert record.seq == 3
        assert record.attempts == 1
        assert record.latency_us == 2.5
        assert record.note == "moved"

    def test_annotate_trace_emits_instants(self):
        report = FaultReport()
        report.add("detected", "crash", "w1", 12.0, processor="p2")
        trace = Trace()
        report.annotate_trace(trace)
        (instant,) = trace.instants
        assert instant.name == "fault:detected"
        assert instant.resource == "p2"
        assert instant.time == 12.0


class TestFaultPolicy:
    def test_deadline_backoff(self):
        policy = FaultPolicy(packet_timeout_s=1.0, backoff=2.0)
        assert policy.deadline_s(0) == 1.0
        assert policy.deadline_s(1) == 2.0
        assert policy.deadline_s(2) == 4.0

    def test_probe_backoff(self):
        policy = FaultPolicy(probe_after_s=0.5, probe_backoff=3.0)
        assert policy.probe_delay_s(0) == 0.5
        assert policy.probe_delay_s(1) == 1.5
        assert policy.probe_delay_s(2) == 4.5


class TestCircuitBreaker:
    def test_quarantine_creates_breaker(self):
        kernel, state = make_supervised(probe_after_s=10.0)
        worker = state.farm.workers[1]
        kernel._quarantine(state, worker, "crash", seq=0)
        assert worker.index in state.quarantined
        breaker = state.breakers[worker.index]
        assert breaker.probes == 0
        assert breaker.next_probe_at > time.monotonic()
        categories = [r.category for r in kernel.fault_report.records]
        assert "quarantine" in categories

    def test_quarantine_is_idempotent(self):
        kernel, state = make_supervised()
        worker = state.farm.workers[0]
        kernel._quarantine(state, worker, "crash", seq=0)
        breaker = state.breakers[worker.index]
        kernel._quarantine(state, worker, "stall", seq=1)
        assert state.breakers[worker.index] is breaker  # not reset
        quarantines = [r for r in kernel.fault_report.records
                       if r.category == "quarantine"]
        assert len(quarantines) == 1

    def test_probe_duplicates_oldest_inflight_packet(self):
        kernel, state = make_supervised(probe_after_s=0.5)
        worker = state.farm.workers[2]
        kernel._quarantine(state, worker, "crash", seq=0)
        state.breakers[worker.index].next_probe_at = 0.0  # due now
        now = time.monotonic()
        state.inflight[7] = _InFlight(7, "payload", 0, 0, now)
        state.inflight[9] = _InFlight(9, "later", 1, 1, now)
        with state.lock:
            kernel._probe_quarantined(state, now)
        (entry,) = state.pending_sends
        edge, envelope, attempts = entry
        assert edge == worker.dispatch_edge
        assert isinstance(envelope, Packet)
        assert (envelope.seq, envelope.value) == (7, "payload")
        breaker = state.breakers[worker.index]
        assert breaker.probes == 1
        assert breaker.next_probe_at > now
        probes = [r for r in kernel.fault_report.records
                  if r.category == "probe"]
        assert len(probes) == 1 and probes[0].seq == 7

    def test_probe_waits_for_its_deadline(self):
        kernel, state = make_supervised(probe_after_s=1000.0)
        worker = state.farm.workers[0]
        kernel._quarantine(state, worker, "crash", seq=0)
        state.inflight[0] = _InFlight(0, "x", 0, 1, time.monotonic())
        with state.lock:
            kernel._probe_quarantined(state, time.monotonic())
        assert state.pending_sends == []
        assert state.breakers[worker.index].probes == 0

    def test_max_probes_retires_the_worker(self):
        kernel, state = make_supervised(probe_after_s=0.0, max_probes=2)
        worker = state.farm.workers[0]
        kernel._quarantine(state, worker, "crash", seq=0)
        state.inflight[0] = _InFlight(0, "x", 0, 1, time.monotonic())
        breaker = state.breakers[worker.index]
        for _ in range(5):
            breaker.next_probe_at = 0.0
            with state.lock:
                kernel._probe_quarantined(state, time.monotonic())
        assert breaker.probes == 2  # stopped at max_probes
        assert len(state.pending_sends) == 2

    def test_no_probe_without_live_work(self):
        # Probes duplicate real in-flight packets; with nothing in
        # flight (or during teardown) there is nothing safe to send.
        kernel, state = make_supervised(probe_after_s=0.0)
        worker = state.farm.workers[0]
        kernel._quarantine(state, worker, "crash", seq=0)
        state.breakers[worker.index].next_probe_at = 0.0
        with state.lock:
            kernel._probe_quarantined(state, time.monotonic())
        assert state.pending_sends == []

    def test_readmit_clears_quarantine_and_breaker(self):
        kernel, state = make_supervised()
        worker = state.farm.workers[1]
        kernel._quarantine(state, worker, "crash", seq=0)
        kernel._readmit(state, worker)
        assert worker.index not in state.quarantined
        assert worker.index not in state.breakers
        categories = [r.category for r in kernel.fault_report.records]
        assert "readmit" in categories

    def test_readmit_of_healthy_worker_is_a_no_op(self):
        kernel, state = make_supervised()
        kernel._readmit(state, state.farm.workers[0])
        assert kernel.fault_report.records == []


class TestFlushSendsOverflow:
    """Regression: the queue.Full fallback must stay bounded (a packet
    whose target queue never drains is dropped with an ``overflow``
    record instead of being retried forever)."""

    def fill_queue(self, kernel, edge):
        channel = kernel._base.channel(edge)
        while True:
            try:
                channel.q.put_nowait("filler")
            except Exception:
                return

    def test_packet_dropped_after_bounded_attempts(self):
        kernel, state = make_supervised(max_flush_attempts=3)
        edge = state.farm.workers[0].dispatch_edge
        self.fill_queue(kernel, edge)
        state.pending_sends.append((edge, Packet(5, "v"), 0))
        for scan in range(2):
            kernel._flush_sends(state)
            ((kept_edge, kept, attempts),) = state.pending_sends
            assert (kept_edge, kept.seq, attempts) == (edge, 5, scan + 1)
        kernel._flush_sends(state)  # third full scan: give up
        assert state.pending_sends == []
        (record,) = [r for r in kernel.fault_report.records
                     if r.category == "overflow"]
        assert record.seq == 5
        assert record.attempts == 3
        assert record.target == edge

    def test_stop_tokens_are_never_dropped(self):
        kernel, state = make_supervised(max_flush_attempts=2)
        edge = state.farm.workers[0].dispatch_edge
        self.fill_queue(kernel, edge)
        stop = kernel._base.stop_token
        state.pending_sends.append((edge, stop, 0))
        for _ in range(10):
            kernel._flush_sends(state)
        (entry,) = state.pending_sends
        assert entry[0] == edge and entry[1] is stop

    def test_flush_delivers_once_space_frees(self):
        kernel, state = make_supervised(max_flush_attempts=3)
        edge = state.farm.workers[1].dispatch_edge
        self.fill_queue(kernel, edge)
        state.pending_sends.append((edge, Packet(2, "v"), 0))
        kernel._flush_sends(state)
        assert state.pending_sends  # still waiting
        kernel._base.channel(edge).q.get_nowait()  # worker drains one
        kernel._flush_sends(state)
        assert state.pending_sends == []
        assert not [r for r in kernel.fault_report.records
                    if r.category == "overflow"]
