"""Chaos tests: real injected failures on the real backends.

The acceptance property: an ``scm``/``df`` farm with one injected
worker crash per run produces the same outputs as the fault-free
sequential emulation, on both the threads and the processes backends,
and the run report records the detection and re-dispatch with a
recovery latency.

Timeouts are shrunk well below the defaults so detection happens in
tens of milliseconds and the whole suite stays fast; the margins are
still generous against CI jitter (a worker only looks dead after both
its packet deadline *and* its heartbeat go stale).
"""

import pytest

from repro.backends import get_backend
from repro.faults import FaultPlan, FaultPolicy, FaultSpec
from repro.faults.demo import RECIPES, make_demo, worker_pids
from repro.faults.topology import FaultTopology
from repro.machine import FAST_TEST

#: Fast-detection policy for tests (defaults suit interactive runs).
POLICY = FaultPolicy(
    packet_timeout_s=0.3,
    heartbeat_timeout_s=0.15,
    poll_s=0.002,
)

REAL_BACKENDS = ["threads", "processes"]


def run_with_faults(backend, skeleton, plan, policy=POLICY, **options):
    prog, table, args, mapping = make_demo(skeleton)
    return get_backend(backend).run(
        mapping, table, program=prog, costs=FAST_TEST, args=args,
        timeout=60.0, fault_plan=plan, fault_policy=policy, **options,
    )


def reference(skeleton):
    prog, table, args = RECIPES[skeleton]()
    return get_backend("emulate").run(
        None, table, program=prog, costs=FAST_TEST, args=args,
    )


def crash_plan(skeleton, worker=1):
    return FaultPlan([FaultSpec(
        kind="crash", process=f"{skeleton}0.worker{worker}", occurrence=0,
    )])


class TestCrashEquivalence:
    """One worker dies mid-run; outputs must match the emulation."""

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    @pytest.mark.parametrize("skeleton", ["df", "scm"])
    def test_farm_survives_worker_crash(self, backend, skeleton):
        plan = crash_plan(skeleton)
        report = run_with_faults(backend, skeleton, plan)
        assert report.one_shot_results == reference(skeleton).one_shot_results

        faults = report.faults
        assert faults is not None
        assert len(faults.injected) == 1
        assert len(faults.detected) >= 1
        assert faults.redispatches >= 1
        latencies = faults.recovery_latencies()
        assert latencies and all(lat > 0 for lat in latencies)
        assert any(
            f"{skeleton}0.worker1" in tag for tag in faults.quarantined
        )

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_tf_survives_worker_crash(self, backend):
        plan = crash_plan("tf")
        report = run_with_faults(backend, "tf", plan)
        assert report.one_shot_results == reference("tf").one_shot_results
        assert report.faults.redispatches >= 1


class TestOtherFaultKinds:
    def test_stall_recovery_on_threads(self):
        plan = FaultPlan([FaultSpec(
            kind="stall", process="df0.worker0", occurrence=0,
        )])
        report = run_with_faults("threads", "df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        faults = report.faults
        assert faults.redispatches >= 1
        assert any("df0.worker0" in tag for tag in faults.quarantined)

    def test_drop_recovery_on_threads(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        edge = topo.farms[0].workers[2].dispatch_edge
        plan = FaultPlan([FaultSpec(kind="drop", edge=edge, occurrence=0)])
        report = run_with_faults("threads", "df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        faults = report.faults
        assert len(faults.injected) == 1
        assert faults.redispatches >= 1
        # The worker itself is healthy: a re-send, not a quarantine, is
        # the correct minimal recovery (a slow first attempt may still
        # escalate, so only the no-redispatch case would be a failure).

    def test_delay_is_absorbed_on_threads(self):
        plan = FaultPlan([FaultSpec(
            kind="delay", process="df0.worker1", occurrence=0,
            delay_us=30_000.0,
        )])
        report = run_with_faults("threads", "df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        assert len(report.faults.injected) == 1


class TestDeterministicReplay:
    def test_seeded_plan_replays_on_both_backends(self):
        _prog, _table, _args, mapping = make_demo("df")
        plan = FaultPlan.random(
            3, workers=worker_pids(mapping), kinds=("crash",),
        )
        want = reference("df").one_shot_results
        for backend in REAL_BACKENDS:
            report = run_with_faults(backend, "df", plan)
            assert report.one_shot_results == want
            assert len(report.faults.injected) == 1
            assert report.faults.injected[0].target == plan.events[0].process


class TestReportPlumbing:
    def test_fault_instants_reach_the_trace(self):
        report = run_with_faults(
            "threads", "df", crash_plan("df"), record_trace=True,
        )
        names = {i.name for i in report.trace.instants}
        assert "fault:injected" in names
        assert "fault:redispatch" in names

    def test_no_faults_without_plan(self):
        prog, table, args, mapping = make_demo("df")
        report = get_backend("threads").run(
            mapping, table, program=prog, costs=FAST_TEST, args=args,
            timeout=60.0,
        )
        assert report.one_shot_results == reference("df").one_shot_results
        assert report.faults is None or not report.faults
