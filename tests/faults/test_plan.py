"""Unit tests for fault plans: validation, serialisation, matching."""

import pytest

from repro.faults import FaultPlan, FaultSpec, PlanError, PlanMatcher


class TestFaultSpecValidation:
    def test_minimal_specs(self):
        FaultSpec(kind="crash", process="df0.worker1")
        FaultSpec(kind="stall", processor="P2")
        FaultSpec(kind="delay", process="df0.worker0", delay_us=100.0)
        FaultSpec(kind="drop", edge="e7", occurrence=3)

    def test_unknown_kind(self):
        with pytest.raises(PlanError, match="unknown fault kind"):
            FaultSpec(kind="explode", process="x")

    def test_no_target(self):
        with pytest.raises(PlanError, match="exactly one"):
            FaultSpec(kind="crash")

    def test_two_targets(self):
        with pytest.raises(PlanError, match="exactly one"):
            FaultSpec(kind="crash", process="x", processor="P1")

    def test_drop_needs_an_edge(self):
        with pytest.raises(PlanError, match="target an edge"):
            FaultSpec(kind="drop", process="df0.worker1")

    def test_compute_faults_reject_edges(self):
        with pytest.raises(PlanError, match="process/processor"):
            FaultSpec(kind="crash", edge="e3")

    def test_negative_occurrence(self):
        with pytest.raises(PlanError, match=">= 0"):
            FaultSpec(kind="crash", process="x", occurrence=-1)

    def test_target_property(self):
        assert FaultSpec(kind="crash", process="w").target == "w"
        assert FaultSpec(kind="crash", processor="P1").target == "P1"
        assert FaultSpec(kind="drop", edge="e0").target == "e0"


class TestSerialisation:
    def test_round_trip(self):
        plan = FaultPlan(
            events=[
                FaultSpec(kind="crash", process="df0.worker1", occurrence=2),
                FaultSpec(kind="delay", processor="P3", delay_us=750.0),
                FaultSpec(kind="drop", edge="e4"),
            ],
            seed=17,
        )
        again = FaultPlan.loads(plan.dumps())
        assert again.events == plan.events
        assert again.seed == 17

    def test_file_round_trip(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind="stall", process="w")])
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)).events == plan.events

    def test_bool_and_len(self):
        assert not FaultPlan()
        plan = FaultPlan([FaultSpec(kind="crash", process="w")])
        assert plan
        assert len(plan) == 1

    def test_rejects_bad_json(self):
        with pytest.raises(PlanError, match="not valid JSON"):
            FaultPlan.loads("{nope")

    def test_rejects_wrong_version(self):
        with pytest.raises(PlanError, match="version"):
            FaultPlan.from_dict({"version": 9, "events": []})

    def test_rejects_non_list_events(self):
        with pytest.raises(PlanError, match="must be a list"):
            FaultPlan.from_dict({"events": "crash everything"})

    def test_rejects_unknown_event_field(self):
        with pytest.raises(PlanError, match="unknown fault-event field"):
            FaultPlan.from_dict(
                {"events": [{"kind": "crash", "process": "w", "boom": 1}]}
            )

    def test_rejects_missing_kind(self):
        with pytest.raises(PlanError, match="missing 'kind'"):
            FaultPlan.from_dict({"events": [{"process": "w"}]})


class TestPlanMatcher:
    def test_occurrence_is_zero_based(self):
        plan = FaultPlan([FaultSpec(kind="crash", process="w", occurrence=0)])
        matcher = PlanMatcher(plan)
        assert matcher.fire(process="w") == plan.events
        assert matcher.fire(process="w") == []  # fires exactly once

    def test_nth_occurrence(self):
        plan = FaultPlan([FaultSpec(kind="crash", process="w", occurrence=2)])
        matcher = PlanMatcher(plan)
        assert matcher.fire(process="w") == []
        assert matcher.fire(process="w") == []
        assert matcher.fire(process="w") == plan.events

    def test_non_matching_events_do_not_count(self):
        plan = FaultPlan([FaultSpec(kind="crash", process="w", occurrence=1)])
        matcher = PlanMatcher(plan)
        assert matcher.fire(process="other") == []
        assert matcher.fire(process="w") == []  # occurrence 0 of "w"
        assert matcher.fire(process="w") == plan.events

    def test_processor_and_edge_keys(self):
        plan = FaultPlan([
            FaultSpec(kind="stall", processor="P1"),
            FaultSpec(kind="drop", edge="e3"),
        ])
        matcher = PlanMatcher(plan)
        assert matcher.fire(process="w", processor="P1") == [plan.events[0]]
        assert matcher.fire(edge="e3", kinds=("drop",)) == [plan.events[1]]

    def test_kinds_filter(self):
        plan = FaultPlan([FaultSpec(kind="drop", edge="e0")])
        matcher = PlanMatcher(plan)
        # A compute site asking for compute kinds must not consume drops.
        assert matcher.fire(edge="e0", kinds=("crash", "stall")) == []
        assert matcher.fire(edge="e0", kinds=("drop",)) == plan.events

    def test_pending(self):
        plan = FaultPlan([
            FaultSpec(kind="crash", process="w"),
            FaultSpec(kind="crash", process="ghost"),
        ])
        matcher = PlanMatcher(plan)
        matcher.fire(process="w")
        assert matcher.pending() == [plan.events[1]]


class TestOverloadKinds:
    def test_validation(self):
        FaultSpec(kind="slow-worker", process="w", delay_us=500.0, count=3)
        FaultSpec(kind="burst", process="stream.input", count=4)
        FaultSpec(kind="input-surge", process="stream.input", factor=3.0)
        with pytest.raises(PlanError, match="count"):
            FaultSpec(kind="burst", process="w", count=0)
        with pytest.raises(PlanError, match="factor"):
            FaultSpec(kind="input-surge", process="w", factor=0.0)

    def test_round_trip_keeps_window_fields(self):
        plan = FaultPlan([
            FaultSpec(kind="slow-worker", process="w", delay_us=2_000.0,
                      count=4),
            FaultSpec(kind="input-surge", process="inp", occurrence=5,
                      count=3, factor=2.5),
            FaultSpec(kind="burst", process="inp", count=2),
        ])
        again = FaultPlan.loads(plan.dumps())
        assert again.events == plan.events

    def test_window_fires_count_consecutive_occurrences(self):
        plan = FaultPlan([FaultSpec(
            kind="burst", process="inp", occurrence=2, count=3,
        )])
        matcher = PlanMatcher(plan)
        fired = [bool(matcher.fire(process="inp")) for _ in range(8)]
        assert fired == [False, False, True, True, True,
                         False, False, False]

    def test_window_spec_is_pending_until_first_fire(self):
        plan = FaultPlan([FaultSpec(
            kind="slow-worker", process="w", delay_us=1.0, occurrence=1,
            count=2,
        )])
        matcher = PlanMatcher(plan)
        matcher.fire(process="w")
        assert matcher.pending() == plan.events
        matcher.fire(process="w")
        assert matcher.pending() == []

    def test_random_draws_windows_for_overload_kinds(self):
        plan = FaultPlan.random(
            5, workers=["w0", "w1"], kinds=("slow-worker", "burst"),
            n_events=6, max_count=5, delay_us=750.0,
        )
        assert len(plan) == 6
        for event in plan.events:
            assert event.kind in ("slow-worker", "burst")
            assert 1 <= event.count <= 5
            if event.kind == "slow-worker":
                assert event.delay_us == 750.0


class TestGrayFailureKinds:
    def test_validation(self):
        FaultSpec(kind="limplock", process="w", factor=5.0)
        FaultSpec(kind="partial-partition", edge="e2", count=3)
        FaultSpec(kind="credit-starvation", process="w", occurrence=4)

    def test_limplock_needs_a_real_slowdown(self):
        # factor <= 1 is "not actually limping": reject it loudly rather
        # than silently running a no-op chaos scenario.
        with pytest.raises(PlanError, match="slowdown factor > 1"):
            FaultSpec(kind="limplock", process="w", factor=1.0)
        with pytest.raises(PlanError, match="factor must be positive"):
            FaultSpec(kind="limplock", process="w", factor=-2.0)

    def test_partial_partition_targets_an_edge(self):
        with pytest.raises(PlanError, match="target an edge"):
            FaultSpec(kind="partial-partition", process="w")

    def test_credit_starvation_targets_a_process(self):
        with pytest.raises(PlanError, match="process/processor"):
            FaultSpec(kind="credit-starvation", edge="e1")

    def test_round_trip_keeps_gray_fields(self):
        plan = FaultPlan([
            FaultSpec(kind="limplock", process="w", factor=7.5),
            FaultSpec(kind="partial-partition", edge="e3", occurrence=2,
                      count=4),
            FaultSpec(kind="credit-starvation", process="w2"),
        ])
        again = FaultPlan.loads(plan.dumps())
        assert again.events == plan.events
        assert again.events[0].factor == 7.5
        assert again.events[1].count == 4


class TestValidationErrorPaths:
    def test_negative_delay_is_rejected(self):
        with pytest.raises(PlanError, match="delay_us must be >= 0"):
            FaultSpec(kind="delay", process="w", delay_us=-5.0)

    def test_delay_kinds_need_a_positive_delay(self):
        with pytest.raises(PlanError, match="positive delay_us"):
            FaultSpec(kind="delay", process="w")
        with pytest.raises(PlanError, match="positive delay_us"):
            FaultSpec(kind="slow-worker", process="w", delay_us=0.0)

    def test_delay_is_meaningless_elsewhere(self):
        with pytest.raises(PlanError, match="meaningless"):
            FaultSpec(kind="crash", process="w", delay_us=100.0)
        with pytest.raises(PlanError, match="meaningless"):
            FaultSpec(kind="limplock", process="w", factor=2.0,
                      delay_us=100.0)

    def test_non_integer_counters_are_rejected(self):
        with pytest.raises(PlanError, match="occurrence must be an integer"):
            FaultSpec(kind="crash", process="w", occurrence="3")
        with pytest.raises(PlanError, match="count must be an integer"):
            FaultSpec(kind="crash", process="w", count=True)

    def test_non_numeric_factor_is_rejected(self):
        with pytest.raises(PlanError, match="factor must be a number"):
            FaultSpec(kind="limplock", process="w", factor="fast")

    def test_unknown_field_suggests_the_close_match(self):
        with pytest.raises(PlanError, match="did you mean 'process'"):
            FaultPlan.from_dict(
                {"events": [{"kind": "crash", "proces": "w"}]}
            )

    def test_unknown_field_without_a_close_match(self):
        with pytest.raises(PlanError, match="known fields"):
            FaultPlan.from_dict(
                {"events": [{"kind": "crash", "process": "w",
                             "zzqqy": 1}]}
            )

    def test_random_limplock_draws_real_factors(self):
        plan = FaultPlan.random(
            3, workers=["w0", "w1"], kinds=("limplock",), n_events=5,
        )
        for event in plan.events:
            assert event.kind == "limplock"
            assert event.factor >= 1.5

    def test_random_edge_kinds_need_edges(self):
        with pytest.raises(PlanError, match="pass edges"):
            FaultPlan.random(
                0, workers=["w0"], kinds=("partial-partition",),
            )
        plan = FaultPlan.random(
            0, workers=["w0"], kinds=("partial-partition",),
            edges=["e1", "e2"], n_events=4, max_count=3,
        )
        for event in plan.events:
            assert event.edge in ("e1", "e2")
            assert 1 <= event.count <= 3


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        workers = ["df0.worker0", "df0.worker1", "df0.worker2"]
        a = FaultPlan.random(42, workers=workers, kinds=("crash", "stall"))
        b = FaultPlan.random(42, workers=workers, kinds=("crash", "stall"))
        assert a.events == b.events
        assert a.seed == 42

    def test_different_seeds_eventually_differ(self):
        workers = ["w0", "w1", "w2", "w3"]
        plans = {
            tuple(FaultPlan.random(seed, workers=workers).events)
            for seed in range(8)
        }
        assert len(plans) > 1

    def test_targets_stay_in_worker_set(self):
        workers = ["w0", "w1"]
        plan = FaultPlan.random(
            7, workers=workers, kinds=("delay",), n_events=5,
        )
        assert len(plan) == 5
        for event in plan.events:
            assert event.process in workers
            assert event.kind == "delay"
            assert event.delay_us > 0
