"""Fault injection on the discrete-event simulator.

The simulator charges fault costs in *virtual* time: detection latency
is the policy's ``detect_us`` and re-dispatch shows up as extra
makespan, while the recovered outputs stay bit-identical to the
fault-free sequential emulation.
"""

import pytest

from repro.backends import get_backend
from repro.faults import FaultPlan, FaultPolicy, FaultSpec
from repro.faults.demo import RECIPES, make_demo
from repro.faults.topology import FaultTopology
from repro.machine import FAST_TEST


def run_simulated(skeleton, plan=None, policy=None, record_trace=False):
    prog, table, args, mapping = make_demo(skeleton)
    return get_backend("simulate").run(
        mapping, table, program=prog, costs=FAST_TEST, args=args,
        fault_plan=plan, fault_policy=policy, record_trace=record_trace,
    )


def reference(skeleton):
    prog, table, args = RECIPES[skeleton]()
    return get_backend("emulate").run(
        None, table, program=prog, costs=FAST_TEST, args=args,
    )


class TestCrashRecovery:
    @pytest.mark.parametrize("skeleton", sorted(RECIPES))
    def test_outputs_survive_one_worker_crash(self, skeleton):
        plan = FaultPlan([FaultSpec(
            kind="crash", process=f"{skeleton}0.worker1", occurrence=0,
        )])
        report = run_simulated(skeleton, plan)
        assert report.one_shot_results == reference(skeleton).one_shot_results
        faults = report.faults
        assert len(faults.injected) == 1
        assert len(faults.detected) == 1
        assert faults.redispatches >= 1
        assert f"{skeleton}0.worker1" in faults.quarantined[0]

    def test_detection_latency_is_virtual(self):
        policy = FaultPolicy(detect_us=800.0)
        plan = FaultPlan([FaultSpec(
            kind="crash", process="df0.worker1", occurrence=0,
        )])
        report = run_simulated("df", plan, policy)
        latencies = report.faults.recovery_latencies()
        assert latencies
        # Recovery happens at detection plus the master's dispatch cost,
        # so the virtual latency is at least detect_us and the same
        # order of magnitude.
        assert all(800.0 <= lat < 8000.0 for lat in latencies)

    def test_processor_keyed_crash(self):
        _prog, _table, _args, mapping = make_demo("df")
        victim = mapping.processor_of("df0.worker1")
        plan = FaultPlan([FaultSpec(
            kind="crash", processor=victim, occurrence=0,
        )])
        report = run_simulated("df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        assert len(report.faults.injected) == 1

    def test_stall_is_detected_and_quarantined(self):
        plan = FaultPlan([FaultSpec(
            kind="stall", process="df0.worker2", occurrence=0,
        )])
        report = run_simulated("df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        assert report.faults.quarantined == ["df0.worker2@p3"]


class TestDelay:
    def test_delay_stretches_makespan_not_results(self):
        clean = run_simulated("df")
        plan = FaultPlan([FaultSpec(
            kind="delay", process="df0.worker0", occurrence=0,
            delay_us=50_000.0,
        )])
        slowed = run_simulated("df", plan)
        assert slowed.one_shot_results == clean.one_shot_results
        assert slowed.makespan > clean.makespan + 40_000.0
        faults = slowed.faults
        assert len(faults.injected) == 1
        # A delay is absorbed, not recovered from.
        assert faults.redispatches == 0
        assert faults.quarantined == []


class TestDrop:
    def test_dropped_dispatch_is_resent(self):
        prog, table, args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        edge = topo.farms[0].workers[1].dispatch_edge
        plan = FaultPlan([FaultSpec(kind="drop", edge=edge, occurrence=0)])
        report = get_backend("simulate").run(
            mapping, table, program=prog, costs=FAST_TEST, args=args,
            fault_plan=plan,
        )
        assert report.one_shot_results == reference("df").one_shot_results
        faults = report.faults
        assert len(faults.injected) == 1
        assert faults.redispatches == 1
        # The worker is healthy; only the message was lost.
        assert faults.quarantined == []


class TestGrayFailureKinds:
    def test_limplock_stretches_service_not_results(self):
        clean = run_simulated("df")
        plan = FaultPlan([FaultSpec(
            kind="limplock", process="df0.worker1", occurrence=0,
            factor=5.0,
        )])
        limped = run_simulated("df", plan)
        assert limped.one_shot_results == clean.one_shot_results
        # The latch persists: every firing after the occurrence is 5x,
        # so the virtual makespan stretches well past one delay's worth.
        assert limped.makespan > clean.makespan * 1.5
        faults = limped.faults
        assert len(faults.injected) == 1
        assert "slowdown latched" in faults.injected[0].note
        # Limping is a third state: detected and demoted, never
        # quarantined (the worker is slow, not dead).
        assert any("df0.worker1" in tag for tag in faults.limping)
        assert faults.quarantined == []

    def test_partial_partition_drops_a_window(self):
        _prog, _table, _args, mapping = make_demo("df")
        topo = FaultTopology.from_mapping(mapping)
        edge = topo.farms[0].workers[1].dispatch_edge
        plan = FaultPlan([FaultSpec(
            kind="partial-partition", edge=edge, occurrence=0, count=2,
        )])
        report = run_simulated("df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        faults = report.faults
        assert len(faults.injected) >= 1
        assert faults.injected[0].kind == "partial-partition"
        assert faults.redispatches >= 1
        # One direction of a link stalled; the worker itself is healthy.
        assert faults.quarantined == []

    def test_credit_starvation_quarantines_the_consumer(self):
        plan = FaultPlan([FaultSpec(
            kind="credit-starvation", process="df0.worker2", occurrence=0,
        )])
        report = run_simulated("df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        faults = report.faults
        assert len(faults.injected) == 1
        assert faults.redispatches >= 1
        # A consumer that stops draining is indistinguishable from a
        # dead one to the rest of the farm: quarantine is correct.
        assert any("df0.worker2" in tag for tag in faults.quarantined)


class TestReporting:
    def test_trace_instants(self):
        plan = FaultPlan([FaultSpec(
            kind="crash", process="df0.worker1", occurrence=0,
        )])
        report = run_simulated("df", plan, record_trace=True)
        names = {i.name for i in report.trace.instants}
        assert "fault:injected" in names
        assert "fault:detected" in names
        assert "fault:redispatch" in names
        json_doc = report.trace.to_chrome_json()
        assert '"ph": "i"' in json_doc

    def test_summary_mentions_faults(self):
        plan = FaultPlan([FaultSpec(
            kind="crash", process="df0.worker1", occurrence=0,
        )])
        report = run_simulated("df", plan)
        assert "injected" in report.summary()

    def test_no_plan_no_fault_report(self):
        report = run_simulated("df")
        assert report.faults is None or not report.faults

    def test_unmatched_fault_never_fires(self):
        plan = FaultPlan([FaultSpec(
            kind="crash", process="no.such.worker", occurrence=0,
        )])
        report = run_simulated("df", plan)
        assert report.one_shot_results == reference("df").one_shot_results
        assert report.faults.injected == []
