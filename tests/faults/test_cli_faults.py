"""CLI surface of the faults layer: --faults and the demo subcommand."""

import json
import sys

import pytest

from repro.cli import main

SPEC = """
let n = 3;;
let main xs = df n square add 0 xs;;
"""

TABLE_MODULE = '''
from repro.core import FunctionTable


def square(x):
    return x * x


def add(a, b):
    return a + b


TABLE = FunctionTable()
TABLE.register("square", ins=["int"], outs=["int"], cost=100.0)(square)
TABLE.register("add", ins=["int", "int"], outs=["int"], cost=10.0)(add)
'''

PLAN = {
    "version": 1,
    "events": [
        {"kind": "crash", "process": "df0.worker1", "occurrence": 0},
    ],
}


@pytest.fixture()
def workspace(tmp_path, monkeypatch):
    (tmp_path / "spec.ml").write_text(SPEC)
    (tmp_path / "fault_functions.py").write_text(TABLE_MODULE)
    (tmp_path / "plan.json").write_text(json.dumps(PLAN))
    monkeypatch.chdir(tmp_path)
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop("fault_functions", None)
    yield tmp_path
    sys.modules.pop("fault_functions", None)


class TestRunWithFaults:
    def test_run_threads_with_faults(self, workspace, capsys):
        assert main([
            "run", "spec.ml", "--functions", "fault_functions:TABLE",
            "--arch", "ring:3", "--arg", "[1, 2, 3, 4]",
            "--faults", "plan.json", "--fault-timeout", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults: 1 injected" in out
        assert "re-dispatch" in out
        assert "result[0] = 30" in out  # 1 + 4 + 9 + 16

    def test_simulate_with_faults_and_trace(self, workspace, capsys):
        assert main([
            "simulate", "spec.ml", "--functions", "fault_functions:TABLE",
            "--arch", "ring:3", "--arg", "[1, 2, 3]",
            "--faults", "plan.json", "--trace-out", "trace.json",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults: 1 injected" in out
        doc = json.loads((workspace / "trace.json").read_text())
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert any(e["name"] == "fault:redispatch" for e in instants)

    def test_missing_plan_file(self, workspace):
        with pytest.raises(SystemExit, match="cannot load fault plan"):
            main([
                "run", "spec.ml", "--functions", "fault_functions:TABLE",
                "--arch", "ring:3", "--arg", "[1]",
                "--faults", "ghost.json",
            ])

    def test_malformed_plan_file(self, workspace):
        (workspace / "bad.json").write_text('{"events": "all of them"}')
        with pytest.raises(SystemExit, match="cannot load fault plan"):
            main([
                "run", "spec.ml", "--functions", "fault_functions:TABLE",
                "--arch", "ring:3", "--arg", "[1]",
                "--faults", "bad.json",
            ])


class TestFaultsDemo:
    def test_demo_on_simulate(self, capsys, tmp_path):
        saved = tmp_path / "demo_plan.json"
        assert main([
            "faults", "--skeleton", "df", "--backend", "simulate",
            "--save-plan", str(saved),
        ]) == 0
        out = capsys.readouterr().out
        assert "recovered : yes" in out
        assert "crash" in out
        plan = json.loads(saved.read_text())
        assert plan["events"][0]["kind"] == "crash"

    def test_demo_replays_saved_plan(self, capsys, tmp_path):
        path = tmp_path / "replay.json"
        path.write_text(json.dumps(PLAN))
        assert main([
            "faults", "--skeleton", "df", "--backend", "simulate",
            "--plan", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "crash on df0.worker1" in out
        assert "recovered : yes" in out

    def test_demo_on_threads(self, capsys):
        assert main([
            "faults", "--skeleton", "scm", "--backend", "threads",
        ]) == 0
        out = capsys.readouterr().out
        assert "recovered : yes" in out
        assert "quarantined" in out

    def test_demo_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "faults" in capsys.readouterr().out
