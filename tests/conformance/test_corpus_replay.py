"""Deterministic replay of the committed reproducer corpus.

Every entry in ``tests/conformance/corpus/`` — seed cases and any
shrunk reproducer a past fuzz run captured — must conform *now*.  This
is the regression leg: once a bug's minimal case lands in the corpus,
this test keeps it fixed forever.
"""

import os

import pytest

from repro.conformance import run_case
from repro.conformance.corpus import load_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 5, "the committed seed corpus went missing"


@pytest.mark.parametrize(
    "path,spec,recorded",
    ENTRIES,
    ids=[os.path.basename(p) for p, _s, _r in ENTRIES],
)
def test_corpus_entry_conforms(path, spec, recorded):
    failure = run_case(spec, ["simulate", "threads"])
    assert failure is None, (
        f"{os.path.basename(path)} regressed: {failure.describe()}\n"
        f"originally captured as: {recorded}"
    )


def test_corpus_covers_faults_and_streams():
    """The seed entries must keep the replay leg representative."""
    specs = [spec for _p, spec, _r in ENTRIES]
    assert any(s.faults for s in specs)
    assert any(s.kind == "stream" for s in specs)
    assert any(
        any(e["kind"] == "crash" for e in s.faults) for s in specs
    )
