"""Tests for the differential oracle, shrinker, and campaign runner.

The centrepiece is the mutation smoke-check: deliberately break the
simulator's scm merge rule and demand the harness (a) catches it,
(b) shrinks it, and (c) writes a replayable reproducer to the corpus.
"""

import json

import pytest

import repro.machine.executive as executive_mod
from repro.conformance import (
    CaseFailure,
    CaseSpec,
    generate_case,
    run_case,
    run_conformance,
    shrink_case,
)
from repro.conformance.corpus import (
    case_fingerprint,
    load_corpus,
    save_reproducer,
)
from repro.conformance.oracle import fault_plan_of


class TestOracle:
    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    def test_generated_cases_conform_on_simulate(self, seed):
        assert run_case(generate_case(seed), ["simulate"]) is None

    def test_faulted_cases_conform_on_simulate(self):
        checked = 0
        for seed in range(40):
            spec = generate_case(seed, allow_faults=True)
            if not spec.faults:
                continue
            checked += 1
            assert run_case(spec, ["simulate"]) is None, spec.to_dict()
        assert checked >= 3

    def test_build_failure_is_reported_not_raised(self):
        broken = CaseSpec(seed=0, kind="oneshot", arch=("ring", 2),
                          input=[1], iterations=0,
                          stages=[{"op": "map", "fn": "inc"}])
        failure = run_case(broken, ["simulate"])
        assert failure is not None and failure.phase == "build"

    def test_fault_plan_materialises(self):
        spec = generate_case(12, allow_faults=True)
        assert spec.faults
        plan = fault_plan_of(spec)
        assert len(plan) == len(spec.faults)
        assert fault_plan_of(generate_case(7)) is None


def _broken_merge(self, pid, inputs):
    """Mutated scm merge rule: silently lose the last piece."""
    degree = self.graph[pid].params["degree"]
    trimmed = dict(inputs)
    trimmed[degree] = executive_mod._NO_PIECE
    return _ORIG_MERGE(self, pid, trimmed)


_ORIG_MERGE = executive_mod.Executive._fire_merge


class TestMutationSmokeCheck:
    """Acceptance: a broken skeleton rule cannot survive the harness."""

    def test_broken_merge_is_caught_shrunk_and_archived(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            executive_mod.Executive, "_fire_merge", _broken_merge
        )
        corpus = tmp_path / "corpus"
        report = run_conformance(
            backends=["simulate"], cases=40, seed=0,
            corpus_dir=str(corpus), max_failures=1,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.phase in ("differential", "invariant")
        assert failure.backend == "simulate"
        # The reproducer landed in the corpus...
        assert len(report.reproducers) == 1
        entries = load_corpus(str(corpus))
        assert len(entries) == 1
        path, spec, recorded = entries[0]
        assert recorded["phase"] == failure.phase
        # ... shrunk (a minimal scm repro is a single stage) ...
        assert spec.skeleton_stage_count() >= 1
        assert any(s["op"] == "scm" for s in spec.stages)
        assert len(spec.stages) <= 2
        # ... and it still reproduces under the mutation:
        assert run_case(spec, ["simulate"]) is not None

        # With the mutation reverted the reproducer passes again — the
        # corpus entry has become a regression test.
        monkeypatch.setattr(
            executive_mod.Executive, "_fire_merge", _ORIG_MERGE
        )
        assert run_case(spec, ["simulate"]) is None


class TestShrinker:
    def test_shrinks_toward_empty_while_preserving_predicate(self):
        spec = generate_case(63, allow_faults=True)  # scm+df chain, 2 faults
        # Predicate: "any case containing an scm stage fails".
        shrunk = shrink_case(
            spec, lambda c: any(s["op"] == "scm" for s in c.stages)
        )
        assert any(s["op"] == "scm" for s in shrunk.stages)
        assert shrunk.size() < spec.size()
        assert len(shrunk.stages) == 1
        assert shrunk.faults == []

    def test_fault_dependent_failure_keeps_a_fault(self):
        spec = None
        for seed in range(200):
            cand = generate_case(seed, allow_faults=True)
            if any(e["kind"] == "crash" for e in cand.faults):
                spec = cand
                break
        assert spec is not None
        shrunk = shrink_case(
            spec, lambda c: any(e["kind"] == "crash" for e in c.faults)
        )
        crashes = [e for e in shrunk.faults if e["kind"] == "crash"]
        assert len(crashes) == 1
        # A crash repro must keep a survivor worker to hand off to.
        from repro.conformance.generator import build_case
        from repro.pnt import expand_program

        built = build_case(shrunk)
        graph = expand_program(built.program, built.table)
        pid = crashes[0]["process"]
        assert pid in graph
        sid = graph[pid].skeleton
        workers = [p for p in graph.skeleton_processes(sid)
                   if p.kind == "worker"]
        assert len(workers) >= 2

    def test_budget_bounds_probes(self):
        spec = generate_case(63, allow_faults=True)
        probes = []

        def predicate(c):
            probes.append(1)
            return True

        shrink_case(spec, predicate, budget=10)
        assert len(probes) <= 10


class TestCorpus:
    def test_save_and_load_roundtrip(self, tmp_path):
        spec = generate_case(5)
        failure = CaseFailure(spec, "differential", "threads", "diverged")
        path = save_reproducer(spec, failure, str(tmp_path), note="unit")
        entries = load_corpus(str(tmp_path))
        assert len(entries) == 1
        loaded_path, loaded, recorded = entries[0]
        assert loaded_path == path
        assert loaded.to_dict() == spec.to_dict()
        assert recorded == {"phase": "differential", "backend": "threads",
                            "detail": "diverged"}
        with open(path) as fh:
            assert json.load(fh)["note"] == "unit"

    def test_fingerprint_is_content_addressed(self):
        a, b = generate_case(5), generate_case(6)
        assert case_fingerprint(a) == case_fingerprint(a)
        assert case_fingerprint(a) != case_fingerprint(b)

    def test_missing_corpus_dir_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []


class TestRunner:
    def test_green_campaign(self, tmp_path):
        report = run_conformance(
            backends=["simulate"], cases=6, seed=42,
            corpus_dir=str(tmp_path),
        )
        assert report.ok
        assert report.cases_run == 6
        assert report.reproducers == []
        assert "all cases conform" in report.summary()

    def test_unavailable_backends_are_skipped(self):
        report = run_conformance(backends=[], cases=1, seed=0)
        assert report.backends == []
        assert report.cases_run == 0
