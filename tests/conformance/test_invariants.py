"""Tests for the trace invariant checker (the second oracle).

Strategy: take one real, clean simulator run (which must pass every
check), then tamper with copies of its report — each tampering must
trip exactly the invariant it violates.
"""

import copy
from types import SimpleNamespace

import pytest

from repro.backends import get_backend
from repro.conformance import check_trace_invariants, generate_case
from repro.conformance.functions import make_counting_table, reset_stream
from repro.conformance.generator import build_case
from repro.conformance.invariants import check_fault_accounting
from repro.conformance.oracle import build_mapping
from repro.faults.report import FaultReport
from repro.machine import FAST_TEST
from repro.machine.trace import Span


@pytest.fixture(scope="module")
def clean_run():
    """One simulated farm case plus its emulation call counts."""
    spec = generate_case(13)  # oneshot: df(2) over a 3-element list
    built = build_case(spec)
    mapping = build_mapping(built)
    counting, counts = make_counting_table(built.table)
    reset_stream()
    get_backend("emulate").run(
        None, counting, program=built.program,
        args=built.args, max_iterations=built.max_iterations,
    )
    reset_stream()
    report = get_backend("simulate").run(
        mapping, built.table, program=built.program, costs=FAST_TEST,
        args=built.args, max_iterations=built.max_iterations,
        record_trace=True,
    )
    return report, mapping, dict(counts)


class TestCleanRun:
    def test_clean_run_has_no_violations(self, clean_run):
        report, mapping, counts = clean_run
        assert check_trace_invariants(
            report, mapping, counts, strict_serial=True
        ) == []

    def test_trace_actually_has_worker_spans(self, clean_run):
        """Guard against the checker vacuously passing on empty traces."""
        report, _mapping, counts = clean_run
        workers = [s for s in report.trace.compute if ".worker" in s.owner]
        assert workers
        assert any(v > 0 for v in counts.values())


class TestTampering:
    def test_activity_after_stop(self, clean_run):
        report, mapping, counts = clean_run
        bad = copy.deepcopy(report)
        late = bad.trace.compute[0]
        bad.trace.compute.append(
            Span(late.resource, "df0.worker0",
                 bad.makespan + 50.0, bad.makespan + 90.0)
        )
        violations = check_trace_invariants(bad, mapping, None)
        assert any("after Stop" in v for v in violations)

    def test_lost_packet_breaks_conservation(self, clean_run):
        report, mapping, counts = clean_run
        bad = copy.deepcopy(report)
        idx = next(i for i, s in enumerate(bad.trace.compute)
                   if ".worker" in s.owner)
        del bad.trace.compute[idx]
        violations = check_trace_invariants(bad, mapping, counts)
        assert any("packet conservation" in v for v in violations)

    def test_duplicated_packet_breaks_conservation(self, clean_run):
        report, mapping, counts = clean_run
        bad = copy.deepcopy(report)
        span = next(s for s in bad.trace.compute if ".worker" in s.owner)
        bad.trace.compute.append(span)
        violations = check_trace_invariants(bad, mapping, counts)
        assert any("packet conservation" in v for v in violations)

    def test_overlap_on_one_processor(self, clean_run):
        report, mapping, counts = clean_run
        bad = copy.deepcopy(report)
        span = next(s for s in bad.trace.compute if ".worker" in s.owner)
        bad.trace.compute.append(
            Span(span.resource, "intruder", span.start + 1e-3, span.end)
        )
        violations = check_trace_invariants(
            bad, mapping, None, strict_serial=True
        )
        assert any("serial execution" in v for v in violations)
        # ... but real backends are allowed to overlap:
        assert check_trace_invariants(bad, mapping, None) == []


class TestFaultAccounting:
    def _report_with(self, records):
        # check_fault_accounting only reads ``.faults``
        faults = FaultReport()
        for record in records:
            faults.add(*record)
        return SimpleNamespace(faults=faults)

    def test_undetected_crash_flagged(self):
        report = self._report_with(
            [("injected", "crash", "df0.worker1", 100.0)]
        )
        violations = check_fault_accounting(report)
        assert any("never detected" in v for v in violations)

    def test_detected_and_redispatched_is_clean(self):
        report = self._report_with([
            ("injected", "crash", "df0.worker1", 100.0),
            ("detected", "crash", "df0.worker1", 600.0),
            ("redispatch", "crash", "df0.worker1", 650.0),
        ])
        assert check_fault_accounting(report) == []

    def test_detected_but_unresolved_flagged(self):
        report = self._report_with([
            ("injected", "crash", "df0.worker1", 100.0),
            ("detected", "crash", "df0.worker1", 600.0),
        ])
        violations = check_fault_accounting(report)
        assert any("neither re-dispatched" in v for v in violations)

    def test_detection_before_injection_not_credited(self):
        report = self._report_with([
            ("injected", "crash", "df0.worker1", 500.0),
            ("detected", "crash", "df0.worker1", 100.0),
        ])
        violations = check_fault_accounting(report)
        assert any("never detected" in v for v in violations)

    def test_delay_needs_no_recovery(self):
        report = self._report_with(
            [("injected", "delay", "df0.worker1", 100.0)]
        )
        assert check_fault_accounting(report) == []

    def test_no_fault_report_is_clean(self):
        assert check_fault_accounting(SimpleNamespace(faults=None)) == []
