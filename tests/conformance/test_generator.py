"""Tests for the conformance case generator (grammar + elaboration)."""

import pytest

from repro.conformance import CaseSpec, build_case, generate_case
from repro.conformance.generator import (
    SKELETON_OPS,
    STAGE_TAGS,
    chain_tags,
    make_arch,
)
from repro.pnt import expand_program

SEEDS = range(120)


class TestGeneration:
    def test_deterministic(self):
        for seed in (0, 7, 99):
            a = generate_case(seed, allow_faults=True)
            b = generate_case(seed, allow_faults=True)
            assert a.to_dict() == b.to_dict()

    def test_every_case_is_well_typed(self):
        for seed in SEEDS:
            spec = generate_case(seed)
            assert chain_tags(spec) is not None, spec.to_dict()

    def test_every_case_has_a_skeleton(self):
        for seed in SEEDS:
            assert generate_case(seed).skeleton_stage_count() >= 1

    def test_stream_cases_bound_iterations(self):
        streams = [s for s in map(generate_case, SEEDS) if s.kind == "stream"]
        assert streams, "no stream case in the sample"
        assert all(1 <= s.iterations <= 3 for s in streams)

    def test_covers_all_skeleton_ops(self):
        ops = {
            s["op"]
            for seed in SEEDS
            for s in generate_case(seed).stages
        }
        assert set(SKELETON_OPS) <= ops
        assert "tf" in ops and "scm" in ops

    def test_json_roundtrip(self):
        for seed in (3, 12, 63):
            spec = generate_case(seed, allow_faults=True)
            again = CaseSpec.from_dict(spec.to_dict())
            assert again.to_dict() == spec.to_dict()

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            CaseSpec.from_dict({"version": 99, "kind": "oneshot",
                                "arch": ["ring", 1], "stages": []})


class TestElaboration:
    def test_every_case_builds_and_expands(self):
        for seed in SEEDS:
            built = build_case(generate_case(seed))
            graph = expand_program(built.program, built.table)
            graph.validate()
            assert len(built.farm_instances()) >= 1

    def test_stream_case_builds_stream_program(self):
        spec = next(
            s for s in map(generate_case, SEEDS) if s.kind == "stream"
        )
        built = build_case(spec)
        assert built.program.stream is not None
        assert built.max_iterations == spec.iterations
        assert built.args is None

    def test_oneshot_case_carries_input(self):
        spec = next(
            s for s in map(generate_case, SEEDS) if s.kind == "oneshot"
        )
        built = build_case(spec)
        assert built.program.stream is None
        assert built.args == (list(spec.input),)

    def test_ill_typed_spec_rejected(self):
        spec = CaseSpec(seed=0, kind="oneshot", arch=("ring", 1),
                        input=[1], iterations=0,
                        stages=[{"op": "map", "fn": "inc"}])  # map needs int
        with pytest.raises(ValueError, match="ill-typed"):
            build_case(spec)

    def test_arch_variety(self):
        arches = {generate_case(seed).arch for seed in SEEDS}
        assert len({kind for kind, _ in arches}) == 3
        assert any(n == 1 for _, n in arches)
        for spec in map(generate_case, range(10)):
            assert len(make_arch(spec).processors) == spec.arch[1]


class TestFaultGeneration:
    def test_fault_targets_exist_in_expanded_graph(self):
        """Generated fault pids must name real workers of real farms."""
        sampled = 0
        for seed in range(300):
            spec = generate_case(seed, allow_faults=True)
            if not spec.faults:
                continue
            sampled += 1
            built = build_case(spec)
            graph = expand_program(built.program, built.table)
            for event in spec.faults:
                pid = event["process"]
                assert pid in graph, f"seed {seed}: {pid} not in graph"
                assert graph[pid].kind == "worker"
        assert sampled >= 20

    def test_crashes_only_on_farms_with_survivors(self):
        for seed in range(300):
            spec = generate_case(seed, allow_faults=True)
            crashes = [e for e in spec.faults if e["kind"] == "crash"]
            if not crashes:
                continue
            built = build_case(spec)
            graph = expand_program(built.program, built.table)
            for event in crashes:
                sid = graph[event["process"]].skeleton
                workers = [
                    p for p in graph.skeleton_processes(sid)
                    if p.kind == "worker"
                ]
                assert len(workers) >= 2, f"seed {seed}: crash w/o survivor"

    def test_streams_get_no_faults(self):
        for seed in range(300):
            spec = generate_case(seed, allow_faults=True)
            if spec.kind == "stream":
                assert spec.faults == []

    def test_stage_ops_all_have_tags(self):
        for op in SKELETON_OPS:
            assert op in STAGE_TAGS
