"""Tests for the ``repro check`` CLI entry point."""

import json

import pytest

from repro.cli import main


class TestCheckCommand:
    def test_green_run_exits_zero(self, capsys):
        rc = main(["check", "--cases", "4", "--seed", "1",
                   "--backends", "simulate"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 fuzz case(s)" in out
        assert "all cases conform" in out

    def test_faulted_run(self, capsys):
        rc = main(["check", "--cases", "6", "--seed", "2",
                   "--backends", "simulate", "--faults"])
        assert rc == 0

    def test_corpus_replay_and_write(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        entry = {
            "version": 1,
            "spec": {"version": 1, "seed": 1, "kind": "oneshot",
                     "arch": ["ring", 2], "input": [1, 2, 3],
                     "iterations": 0,
                     "stages": [{"op": "df", "comp": "inc", "acc": "add",
                                 "degree": 2}]},
            "failure": None,
        }
        (corpus / "seed_unit.json").write_text(json.dumps(entry))
        rc = main(["check", "--cases", "2", "--seed", "3",
                   "--backends", "simulate", "--corpus", str(corpus)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 entr(ies) replayed" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit, match="transputer"):
            main(["check", "--backends", "transputer,simulate"])

    def test_empty_backends_rejected(self):
        with pytest.raises(SystemExit, match="no backend"):
            main(["check", "--backends", " , "])

    def test_failure_exits_nonzero(self, tmp_path, monkeypatch):
        import repro.machine.executive as executive_mod

        orig = executive_mod.Executive._fire_merge

        def broken(self, pid, inputs):
            degree = self.graph[pid].params["degree"]
            trimmed = dict(inputs)
            trimmed[degree] = executive_mod._NO_PIECE
            return orig(self, pid, trimmed)

        monkeypatch.setattr(
            executive_mod.Executive, "_fire_merge", broken
        )
        rc = main(["check", "--cases", "40", "--seed", "0",
                   "--backends", "simulate", "--no-shrink",
                   "--corpus", str(tmp_path)])
        assert rc == 1
        assert list(tmp_path.glob("shrunk_*.json"))

    def test_check_listed_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "check" in capsys.readouterr().out
