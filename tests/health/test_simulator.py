"""The limplock chaos proof, reproduced in virtual time.

The discrete-event simulator models the same defense — persistent
service-time stretch, health-demoted dispatch, virtual hedged
re-dispatch with first-result-wins delivery — so the qualitative
verdict of the real-backend chaos proof must reproduce deterministically
in virtual microseconds: defended per-iteration p99 within 3x the
no-fault baseline, undefended beyond it, outputs bit-identical to the
defense-free run in every arm.
"""

import math

from repro.core import FunctionTable, ProgramBuilder
from repro.core.semantics import EndOfStream
from repro.faults import FaultPlan, FaultPolicy, FaultSpec
from repro.health import HealthPolicy
from repro.machine import FAST_TEST
from repro.machine.executive import simulate
from repro.pnt import expand_program
from repro.syndex import distribute, ring

N_FRAMES = 40
DEGREE = 8
PACKETS = 16


def make_stream_farm():
    """An 8-worker df farm fed by a stream: 16 packets x 1000 us/frame."""
    table = FunctionTable()
    counter = {"i": 0}

    @table.register("read", ins=["unit"], outs=["int list"], cost=20)
    def read(_src):
        i = counter["i"]
        counter["i"] += 1
        if i >= N_FRAMES:
            raise EndOfStream
        return list(range(i, i + PACKETS))

    table.register("square", ins=["int"], outs=["int"],
                   cost=1000.0)(lambda x: x * x)
    table.register("add", ins=["int", "int"], outs=["int"], cost=5.0,
                   properties=["commutative", "associative"])(
        lambda a, b: a + b)
    table.register("step", ins=["int", "int"], outs=["int", "int"],
                   cost=5)(lambda s, t: (s + t, t))
    table.register("emit", ins=["int"], cost=5)(lambda y: None)
    b = ProgramBuilder("stream_farm", table)
    state, item = b.params("state", "item")
    total = b.df(DEGREE, comp="square", acc="add", z=b.const(0), xs=item)
    s2, y = b.apply("step", state, total)
    prog = b.stream(s2, y, inp="read", out="emit", init_value=0, source=None)
    mapping = distribute(expand_program(prog, table), ring(DEGREE + 1))
    return mapping, table, counter


LIMP_PLAN = [dict(kind="limplock", process="df0.worker3", occurrence=0,
                  factor=10.0)]

#: Iterations excluded from the percentile: the hedge clock needs its
#: sample floor and the detector ``min_samples`` completions before the
#: defense can engage, so the first frames ride at limped latency by
#: design (the cold-start cost of an adaptive threshold).
WARMUP_ITERATIONS = 8


def p99(report, warmup=WARMUP_ITERATIONS):
    """Nearest-rank p99 of post-warm-up per-iteration latencies."""
    ordered = sorted(r.latency for r in report.iterations[warmup:])
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(0.99 * len(ordered)) - 1))
    return ordered[rank]


def run(counter, mapping, table, **kwargs):
    counter["i"] = 0  # fresh stream per arm
    return simulate(mapping, table, FAST_TEST, **kwargs)


class TestVirtualLimplock:
    def test_defended_holds_p99_in_virtual_time(self):
        mapping, table, counter = make_stream_farm()
        plan = FaultPlan([FaultSpec(**LIMP_PLAN[0])])

        baseline = run(counter, mapping, table)
        defended = run(counter, mapping, table, fault_plan=plan)
        undefended = run(
            counter, mapping, table, fault_plan=plan,
            fault_policy=FaultPolicy(health=HealthPolicy(enabled=False)),
        )

        # Hedging and demotion never change results: every arm delivers
        # the same output stream and final state.
        assert baseline.outputs == defended.outputs == undefended.outputs
        assert (baseline.final_state == defended.final_state
                == undefended.final_state)

        base = p99(baseline)
        held = p99(defended)
        lost = p99(undefended)
        assert held <= 3.0 * base, (held, base)
        assert lost > 3.0 * base, (lost, base)

        faults = defended.faults
        assert faults.hedges > 0
        assert faults.hedge_wins > 0
        assert any("df0.worker3" in tag for tag in faults.limping)
        # The undefended arm still *injects* the limplock, it just does
        # not defend against it.
        assert len(undefended.faults.injected) == 1
        assert undefended.faults.hedges == 0

    def test_virtual_verdict_is_deterministic(self):
        # Same plan, same virtual clock: latencies reproduce exactly,
        # which is what makes the simulator a debugging proxy for the
        # real chaos runs.
        mapping, table, counter = make_stream_farm()
        plan = FaultPlan([FaultSpec(**LIMP_PLAN[0])])
        first = run(counter, mapping, table, fault_plan=plan)
        second = run(counter, mapping, table, fault_plan=plan)
        assert ([r.latency for r in first.iterations]
                == [r.latency for r in second.iterations])
        assert first.makespan == second.makespan
        assert first.faults.hedges == second.faults.hedges

    def test_no_hedge_policy_disables_hedging_only(self):
        mapping, table, counter = make_stream_farm()
        plan = FaultPlan([FaultSpec(**LIMP_PLAN[0])])
        report = run(
            counter, mapping, table, fault_plan=plan,
            fault_policy=FaultPolicy(
                health=HealthPolicy(hedge_enabled=False)),
        )
        assert report.faults.hedges == 0
        # Scoring and demotion stay on: the worker is still flagged.
        assert any("df0.worker3" in tag for tag in report.faults.limping)
