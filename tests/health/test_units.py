"""Unit tests for the gray-failure defense primitives.

Covers the three pure pieces of :mod:`repro.health` in isolation: the
policy knobs and their validation, the EWMA/median limping detector
(:class:`FarmHealth`), and the adaptive hedge threshold
(:class:`HedgeClock`).
"""

import pytest

from repro.health import (
    HEALTHY,
    LIMPING,
    FarmHealth,
    HealthPolicy,
    HedgeClock,
    WorkerHealth,
)


class TestHealthPolicy:
    def test_defaults_are_valid(self):
        policy = HealthPolicy()
        assert policy.enabled and policy.hedge_enabled

    def test_ewma_alpha_bounds(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            HealthPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            HealthPolicy(ewma_alpha=1.5)
        HealthPolicy(ewma_alpha=1.0)  # the boundary itself is legal

    def test_hysteresis_must_not_oscillate(self):
        with pytest.raises(ValueError, match="hysteresis"):
            HealthPolicy(limp_factor=2.0, clear_factor=3.0)
        HealthPolicy(limp_factor=2.0, clear_factor=2.0)

    def test_limp_weight_bounds(self):
        with pytest.raises(ValueError, match="limp_weight"):
            HealthPolicy(limp_weight=0.0)
        with pytest.raises(ValueError, match="limp_weight"):
            HealthPolicy(limp_weight=1.2)

    def test_hedge_percentile_bounds(self):
        with pytest.raises(ValueError, match="hedge_percentile"):
            HealthPolicy(hedge_percentile=0.0)
        with pytest.raises(ValueError, match="hedge_percentile"):
            HealthPolicy(hedge_percentile=101.0)

    def test_keep_stride_is_inverse_weight(self):
        assert HealthPolicy(limp_weight=0.25).keep_stride() == 4
        assert HealthPolicy(limp_weight=1.0).keep_stride() == 1
        assert HealthPolicy(limp_weight=0.33).keep_stride() == 3


class TestWorkerHealth:
    def test_ewma_update(self):
        w = WorkerHealth(0, window=8)
        w.observe(1.0, alpha=0.5, now=0.0)
        assert w.score == 1.0  # first sample seeds the EWMA
        w.observe(3.0, alpha=0.5, now=1.0)
        assert w.score == pytest.approx(2.0)
        assert w.completed == 2
        assert w.last_done_at == 1.0

    def test_row_shape(self):
        w = WorkerHealth(2, window=4)
        assert w.to_row() == {
            "worker": 2, "state": HEALTHY, "reason": "",
            "score_ms": None, "completed": 0,
        }
        w.observe(0.002, alpha=0.3, now=0.0)
        assert w.to_row()["score_ms"] == 2.0


def feed(farm, services, rounds=4, start=0.0):
    """Feed ``rounds`` completions of ``services[i]`` to worker i."""
    now = start
    for _ in range(rounds):
        for i, service in enumerate(services):
            farm.observe(i, service, now)
            now += 0.001
    return now


class TestFarmHealthScoring:
    def test_outlier_is_flagged_limping(self):
        farm = FarmHealth(4, HealthPolicy())
        feed(farm, [0.01, 0.01, 0.01, 0.10])
        events = farm.evaluate()
        assert (3, LIMPING, "slow") in events
        assert farm.state(3) == LIMPING
        assert farm.limping() == {3}

    def test_uniformly_slow_farm_flags_nobody(self):
        # The median rule is robust: everyone equally slow is a loaded
        # farm, not a limping worker.
        farm = FarmHealth(4, HealthPolicy())
        feed(farm, [0.1, 0.1, 0.1, 0.1])
        assert farm.evaluate() == []
        assert farm.limping() == set()

    def test_cold_start_is_protected(self):
        # Below min_samples no score is trusted, however bad it looks.
        policy = HealthPolicy(min_samples=3)
        farm = FarmHealth(4, policy)
        feed(farm, [0.01, 0.01, 0.01, 0.5], rounds=2)
        assert farm.evaluate() == []

    def test_hysteresis_restores_under_clear_factor(self):
        policy = HealthPolicy(limp_factor=3.0, clear_factor=2.0,
                              ewma_alpha=1.0)
        farm = FarmHealth(4, policy)
        feed(farm, [0.01, 0.01, 0.01, 0.1])
        farm.evaluate()
        assert farm.state(3) == LIMPING
        # Score back to just under 2x the median: restored.
        feed(farm, [0.01, 0.01, 0.01, 0.015])
        events = farm.evaluate()
        assert (3, "restored", "slow") in events
        assert farm.state(3) == HEALTHY

    def test_between_clear_and_limp_keeps_state(self):
        # Hysteresis: a score between clear_factor and limp_factor x
        # median neither flags a healthy worker nor restores a limping one.
        policy = HealthPolicy(limp_factor=3.0, clear_factor=2.0,
                              ewma_alpha=1.0)
        farm = FarmHealth(4, policy)
        feed(farm, [0.01, 0.01, 0.01, 0.025])
        assert farm.evaluate() == []
        assert farm.state(3) == HEALTHY

    def test_disabled_policy_never_flags(self):
        farm = FarmHealth(4, HealthPolicy(enabled=False))
        feed(farm, [0.01, 0.01, 0.01, 0.5])
        assert farm.evaluate() == []


class TestFarmHealthStuck:
    def test_mark_stuck_flags_without_a_score(self):
        farm = FarmHealth(3, HealthPolicy())
        event = farm.mark_stuck(1)
        assert event == (1, LIMPING, "stuck")
        assert farm.state(1) == LIMPING
        # Idempotent: already-limping workers report no new event.
        assert farm.mark_stuck(1) is None

    def test_completion_clears_stuck(self):
        farm = FarmHealth(3, HealthPolicy())
        farm.mark_stuck(1)
        event = farm.observe(1, 0.01, now=1.0)
        assert event == (1, "restored", "stuck")
        assert farm.state(1) == HEALTHY


class TestDispatchWeighting:
    def test_healthy_worker_keeps_everything(self):
        farm = FarmHealth(3, HealthPolicy())
        assert all(farm.keeps(0, seq) for seq in range(10))

    def test_limping_worker_keeps_a_trickle(self):
        farm = FarmHealth(3, HealthPolicy(limp_weight=0.25))
        farm.mark_stuck(2)
        kept = [farm.keeps(2, seq) for seq in range(8)]
        assert kept == [True, False, False, False, True, False, False, False]

    def test_pick_healthy_prefers_healthy(self):
        farm = FarmHealth(4, HealthPolicy())
        farm.mark_stuck(1)
        alive = [0, 1, 2, 3]
        picks = {farm.pick_healthy(seq, exclude=set(), alive=alive)
                 for seq in range(12)}
        assert picks == {0, 2, 3}

    def test_pick_healthy_falls_back_to_limping(self):
        # A limping worker still beats a dead one.
        farm = FarmHealth(2, HealthPolicy())
        farm.mark_stuck(0)
        farm.mark_stuck(1)
        assert farm.pick_healthy(0, exclude=set(), alive=[0, 1]) in (0, 1)

    def test_pick_healthy_honours_exclusions(self):
        farm = FarmHealth(2, HealthPolicy())
        assert farm.pick_healthy(0, exclude={0}, alive=[0, 1]) == 1
        assert farm.pick_healthy(0, exclude={0, 1}, alive=[0, 1]) is None


class TestHedgeClock:
    def test_warm_up_gate(self):
        clock = HedgeClock(HealthPolicy(hedge_min_samples=8))
        for _ in range(7):
            clock.record(0.01)
        assert clock.threshold_s() is None
        assert not clock.overdue(999.0)
        clock.record(0.01)
        assert clock.samples == 8
        assert clock.threshold_s() is not None

    def test_threshold_is_factor_times_percentile(self):
        policy = HealthPolicy(hedge_min_samples=8, hedge_factor=3.0,
                              hedge_percentile=95.0, hedge_floor_s=0.0001)
        clock = HedgeClock(policy)
        for _ in range(100):
            clock.record(0.01)
        assert clock.percentile() == pytest.approx(0.01)
        assert clock.threshold_s() == pytest.approx(0.03)
        assert clock.overdue(0.031)
        assert not clock.overdue(0.03)  # strictly greater

    def test_nearest_rank_percentile(self):
        policy = HealthPolicy(hedge_percentile=95.0)
        clock = HedgeClock(policy)
        for v in range(1, 101):  # 0.001 .. 0.100
            clock.record(v / 1000.0)
        assert clock.percentile() == pytest.approx(0.095)

    def test_absolute_floor_damps_noise(self):
        # Tiny observed services: the floor dominates the threshold.
        policy = HealthPolicy(hedge_floor_s=0.01, hedge_factor=3.0)
        clock = HedgeClock(policy)
        for _ in range(20):
            clock.record(0.0001)
        assert clock.threshold_s() == pytest.approx(0.01)

    def test_floor_override_for_virtual_time(self):
        # The simulator feeds virtual microseconds with floor=0.0; the
        # percentile rule must then apply undamped.
        policy = HealthPolicy(hedge_factor=3.0, hedge_floor_s=0.01)
        clock = HedgeClock(policy, floor=0.0)
        for _ in range(20):
            clock.record(500.0)  # virtual us, far above hedge_floor_s
        assert clock.threshold_s() == pytest.approx(1500.0)

    def test_disabled_hedging_never_trips(self):
        clock = HedgeClock(HealthPolicy(hedge_enabled=False))
        for _ in range(50):
            clock.record(0.01)
        assert clock.threshold_s() is None
        assert not clock.overdue(1e9)

    def test_negative_services_are_ignored(self):
        clock = HedgeClock(HealthPolicy())
        clock.record(-1.0)
        assert clock.samples == 0

    def test_window_is_bounded(self):
        policy = HealthPolicy(hedge_window=4, hedge_min_samples=1,
                              hedge_percentile=100.0, hedge_floor_s=0.0)
        clock = HedgeClock(policy)
        clock.record(99.0)  # evicted once 4 newer samples arrive
        for _ in range(4):
            clock.record(1.0)
        assert clock.percentile() == pytest.approx(1.0)

    def test_to_dict_counters(self):
        clock = HedgeClock(HealthPolicy(hedge_min_samples=1))
        clock.record(0.02)
        clock.issued += 1
        clock.won += 1
        doc = clock.to_dict()
        assert doc["samples"] == 1
        assert doc["issued"] == 1 and doc["won"] == 1 and doc["wasted"] == 0
        assert doc["threshold_ms"] == pytest.approx(60.0)
