"""HealthBoard staleness semantics, across OS-process boundaries.

The board is the supervisor's only liveness signal: a worker whose slot
is fresh is *alive* whatever else it fails to do.  These tests pin the
staleness boundaries (a never-started slot is fresh; staleness is a
strict inequality) and prove the cross-process story on both the
``fork`` and ``spawn`` start methods — a beat written in a child OS
process must be visible, and comparable, in the parent.

The second half drives the full BEAT-fresh/COUNT-flat path on the real
processes backend: a stalled worker keeps heartbeating but completes
nothing, so the supervisor must flag it *limping (stuck)* well before
the slow stall verdict retires it.
"""

import multiprocessing
import time

import pytest

from repro.backends import get_backend
from repro.faults import FaultPlan, FaultPolicy, FaultSpec
from repro.faults.demo import RECIPES, make_demo
from repro.faults.supervisor import HealthBoard
from repro.health import HealthPolicy
from repro.machine import FAST_TEST

START_METHODS = ["fork", "spawn"]


class TestStaleBoundaries:
    def test_never_started_slot_is_fresh(self):
        board = HealthBoard.local(3)
        # A slot still at 0.0 means the worker never ran: it cannot have
        # died, so it is fresh at any horizon.
        assert not board.stale(0, now=1e9, timeout=0.001)

    def test_exactly_at_timeout_is_fresh(self):
        # Synthetic timestamps that are exact binary fractions, so the
        # boundary arithmetic has no float rounding in it.
        board = HealthBoard([100.0])
        # Staleness is strict: now - last == timeout is still fresh.
        assert not board.stale(0, now=100.25, timeout=0.25)
        assert board.stale(0, now=100.3125, timeout=0.25)

    def test_beat_refreshes(self):
        board = HealthBoard.local(2)
        board.beat(1)
        stale_at = board.last(1) + 1.0
        assert board.stale(1, now=stale_at, timeout=0.5)
        board.beat(1)
        assert not board.stale(1, now=board.last(1) + 0.1, timeout=0.5)

    def test_slots_are_independent(self):
        board = HealthBoard.local(2)
        board.beat(0)
        now = board.last(0) + 1.0
        assert board.stale(0, now, timeout=0.5)
        assert not board.stale(1, now, timeout=0.5)  # never started


def _beat_in_child(slots, slot):
    """Child-process body: one heartbeat into the shared board."""
    HealthBoard(slots).beat(slot)


class TestCrossProcessBoard:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_child_beat_is_visible_in_parent(self, method):
        ctx = multiprocessing.get_context(method)
        slots = ctx.Array("d", 3, lock=False)
        board = HealthBoard(slots)
        before = time.monotonic()
        child = ctx.Process(target=_beat_in_child, args=(slots, 1))
        child.start()
        child.join(30.0)
        assert child.exitcode == 0
        # CLOCK_MONOTONIC is system-wide on Linux: the child's timestamp
        # is comparable in the parent, and recent.
        assert board.last(1) >= before
        assert not board.stale(1, time.monotonic(), timeout=30.0)
        assert board.last(0) == 0.0  # untouched slots stay never-started


#: Fast-detection policy: the stuck flag must fire long before the
#: stall verdict (packet_timeout_s x stall_factor) would.  Hedging is
#: off so the speculative duplicate cannot rescue the packet first —
#: this test isolates the BEAT-fresh/COUNT-flat detector.
STUCK_POLICY = FaultPolicy(
    packet_timeout_s=0.3,
    heartbeat_timeout_s=0.15,
    poll_s=0.002,
    health=HealthPolicy(stuck_after_s=0.06, hedge_enabled=False),
)


class TestBeatsButNeverProgresses:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_stalled_worker_is_flagged_stuck(self, method):
        """BEAT fresh, COUNT flat: stalled, heartbeating, flagged early."""
        prog, table, args, mapping = make_demo("df")
        plan = FaultPlan([FaultSpec(
            kind="stall", process="df0.worker1", occurrence=0,
        )])
        report = get_backend("processes").run(
            mapping, table, program=prog, costs=FAST_TEST, args=args,
            timeout=60.0, fault_plan=plan, fault_policy=STUCK_POLICY,
            start_method=method,
        )
        want = get_backend("emulate").run(
            None, table, program=prog, costs=FAST_TEST,
            args=RECIPES["df"]()[2],
        )
        assert report.one_shot_results == want.one_shot_results
        faults = report.faults
        stuck = [r for r in faults.records
                 if r.category == "limping" and r.kind == "stuck"]
        assert stuck, "a heartbeating stalled worker must be flagged stuck"
        assert stuck[0].target == "df0.worker1"
        # The gray-failure flag is the early warning: it must precede
        # the classic stall detection that finally retires the worker.
        detected = [r for r in faults.detected
                    if r.target == "df0.worker1"]
        assert detected
        assert stuck[0].time_us < min(r.time_us for r in detected)
