"""The limplock chaos proof, on real backends.

One of eight farm workers limps — every computation 12x slower, while
its heartbeat stays perfectly fresh — for an entire stream run.  The
acceptance criteria of the gray-failure defense layer:

* **mitigation** — the defended farm (health-weighted dispatch plus
  hedged re-dispatch) holds its steady-state p99 frame latency within
  3x the no-fault baseline, while the undefended farm degrades by a
  large multiple and starts shedding frames;
* **safety** — hedging and demotion never change results: frame
  conservation stays exact (the dedup happens at the envelope layer,
  below the ledger) and every delivered value matches the fault-free
  sequential oracle, duplicates or not.

Warm-up frames are excluded from the percentile: the detector needs
``min_samples`` completions per worker and the hedge clock needs its
sample floor before either can act, so the first frames ride at full
limped latency by design.
"""

import math

import pytest

from repro.health import HealthPolicy
from repro.net import ClusterHarness
from repro.realtime.soak import limplock_plan, make_soak, run_soak

#: The calibrated scenario: 8 workers, 8 pieces x 5 ms of busy-work per
#: frame, paced well under saturation so delivered latency measures the
#: farm's service time rather than queueing.
SOAK = dict(
    frames=60, nproc=8, pieces=8, work_us=5_000.0,
    deadline_ms=5_000.0, frame_period_ms=60.0, max_in_flight=3,
    chaos=False, timeout=120.0,
)
LIMP_WORKER = 3
LIMP_FACTOR = 12.0
WARMUP_FRAMES = 12


def the_plan():
    _prog, _table, mapping = make_soak(
        nproc=SOAK["nproc"], frames=SOAK["frames"],
        pieces=SOAK["pieces"], work_us=SOAK["work_us"],
    )
    return limplock_plan(mapping, worker=LIMP_WORKER, factor=LIMP_FACTOR)


def tail_p99_us(result, warmup=WARMUP_FRAMES):
    """Nearest-rank p99 over post-warm-up delivered frames."""
    lats = sorted(
        f.latency_us
        for f in result.report.realtime.ledger.delivered
        if f.frame >= warmup and f.latency_us is not None
    )
    assert lats, "no delivered frames past warm-up"
    rank = max(0, min(len(lats) - 1, math.ceil(0.99 * len(lats)) - 1))
    return lats[rank]


class TestProcessesLimplock:
    def test_defended_holds_p99_while_undefended_degrades(self):
        plan = the_plan()
        baseline = run_soak("processes", **SOAK)
        defended = run_soak("processes", plan=plan, **SOAK)
        undefended = run_soak(
            "processes", plan=plan, health=HealthPolicy(enabled=False),
            **SOAK,
        )
        # Safety first: conservation and value correctness hold in every
        # arm, defended or not (the verdict covers both).
        assert baseline.ok, baseline.violations
        assert defended.ok, defended.violations
        assert undefended.ok, undefended.violations

        base = tail_p99_us(baseline)
        held = tail_p99_us(defended)
        lost = tail_p99_us(undefended)
        # The acceptance bound: defense keeps the tail within 3x the
        # no-fault baseline; no defense loses by a large multiple
        # (calibrated headroom: ~1.6x vs ~20x on an idle container).
        assert held <= 3.0 * base, (
            f"defended p99 {held / 1e3:.1f} ms vs baseline "
            f"{base / 1e3:.1f} ms"
        )
        assert lost > 3.0 * base
        assert lost > 1.5 * held

        # The limping worker was actually flagged, and only in the
        # defended arm (the undefended arm has the whole layer off).
        assert any("df0.worker3" in tag
                   for tag in defended.report.faults.limping)
        assert not undefended.report.faults.limping

    def test_hedging_rescues_when_demotion_is_disabled(self):
        """limp_weight=1.0 turns demotion off: hedges must do the work.

        With the limping worker keeping every packet addressed to it,
        each of its in-flight packets goes overdue and earns a
        speculative duplicate — this is the arm that proves hedged
        re-dispatch itself (first result wins, loser discarded) and
        that the dedup keeps the ledger exact under dozens of
        duplicates.
        """
        result = run_soak(
            "processes", plan=the_plan(),
            health=HealthPolicy(limp_weight=1.0), **SOAK,
        )
        assert result.ok, result.violations
        faults = result.report.faults
        assert faults.hedges > 0
        assert faults.hedge_wins > 0
        ledger = result.report.realtime.ledger
        assert ledger.unaccounted() == 0


class TestTcpLimplock:
    @pytest.fixture(scope="class")
    def cluster(self):
        with ClusterHarness(size=4) as harness:
            yield harness

    def test_defended_holds_p99_on_tcp(self, cluster):
        plan = the_plan()
        baseline = run_soak("tcp", cluster=cluster, **SOAK)
        defended = run_soak("tcp", plan=plan, cluster=cluster, **SOAK)
        assert baseline.ok, baseline.violations
        assert defended.ok, defended.violations
        base = tail_p99_us(baseline)
        held = tail_p99_us(defended)
        assert held <= 3.0 * base, (
            f"defended p99 {held / 1e3:.1f} ms vs baseline "
            f"{base / 1e3:.1f} ms"
        )
        assert any("df0.worker3" in tag
                   for tag in defended.report.faults.limping)
        assert defended.report.realtime.ledger.unaccounted() == 0
