"""Tests for distribution, routing, analysis and deadlock checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionTable, ProgramBuilder
from repro.pnt import ProcessKind, expand_program
from repro.syndex import (
    chain,
    check_deadlock_freedom,
    comm_volume,
    distribute,
    estimate_latency,
    load_balance,
    now,
    ring,
    round_robin,
    route_mapping,
    star,
)


def farm_table():
    table = FunctionTable()
    table.register("feed", ins=["unit"], outs=["'a list"])(lambda _: [])
    table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
    table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
    table.register("step", ins=["'c", "'a list"], outs=["'c", "'d"])(
        lambda s, xs: (s, None)
    )
    table.register("emit", ins=["'d"])(lambda y: None)
    return table


def df_stream_program(degree):
    table = farm_table()
    b = ProgramBuilder("app", table)
    state, item = b.params("state", "item")
    total = b.df(degree, comp="comp", acc="acc", z=state, xs=item)
    s2, y = b.apply("step", total, item)
    prog = b.stream(s2, y, inp="feed", out="emit", init_value=0, source=None)
    return expand_program(prog, table), table


class TestDistribute:
    def test_every_process_placed(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(4))
        assert set(mapping.assignment) == set(graph.processes)

    def test_endpoints_pinned_to_io(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(4))
        io = mapping.arch.io_processor()
        assert mapping.processor_of("stream.input") == io
        assert mapping.processor_of("stream.output") == io
        assert mapping.processor_of("stream.mem") == io
        assert mapping.processor_of("df0.master") == io

    def test_routers_follow_workers(self):
        graph, _ = df_stream_program(6)
        mapping = distribute(graph, ring(4))
        for i in range(6):
            w = mapping.processor_of(f"df0.worker{i}")
            assert mapping.processor_of(f"df0.mw{i}") == w
            assert mapping.processor_of(f"df0.wm{i}") == w

    def test_workers_spread_across_processors(self):
        graph, _ = df_stream_program(8)
        mapping = distribute(graph, ring(8))
        placements = {
            mapping.processor_of(f"df0.worker{i}") for i in range(8)
        }
        assert len(placements) == 8

    def test_more_workers_than_processors(self):
        graph, _ = df_stream_program(8)
        mapping = distribute(graph, ring(3))
        mapping.validate()
        placements = {mapping.processor_of(f"df0.worker{i}") for i in range(8)}
        assert placements <= set(mapping.arch.processors)
        assert len(placements) == 3

    def test_deterministic(self):
        g1, _ = df_stream_program(5)
        g2, _ = df_stream_program(5)
        m1 = distribute(g1, ring(4))
        m2 = distribute(g2, ring(4))
        assert m1.assignment == m2.assignment

    def test_single_processor(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(1))
        assert set(mapping.assignment.values()) == {"p0"}
        mapping.validate()

    @given(st.integers(1, 10), st.sampled_from(["ring", "chain", "star", "now"]))
    @settings(max_examples=25, deadline=None)
    def test_valid_on_any_topology(self, nproc, topo):
        graph, _ = df_stream_program(4)
        arch = {"ring": ring, "chain": chain, "star": star, "now": now}[topo](
            max(nproc, 1)
        )
        mapping = distribute(graph, arch)
        mapping.validate()
        assert check_deadlock_freedom(mapping).ok

    def test_round_robin_baseline(self):
        graph, _ = df_stream_program(4)
        mapping = round_robin(graph, ring(4))
        mapping.validate()


class TestRouting:
    def test_local_edges_have_no_channels(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(1))
        routing = route_mapping(mapping)
        assert all(r.is_local for r in routing.routes)

    def test_remote_routes_connect_endpoints(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(4))
        routing = route_mapping(mapping)
        arch = mapping.arch
        for r in routing.remote():
            node = r.src_proc
            for cid in r.channels:
                channel = arch.channels[cid]
                assert node in channel.ends
                (node,) = [e for e in channel.ends if e != node]
            assert node == r.dst_proc

    def test_channel_load_counts(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(4))
        routing = route_mapping(mapping)
        load = routing.channel_load()
        assert sum(load.values()) == sum(r.hops for r in routing.remote())


class TestAnalysis:
    def test_latency_zero_for_zero_durations(self):
        graph, _ = df_stream_program(2)
        mapping = distribute(graph, ring(2))
        routing = route_mapping(mapping)
        est = estimate_latency(mapping, routing)
        assert est.latency >= 0.0

    def test_latency_scales_with_worker_cost(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(4))
        routing = route_mapping(mapping)
        cheap = {f"df0.worker{i}": 100.0 for i in range(4)}
        costly = {f"df0.worker{i}": 1000.0 for i in range(4)}
        e1 = estimate_latency(mapping, routing, cheap, items_hint=8)
        e2 = estimate_latency(mapping, routing, costly, items_hint=8)
        assert e2.latency > e1.latency

    def test_latency_decreases_with_degree(self):
        """Balanced-farm estimate: more workers, fewer rounds."""
        lat = {}
        for degree in (1, 4):
            graph, _ = df_stream_program(degree)
            mapping = distribute(graph, ring(max(degree, 1)))
            routing = route_mapping(mapping)
            durations = {
                f"df0.worker{i}": 1000.0 for i in range(degree)
            }
            lat[degree] = estimate_latency(
                mapping, routing, durations, items_hint=8
            ).latency
        assert lat[4] < lat[1]

    def test_comm_volume(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(4))
        routing = route_mapping(mapping)
        edge_bytes = {i: 100 for i in range(len(graph.edges))}
        vol = comm_volume(routing, edge_bytes)
        assert sum(vol.values()) == 100 * sum(r.hops for r in routing.remote())

    def test_load_balance(self):
        graph, _ = df_stream_program(8)
        mapping = distribute(graph, ring(8))
        loads, imbalance = load_balance(mapping)
        assert set(loads) == set(mapping.arch.processors)
        assert imbalance >= 1.0


class TestDeadlock:
    def test_clean_program_passes(self):
        graph, _ = df_stream_program(4)
        mapping = distribute(graph, ring(4))
        report = check_deadlock_freedom(mapping)
        assert report.ok
        assert "deadlock-free" in report.render()

    def test_detects_missing_feedback(self):
        graph, _ = df_stream_program(2)
        # Sabotage: drop the loop edge.
        graph.edges = [e for e in graph.edges if not e.loop]
        mapping = distribute(graph, ring(2))
        report = check_deadlock_freedom(mapping)
        assert not report.ok
        assert any("feedback" in v for v in report.violations)

    def test_detects_broken_farm(self):
        graph, _ = df_stream_program(3)
        # Sabotage: remove one worker's collect edge.
        victim = next(
            e for e in graph.edges
            if e.dst == "df0.master" and e.dst_port >= 2
        )
        graph.edges.remove(victim)
        mapping = distribute(graph, ring(3))
        report = check_deadlock_freedom(mapping)
        assert not report.ok
        assert any("collect" in v for v in report.violations)

    def test_report_renders_violations(self):
        graph, _ = df_stream_program(2)
        graph.edges = [e for e in graph.edges if not e.loop]
        mapping = distribute(graph, ring(2))
        text = check_deadlock_freedom(mapping).render()
        assert "DEADLOCK RISK" in text
