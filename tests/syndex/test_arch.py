"""Tests for architecture graphs and routing."""

import pytest

from repro.syndex import (
    Architecture,
    Channel,
    Processor,
    chain,
    fully_connected,
    mesh,
    now,
    ring,
    star,
)


class TestBuilders:
    def test_ring_structure(self):
        arch = ring(8)
        assert arch.n_processors == 8
        assert len(arch.channels) == 8
        assert set(arch.neighbours("p0")) == {"p1", "p7"}

    def test_ring_of_two(self):
        arch = ring(2)
        assert len(arch.channels) == 1
        assert arch.neighbours("p0") == ["p1"]

    def test_ring_of_one(self):
        arch = ring(1)
        assert arch.n_processors == 1
        assert arch.channels == {}

    def test_chain(self):
        arch = chain(4)
        assert len(arch.channels) == 3
        assert arch.neighbours("p1") == ["p0", "p2"]

    def test_star(self):
        arch = star(5)
        assert len(arch.channels) == 4
        assert len(arch.neighbours("p0")) == 4
        assert arch.neighbours("p3") == ["p0"]

    def test_mesh(self):
        arch = mesh(2, 3)
        assert arch.n_processors == 6
        # 2*(3-1) horizontal + 3*(2-1) vertical = 7
        assert len(arch.channels) == 7
        assert set(arch.neighbours("p0")) == {"p1", "p3"}

    def test_fully_connected(self):
        arch = fully_connected(5)
        assert len(arch.channels) == 10
        assert len(arch.neighbours("p2")) == 4

    def test_now_shared_bus(self):
        arch = now(4)
        assert len(arch.channels) == 1
        bus = arch.channels["bus"]
        assert bus.shared
        assert len(bus.ends) == 4
        assert set(arch.neighbours("p0")) == {"p1", "p2", "p3"}

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ring(0)
        with pytest.raises(ValueError):
            mesh(0, 3)

    def test_io_processor_default(self):
        assert ring(4).io_processor() == "p0"

    def test_all_connected(self):
        for arch in (ring(5), chain(3), star(4), mesh(2, 2),
                     fully_connected(3), now(3), ring(1)):
            assert arch.is_connected()


class TestRouting:
    def test_self_route_empty(self):
        assert ring(4).route("p2", "p2") == []

    def test_neighbour_route(self):
        arch = ring(4)
        assert len(arch.route("p0", "p1")) == 1

    def test_ring_takes_short_way_round(self):
        arch = ring(8)
        assert arch.hop_count("p0", "p7") == 1  # wraps around
        assert arch.hop_count("p0", "p4") == 4  # diameter

    def test_chain_route_is_linear(self):
        arch = chain(5)
        assert arch.hop_count("p0", "p4") == 4

    def test_star_routes_via_hub(self):
        arch = star(5)
        assert arch.hop_count("p1", "p2") == 2

    def test_now_single_hop_everywhere(self):
        arch = now(6)
        assert arch.hop_count("p1", "p5") == 1

    def test_route_deterministic(self):
        arch = mesh(3, 3)
        assert arch.route("p0", "p8") == arch.route("p0", "p8")

    def test_no_route_disconnected(self):
        arch = Architecture("disc")
        arch.add_processor(Processor("a"))
        arch.add_processor(Processor("b"))
        with pytest.raises(ValueError, match="no route"):
            arch.route("a", "b")

    def test_route_is_valid_channel_path(self):
        arch = mesh(3, 3)
        path = arch.route("p0", "p8")
        node = "p0"
        for cid in path:
            channel = arch.channels[cid]
            assert node in channel.ends
            (node,) = [e for e in channel.ends if e != node]
        assert node == "p8"


class TestChannel:
    def test_transfer_time(self):
        c = Channel("c", ("a", "b"), bandwidth=10.0, latency=5.0)
        assert c.transfer_time(0) == 5.0
        assert c.transfer_time(100) == 15.0

    def test_connects(self):
        c = Channel("c", ("a", "b"))
        assert c.connects("a", "b")
        assert not c.connects("a", "a")
        assert not c.connects("a", "z")

    def test_bad_channel(self):
        arch = Architecture("x")
        arch.add_processor(Processor("a"))
        with pytest.raises(ValueError, match="not a processor"):
            arch.add_channel(Channel("c", ("a", "ghost")))
        with pytest.raises(ValueError, match="two ends"):
            arch.add_channel(Channel("c", ("a", "a")))

    def test_duplicates_rejected(self):
        arch = Architecture("x")
        arch.add_processor(Processor("a"))
        with pytest.raises(ValueError, match="duplicate"):
            arch.add_processor(Processor("a"))


class TestTorusAndHypercube:
    def test_torus_structure(self):
        from repro.syndex import torus

        arch = torus(3, 4)
        assert arch.n_processors == 12
        # Every node has degree 4 in a >=3x>=3 torus.
        for pid in arch.processor_ids():
            assert len(arch.neighbours(pid)) == 4

    def test_torus_wraparound_shortens_routes(self):
        from repro.syndex import mesh, torus

        t = torus(1, 6)
        m = mesh(1, 6)
        assert t.hop_count("p0", "p5") == 1  # wraps
        assert m.hop_count("p0", "p5") == 5

    def test_torus_degenerate_2(self):
        from repro.syndex import torus

        arch = torus(2, 2)
        assert arch.is_connected()
        # 2x2: wrap link would duplicate the mesh link; degree is 2.
        assert len(arch.neighbours("p0")) == 2

    def test_torus_single(self):
        from repro.syndex import torus

        assert torus(1, 1).n_processors == 1

    def test_torus_invalid(self):
        import pytest

        from repro.syndex import torus

        with pytest.raises(ValueError):
            torus(0, 3)

    def test_hypercube_structure(self):
        from repro.syndex import hypercube

        arch = hypercube(3)
        assert arch.n_processors == 8
        assert len(arch.channels) == 12  # n * d / 2
        for pid in arch.processor_ids():
            assert len(arch.neighbours(pid)) == 3

    def test_hypercube_diameter(self):
        from repro.syndex import hypercube

        arch = hypercube(4)
        # Opposite corners differ in all 4 bits.
        assert arch.hop_count("p0", "p15") == 4

    def test_hypercube_zero_dim(self):
        from repro.syndex import hypercube

        arch = hypercube(0)
        assert arch.n_processors == 1

    def test_hypercube_invalid(self):
        import pytest

        from repro.syndex import hypercube

        with pytest.raises(ValueError):
            hypercube(-1)

    def test_all_connected(self):
        from repro.syndex import hypercube, torus

        for arch in (torus(3, 3), torus(2, 5), hypercube(2), hypercube(4)):
            assert arch.is_connected()
