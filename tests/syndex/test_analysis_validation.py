"""Cross-validation: the static latency estimate vs the DES measurement.

The static analysis (`repro.syndex.analysis`) exists to guide mapping
decisions before running anything; these tests pin down how well its
balanced-farm approximation predicts the discrete-event simulator:
correct to within a factor of two on farm workloads, and correctly
*ordered* across design alternatives (which is what a mapping heuristic
actually needs).
"""

import pytest

from repro.core import FunctionTable, ProgramBuilder
from repro.machine import T9000, simulate
from repro.pnt import expand_program
from repro.syndex import distribute, estimate_latency, ring, route_mapping


def farm_setup(degree, n_items, item_cost):
    table = FunctionTable()
    table.register("work", ins=["int"], outs=["int"], cost=item_cost)(
        lambda x: x + 1
    )
    table.register("add", ins=["int", "int"], outs=["int"], cost=20.0)(
        lambda a, b: a + b
    )
    b = ProgramBuilder("farm", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="work", acc="add", z=b.const(0), xs=xs)
    prog = b.returns(r)
    graph = expand_program(prog, table)
    mapping = distribute(graph, ring(degree))
    routing = route_mapping(mapping)
    durations = {
        p.id: item_cost for p in graph.by_kind("worker")
    }
    durations.update(
        {p.id: 20.0 for p in graph.by_kind("master")}
    )
    return table, mapping, routing, durations, n_items


class TestEstimateAccuracy:
    @pytest.mark.parametrize("degree,n_items", [(2, 8), (4, 16), (8, 8)])
    def test_within_factor_two_of_simulation(self, degree, n_items):
        table, mapping, routing, durations, _ = farm_setup(
            degree, n_items, 5_000.0
        )
        est = estimate_latency(
            mapping, routing, durations, items_hint=n_items
        )
        report = simulate(
            mapping, table, T9000, args=(list(range(n_items)),)
        )
        measured = report.makespan
        assert 0.5 * measured <= est.latency <= 2.0 * measured

    def test_orders_design_alternatives_correctly(self):
        """The estimate must rank degree choices like the simulator does."""
        est_order, sim_order = [], []
        for degree in (1, 4, 8):
            table, mapping, routing, durations, n = farm_setup(
                degree, 16, 5_000.0
            )
            est = estimate_latency(mapping, routing, durations, items_hint=16)
            report = simulate(mapping, table, T9000, args=(list(range(16)),))
            est_order.append((est.latency, degree))
            sim_order.append((report.makespan, degree))
        assert [d for _l, d in sorted(est_order)] == [
            d for _l, d in sorted(sim_order)
        ]

    def test_critical_path_passes_through_the_farm(self):
        _table, mapping, routing, durations, n = farm_setup(4, 16, 5_000.0)
        est = estimate_latency(mapping, routing, durations, items_hint=n)
        assert any(key.startswith("skel:") for key in est.path)
