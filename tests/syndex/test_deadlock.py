"""Direct unit tests for the deadlock-freedom analysis.

Each of the four checks in :func:`check_deadlock_freedom` gets a
hand-built violating graph, and the road-following case study provides
the positive control on the paper's ring topology.
"""

import pytest

from repro.minicaml.compile import compile_source
from repro.pnt import expand_program
from repro.pnt.graph import Process, ProcessGraph, ProcessKind
from repro.roadfollow import build_road_app
from repro.syndex import check_deadlock_freedom, distribute, ring
from repro.syndex.arch import Architecture, Processor
from repro.syndex.distribute import Mapping


def _apply(pid, n_in=1, n_out=1):
    return Process(pid, ProcessKind.APPLY, func="f", n_in=n_in, n_out=n_out)


def _trivial_mapping(graph, n=2):
    return distribute(graph, ring(n))


class TestCyclicDataflow:
    def test_flags_two_node_cycle(self):
        graph = ProcessGraph("cyclic")
        graph.add_process(_apply("a"))
        graph.add_process(_apply("b"))
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        report = check_deadlock_freedom(_trivial_mapping(graph))
        assert not report.ok
        assert any("cyclic" in v for v in report.violations)
        assert "DEADLOCK RISK" in report.render()

    def test_flags_longer_routing_cycle(self):
        # a -> b -> c -> a: no topological order exists anywhere.
        graph = ProcessGraph("ring_of_applies")
        for pid in ("a", "b", "c"):
            graph.add_process(_apply(pid))
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        report = check_deadlock_freedom(_trivial_mapping(graph, 3))
        assert not report.ok
        assert any("cyclic" in v for v in report.violations)

    def test_acyclic_chain_passes(self):
        graph = ProcessGraph("chain")
        for pid in ("a", "b", "c"):
            graph.add_process(_apply(pid))
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert check_deadlock_freedom(_trivial_mapping(graph)).ok


class TestFarmProtocol:
    @staticmethod
    def _df_graph():
        from repro.core import FunctionTable, ProgramBuilder

        table = FunctionTable()
        table.register("sq", ins=["int"], outs=["int"])(lambda x: x * x)
        table.register(
            "add", ins=["int", "int"], outs=["int"],
            properties=["commutative", "associative"],
        )(lambda a, b: a + b)
        b = ProgramBuilder("df_guard", table)
        (xs,) = b.params("xs")
        r = b.df(3, comp="sq", acc="add", z=b.const(0), xs=xs)
        return expand_program(b.returns(r), table)

    def test_intact_farm_passes(self):
        graph = self._df_graph()
        assert check_deadlock_freedom(distribute(graph, ring(4))).ok

    def test_flags_missing_dispatch_edge(self):
        graph = self._df_graph()
        (master,) = graph.by_kind(ProcessKind.MASTER)
        victim = next(
            e for e in graph.out_edges(master.id) if e.src_port >= 1
        )
        graph.edges = [e for e in graph.edges if e is not victim]
        report = check_deadlock_freedom(distribute(graph, ring(4)))
        assert not report.ok
        assert any("dispatch" in v for v in report.violations)

    def test_flags_missing_worker(self):
        graph = self._df_graph()
        # Demote one worker out of the WORKER kind: the master's degree
        # no longer matches the farm's worker population.
        worker = graph.by_kind(ProcessKind.WORKER)[0]
        worker.kind = ProcessKind.APPLY
        report = check_deadlock_freedom(distribute(graph, ring(4)))
        assert not report.ok
        assert any("workers" in v for v in report.violations)


class TestRoutability:
    def test_flags_unroutable_remote_edge(self):
        # Two processors with no channel between them: any remote edge
        # waits forever for a path.
        arch = Architecture("islands")
        arch.add_processor(Processor("p0", io=True))
        arch.add_processor(Processor("p1"))
        graph = ProcessGraph("split")
        graph.add_process(_apply("a"))
        graph.add_process(_apply("b"))
        graph.add_edge("a", "b")
        mapping = Mapping(graph, arch, {"a": "p0", "b": "p1"})
        report = check_deadlock_freedom(mapping)
        assert not report.ok
        assert any(
            "unroutable" in v or "without a route" in v
            for v in report.violations
        )


class TestFeedbackEdges:
    def test_flags_loop_edge_to_non_mem(self):
        graph = ProcessGraph("badloop")
        graph.add_process(_apply("a"))
        graph.add_process(_apply("b"))
        graph.add_edge("a", "b")
        graph.add_edge("b", "a", loop=True)
        report = check_deadlock_freedom(_trivial_mapping(graph))
        assert not report.ok
        assert any("non-memory" in v for v in report.violations)

    def test_flags_mem_without_feedback(self):
        graph = ProcessGraph("nofeedback")
        graph.add_process(_apply("a"))
        graph.add_process(
            Process("m", ProcessKind.MEM, n_in=1, n_out=1)
        )
        graph.add_edge("m", "a")
        report = check_deadlock_freedom(_trivial_mapping(graph))
        assert not report.ok
        assert any("feedback" in v for v in report.violations)

    def test_flags_double_feedback(self):
        graph = ProcessGraph("doublefeedback")
        graph.add_process(_apply("a", n_out=2))
        graph.add_process(
            Process("m", ProcessKind.MEM, n_in=2, n_out=1)
        )
        graph.add_edge("m", "a")
        graph.add_edge("a", "m", src_port=0, dst_port=0, loop=True)
        graph.add_edge("a", "m", src_port=1, dst_port=1, loop=True)
        report = check_deadlock_freedom(_trivial_mapping(graph))
        assert not report.ok
        assert any("2 feedback" in v for v in report.violations)


class TestCaseStudyRingMapping:
    """The paper's road-following application on the ring machine."""

    @pytest.mark.parametrize("nproc", [2, 4, 8])
    def test_road_following_is_deadlock_free(self, nproc):
        app = build_road_app(nbands=4, n_frames=2)
        compiled = compile_source(app.source, app.table)
        graph = expand_program(compiled.ir, app.table)
        mapping = distribute(graph, ring(nproc))
        report = check_deadlock_freedom(mapping)
        assert report.ok, report.render()
        assert report.render() == "deadlock-free: all checks passed"
