"""Edge cases of the static distribution heuristics.

These exercise the corners the farm programs never hit: colocate-with
chains (a process riding a process that itself rides an anchor),
deferred anchors visited *after* their dependents, one-processor
architectures, and the pinned-kind handling of the round-robin
baseline.
"""

import pytest

from repro.pnt import ProcessKind
from repro.pnt.graph import Edge, Process, ProcessGraph
from repro.syndex import distribute, ring, round_robin


def graph_with(processes, edges=()):
    g = ProcessGraph("edgecases")
    for p in processes:
        g.add_process(p)
    for e in edges:
        g.add_edge(*e) if isinstance(e, tuple) else g.edges.append(e)
    return g


def plain(pid, **kw):
    kw.setdefault("kind", ProcessKind.APPLY)
    kw.setdefault("func", "f")
    return Process(pid, **kw)


class TestColocationChains:
    def chain_graph(self):
        # c rides b rides a; the placement order visits heavy kinds
        # first, so both b and c are deferred and their anchors resolve
        # transitively.
        return graph_with([
            plain("a"),
            plain("b", colocate_with="a"),
            plain("c", colocate_with="b"),
            plain("other"),
        ])

    def test_distribute_resolves_chains(self):
        mapping = distribute(self.chain_graph(), ring(3))
        assert (mapping.processor_of("a")
                == mapping.processor_of("b")
                == mapping.processor_of("c"))
        mapping.validate()

    def test_round_robin_resolves_chains(self):
        mapping = round_robin(self.chain_graph(), ring(3))
        assert (mapping.processor_of("a")
                == mapping.processor_of("b")
                == mapping.processor_of("c"))
        mapping.validate()

    def test_anchor_placed_after_dependent(self):
        # The dependent sorts *before* its anchor in placement order
        # (WORKER outweighs APPLY, and ids break ties), so the deferred
        # list holds the dependent before the anchor is placed.
        g = graph_with([
            Process("w", ProcessKind.WORKER, func="f", skeleton="s"),
            plain("z_anchor"),
            Process("a_rider", ProcessKind.ROUTER_MW, skeleton="s",
                    colocate_with="z_anchor"),
        ])
        for build in (distribute, round_robin):
            mapping = build(g, ring(2))
            assert (mapping.processor_of("a_rider")
                    == mapping.processor_of("z_anchor"))

    def test_colocation_cycle_raises(self):
        g = graph_with([
            plain("a", colocate_with="b"),
            plain("b", colocate_with="a"),
        ])
        with pytest.raises(ValueError, match="colocation cycle"):
            distribute(g, ring(2))
        with pytest.raises(ValueError, match="colocation cycle"):
            round_robin(g, ring(2))


class TestSingleProcessor:
    def test_everything_lands_on_the_only_processor(self):
        g = graph_with([
            Process("in", ProcessKind.INPUT, func="read", n_in=0),
            plain("work"),
            plain("rider", colocate_with="work"),
            Process("out", ProcessKind.OUTPUT, func="emit", n_out=0),
        ])
        for build in (distribute, round_robin):
            mapping = build(g, ring(1))
            assert set(mapping.assignment.values()) == {"p0"}
            mapping.validate()


class TestRoundRobinPinning:
    def test_pinned_kinds_go_to_io_processor(self):
        g = graph_with([
            Process("in", ProcessKind.INPUT, func="read", n_in=0),
            Process("out", ProcessKind.OUTPUT, func="emit", n_out=0),
            Process("mem", ProcessKind.MEM),
            Process("boss", ProcessKind.MASTER, func="acc"),
            plain("w1"),
            plain("w2"),
            plain("w3"),
        ])
        mapping = round_robin(g, ring(3))
        io = mapping.arch.io_processor()
        for pid in ("in", "out", "mem", "boss"):
            assert mapping.processor_of(pid) == io
        # The unpinned processes deal over every processor in turn.
        dealt = [mapping.processor_of(p) for p in ("w1", "w2", "w3")]
        assert dealt == ["p0", "p1", "p2"]
