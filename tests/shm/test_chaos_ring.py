"""Satellite chaos test: SIGKILL a worker mid-ring-write.

An OS-level ``SIGKILL`` is the harshest producer death there is — no
cleanup, no flush, possibly *between the seqlock stamps* of a
half-written slot.  The publish-last protocol makes that slot invisible
(the tail store never happened), so the claims under test are:

1. the ``SupervisedKernel`` quarantines the killed worker on heartbeat
   staleness and the master re-dispatches its outstanding packets;
2. no survivor ever reads a torn slot (a ``TornRead`` anywhere would
   fail the run loudly);
3. the outputs still match the fault-free sequential emulation.
"""

import os
import signal
import threading
import time

import multiprocessing

import pytest

from repro.backends import get_backend
from repro.core import FunctionTable, ProgramBuilder
from repro.faults import FaultPlan, FaultPolicy
from repro.machine import FAST_TEST
from repro.pnt import ProcessKind, expand_program
from repro.syndex import distribute, ring

#: Fast detection (mirrors tests/faults): a SIGKILLed worker only looks
#: dead once its heartbeat goes stale.
POLICY = FaultPolicy(
    packet_timeout_s=0.3,
    heartbeat_timeout_s=0.15,
    poll_s=0.002,
)


# -- module-level sequential functions (spawn-picklable) ----------------------

def slow_square(x):
    # Slow enough that the farm is mid-flight when the killer strikes,
    # fast enough that 12 items re-run on survivors in well under the
    # backend timeout.
    time.sleep(0.05)
    return x * x


def add(a, b):
    return a + b


def make_slow_df():
    table = FunctionTable()
    table.register("slow_square", ins=["int"], outs=["int"], cost=50.0)(
        slow_square
    )
    table.register(
        "add", ins=["int", "int"], outs=["int"], cost=10.0,
        properties=["commutative", "associative"],
    )(add)
    b = ProgramBuilder("chaos_df", table)
    (xs,) = b.params("xs")
    r = b.df(3, comp="slow_square", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table, (list(range(12)),)


def expendable_processor(mapping):
    """A processor hosting only farm workers (no sinks, no master)."""
    graph = mapping.graph
    sink_procs = {
        mapping.processor_of(p.id)
        for p in graph.processes.values()
        if p.kind == ProcessKind.MEM
        or (p.kind == ProcessKind.OUTPUT and not p.params.get("discard"))
    }
    for p in sorted(graph.processes.values(), key=lambda p: p.id):
        if p.kind == ProcessKind.WORKER:
            proc = mapping.processor_of(p.id)
            if proc not in sink_procs:
                return proc
    raise AssertionError("no expendable worker processor in this mapping")


def sigkill_worker(processor, killed, delay_s=0.15):
    """Wait for the worker process of ``processor``, then SIGKILL it."""
    name = f"repro-{processor}"
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        for child in multiprocessing.active_children():
            if child.name == name and child.pid is not None:
                time.sleep(delay_s)  # let it get mid-flight
                try:
                    os.kill(child.pid, signal.SIGKILL)
                except ProcessLookupError:  # pragma: no cover
                    return
                killed.append(child.pid)
                return
        time.sleep(0.005)


class TestSigkillMidRingWrite:
    @pytest.mark.parametrize("transport", ["ring", "queue"])
    def test_farm_survives_a_sigkilled_worker(self, transport):
        prog, table, args = make_slow_df()
        mapping = distribute(expand_program(prog, table), ring(4))
        victim = expendable_processor(mapping)
        reference = get_backend("emulate").run(
            None, table, program=prog, costs=FAST_TEST, args=args,
        )

        killed: list = []
        killer = threading.Thread(
            target=sigkill_worker, args=(victim, killed), daemon=True,
        )
        killer.start()
        report = get_backend("processes").run(
            mapping, table, program=prog, costs=FAST_TEST, args=args,
            timeout=60.0, transport=transport,
            # Supervision with no injected plan: the "fault" is real.
            fault_plan=FaultPlan([]), fault_policy=POLICY,
        )
        killer.join(timeout=25.0)

        assert killed, "the killer thread never found the worker process"
        # (3) equivalence: a torn read or lost packet would break this.
        assert report.one_shot_results == reference.one_shot_results
        # (1) the supervisor saw the death and re-dispatched.
        assert report.faults is not None
        assert report.faults.redispatches >= 1
        assert report.faults.quarantined, report.faults.story()

    def test_sigkill_without_supervision_is_loud(self):
        """No supervisor, no tolerance: the run must fail, not hang."""
        from repro.backends import BackendError

        prog, table, args = make_slow_df()
        mapping = distribute(expand_program(prog, table), ring(4))
        victim = expendable_processor(mapping)
        killed: list = []
        killer = threading.Thread(
            target=sigkill_worker, args=(victim, killed), daemon=True,
        )
        killer.start()
        with pytest.raises(BackendError, match="died with exit code"):
            get_backend("processes").run(
                mapping, table, program=prog, costs=FAST_TEST, args=args,
                timeout=30.0, transport="ring",
            )
        killer.join(timeout=25.0)
