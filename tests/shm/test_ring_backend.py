"""The processes backend over the ring transport, vs sequential emulation.

The equivalence recipes (one program per skeleton) already certify the
``queue`` path; here the same programs run with ``transport="ring"``
(explicitly and via ``REPRO_TRANSPORT``), under fork and spawn, and
must agree with emulation exactly.
"""

import multiprocessing

import pytest

from repro.backends import get_backend
from repro.machine import FAST_TEST
from repro.pnt import expand_program
from repro.syndex import distribute, ring

from tests.backends.test_backend_equivalence import RECIPES, make_df, run_on


def run_ring(factory, *, arch_size=4, **options):
    prog, table, args = factory()
    mapping = distribute(expand_program(prog, table), ring(arch_size))
    options.setdefault("timeout", 60.0)
    return get_backend("processes").run(
        mapping, table, program=prog, costs=FAST_TEST, args=args,
        transport="ring", **options,
    )


def assert_agrees(report, reference):
    assert report.outputs == reference.outputs
    assert report.final_state == reference.final_state
    if reference.one_shot_results is not None:
        assert report.one_shot_results == reference.one_shot_results


class TestRingEquivalence:
    @pytest.mark.parametrize("skeleton", sorted(RECIPES))
    def test_every_skeleton_agrees_with_emulation(self, skeleton):
        reference = run_on("emulate", RECIPES[skeleton])
        assert_agrees(run_ring(RECIPES[skeleton]), reference)

    def test_df_under_spawn(self):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("no spawn on this platform")
        reference = run_on("emulate", make_df)
        report = run_ring(make_df, arch_size=2, start_method="spawn",
                          timeout=90.0)
        assert_agrees(report, reference)

    def test_env_var_selects_ring(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "ring")
        reference = run_on("emulate", make_df)
        report = run_on("processes", make_df)
        assert_agrees(report, reference)

    def test_explicit_queue_still_works(self):
        reference = run_on("emulate", make_df)
        prog, table, args = make_df()
        mapping = distribute(expand_program(prog, table), ring(4))
        report = get_backend("processes").run(
            mapping, table, program=prog, costs=FAST_TEST, args=args,
            timeout=60.0, transport="queue",
        )
        assert_agrees(report, reference)

    def test_unknown_transport_is_loud(self):
        from repro.backends import BackendError
        from repro.shm import TransportError

        prog, table, args = make_df()
        mapping = distribute(expand_program(prog, table), ring(4))
        with pytest.raises((BackendError, TransportError),
                           match="unknown transport"):
            get_backend("processes").run(
                mapping, table, program=prog, costs=FAST_TEST, args=args,
                timeout=60.0, transport="osmosis",
            )

    def test_tiny_ring_options_still_correct(self):
        """4 slots of 128B force constant backpressure + overflow."""
        reference = run_on("emulate", make_df)
        report = run_ring(
            make_df,
            transport_options={"ring_slots": 4, "ring_slot_bytes": 128},
        )
        assert_agrees(report, reference)

    def test_transfer_spans_recorded_over_ring(self):
        report = run_ring(make_df)
        assert report.trace is not None
        assert report.trace.compute
