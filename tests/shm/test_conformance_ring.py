"""Conformance oracle over the ring transport.

The same certification every backend got: fuzzed programs (all four
skeletons, nesting, fault plans) run on the ``processes`` backend with
``REPRO_TRANSPORT=ring`` and must match sequential emulation exactly.
The oracle itself is untouched — the env var is the whole enablement,
which is the point: the transport is invisible above the kernel.

CI runs the full-size campaign (``repro check``) in the ``shm`` job;
this in-tree leg keeps a smaller always-on sample.
"""

import pytest

from repro.conformance import generate_case, run_case, run_conformance


@pytest.fixture(autouse=True)
def ring_transport(monkeypatch):
    monkeypatch.setenv("REPRO_TRANSPORT", "ring")


class TestConformanceOverRing:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_fuzzed_cases_conform(self, seed):
        failure = run_case(generate_case(seed), ["processes"], timeout=30.0)
        assert failure is None, failure.describe()

    def test_faulted_cases_conform(self):
        checked = 0
        for seed in range(20):
            spec = generate_case(seed, allow_faults=True)
            if not spec.faults:
                continue
            checked += 1
            failure = run_case(spec, ["processes"], timeout=30.0)
            assert failure is None, (spec.to_dict(), failure.describe())
            if checked >= 3:
                break
        assert checked >= 3

    def test_campaign_runs_clean(self):
        report = run_conformance(
            backends=["processes"], cases=4, seed=2026, faults=True,
            shrink=False, timeout=30.0,
        )
        assert report.cases_run == 4
        assert report.ok, report.summary()
