"""Unit tests for the SPSC ring: boundaries, wraparound, torn reads.

Lock-free rings fail at the edges — full, empty, the slot-array wrap,
and the (astronomically distant but cheap-to-test) u64 counter wrap —
so every edge gets a dedicated test, plus direct provocations of the
seqlock stamps through the raw ``read_slot``/``advance_head``/
``force_counters`` hooks.
"""

import pickle
import struct

import pytest

from repro.shm.ring import (
    HEADER_BYTES,
    Ring,
    RingError,
    RingHandle,
    TornRead,
    create_ring,
)

U64_WRAP = 1 << 64


@pytest.fixture
def ring():
    handle = create_ring(8, 128)
    r = Ring(handle)
    yield r
    r.close()
    handle.unlink()


def push(r, payload, flags=1):
    return r.try_push([payload], len(payload), flags)


class TestGeometry:
    @pytest.mark.parametrize("slots", [0, -4, 3, 6, 12, 100])
    def test_non_power_of_two_slots_rejected(self, slots):
        with pytest.raises(RingError, match="power of two"):
            create_ring(slots, 128)

    def test_tiny_slots_rejected(self):
        with pytest.raises(RingError, match=">= 64"):
            create_ring(8, 16)

    def test_segment_size_accounts_for_overhead(self, ring):
        assert ring.handle.nbytes == HEADER_BYTES + 8 * (128 + 24)

    def test_oversized_payload_rejected_loudly(self, ring):
        with pytest.raises(RingError, match="overflow side-channel"):
            push(ring, b"x" * 129)


class TestFullEmptyBoundary:
    def test_fresh_ring_is_empty(self, ring):
        assert len(ring) == 0
        assert ring.try_pop() is None

    def test_fills_to_exactly_capacity(self, ring):
        for i in range(8):
            assert push(ring, bytes([i]) * 10)
        assert len(ring) == 8
        assert not push(ring, b"overflowing")  # full: refused, not torn
        assert ring.try_pop() == (1, bytes([0]) * 10)
        assert push(ring, b"fits-again")  # one pop frees one slot

    def test_fifo_order_with_flags(self, ring):
        for i in range(5):
            push(ring, bytes([i]), flags=i + 10)
        got = [ring.try_pop() for _ in range(5)]
        assert got == [(i + 10, bytes([i])) for i in range(5)]
        assert ring.try_pop() is None

    def test_empty_payload_slot(self, ring):
        assert push(ring, b"", flags=7)
        assert ring.try_pop() == (7, b"")

    def test_scattered_buffers_written_back_to_back(self, ring):
        assert ring.try_push([b"ab", memoryview(b"cd"), b"", b"e"], 5, 1)
        assert ring.try_pop() == (1, b"abcde")

    def test_buffer_length_mismatch_is_loud(self, ring):
        with pytest.raises(RingError, match="declared length"):
            ring.try_push([b"abc"], 2, 1)


class TestWraparound:
    def test_many_laps_of_the_slot_array(self, ring):
        """Streaming 10x capacity exercises slot reuse on every lap."""
        sent = 0
        received = 0
        while received < 80:
            while sent < 80 and push(ring, sent.to_bytes(4, "little")):
                sent += 1
            item = ring.try_pop()
            if item is not None:
                flags, payload = item
                assert int.from_bytes(payload, "little") == received
                received += 1
        assert ring.head == ring.tail == 80

    def test_u64_counter_wrap(self, ring):
        """Counters are free-running mod 2**64; push/pop must survive
        the wrap because slots (a power of two) divides 2**64."""
        start = U64_WRAP - 3  # three pushes before the wrap
        ring.force_counters(start, start)
        for i in range(8):  # crosses the wrap mid-sequence
            assert push(ring, bytes([i]) * 3)
        assert len(ring) == 8
        assert not push(ring, b"full")
        for i in range(8):
            assert ring.try_pop() == (1, bytes([i]) * 3)
        assert ring.try_pop() is None
        assert ring.head == ring.tail == (start + 8) % U64_WRAP

    def test_full_detection_across_the_wrap(self, ring):
        ring.force_counters(U64_WRAP - 1, U64_WRAP - 1)
        for i in range(8):
            assert push(ring, b"x")
        assert not push(ring, b"y")
        assert len(ring) == 8


class TestTornReadDetection:
    def test_release_before_copy_is_caught(self, ring):
        """The slow-reader protocol violation, distilled: release the
        slot, let the producer overwrite it, then verify the stamps."""
        push(ring, b"first")
        head = ring.head
        ring.advance_head()              # released before copying!
        assert push(ring, b"second")     # free slot... 8 slots: not same
        # Overwrite the *same* physical slot: push seven more so the
        # tail laps back onto the released slot.
        for i in range(7):
            assert push(ring, bytes([i]))
        seq0, length, flags, payload, seq1 = ring.read_slot(head)
        with pytest.raises(TornRead, match="rewritten during the read"):
            ring.verify_slot(head, seq0, length, seq1)

    def test_clean_read_verifies(self, ring):
        push(ring, b"payload")
        head = ring.head
        seq0, length, flags, payload, seq1 = ring.read_slot(head)
        ring.verify_slot(head, seq0, length, seq1)  # no raise
        assert payload[:length] == b"payload"

    def test_never_written_slot_cannot_verify(self, ring):
        """Cycle stamps start at 1; a zeroed slot always mismatches."""
        seq0, length, _flags, _payload, seq1 = ring.read_slot(0)
        assert seq0 == seq1 == 0
        with pytest.raises(TornRead):
            ring.verify_slot(0, seq0, length, seq1)

    def test_corrupt_length_field_is_caught(self, ring):
        push(ring, b"ok")
        with pytest.raises(TornRead, match="corrupt length"):
            ring.verify_slot(ring.head, 1, 10_000, 1)

    def test_scribble_on_the_stamp_is_caught(self, ring):
        """A stray write through the raw buffer trips verification."""
        push(ring, b"target")
        base = HEADER_BYTES  # slot 0 seq0 stamp
        struct.pack_into("<Q", ring._buf, base, 999)
        with pytest.raises(TornRead):
            ring.try_pop()


class TestHandle:
    def test_handle_pickles_to_name_and_geometry(self, ring):
        clone = pickle.loads(pickle.dumps(ring.handle))
        assert (clone.name, clone.slots, clone.slot_bytes) == (
            ring.handle.name, 8, 128
        )
        # The clone attaches to the same memory.
        push(ring, b"shared")
        other = Ring(clone)
        try:
            assert other.try_pop() == (1, b"shared")
        finally:
            other.close()

    def test_unlink_is_idempotent(self):
        handle = create_ring(4, 64)
        handle.unlink()
        handle.unlink()  # second unlink: silent no-op
