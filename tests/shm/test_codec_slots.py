"""Satellite: the tag codec round-tripping through fixed-size ring slots.

The codec was certified against a byte stream (``tests/net``); a ring
slot is a *bounded* container, so the interesting inputs are the sizes
the stream never cared about: 0-d arrays, size-0 arrays, and payloads
landing exactly at — and one byte over — the slot boundary (the latter
must take the overflow side-channel and still round-trip).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.codec import encode, encoded_size
from repro.shm import BatchPolicy, RingChannel
from repro.shm.channel import F_OVERFLOW

SLOT = 256


@pytest.fixture
def channel():
    ch = RingChannel(slots=8, slot_bytes=SLOT,
                     policy=BatchPolicy(small_max=64, eager=True))
    yield ch
    ch.close()
    ch.destroy()


def through(channel, value):
    channel.put(value, timeout=5.0)
    assert channel.try_flush()
    return channel.get(timeout=5.0)


def assert_array_roundtrip(channel, arr):
    got = through(channel, arr)
    assert got.shape == arr.shape
    assert got.dtype == arr.dtype
    np.testing.assert_array_equal(got, arr)


class TestDegenerateArrays:
    def test_zero_d_array(self, channel):
        assert_array_roundtrip(channel, np.array(3.25))

    def test_zero_d_int_array(self, channel):
        assert_array_roundtrip(channel, np.array(7, dtype=np.int16))

    def test_size_zero_array(self, channel):
        assert_array_roundtrip(channel, np.zeros(0, dtype=np.int32))

    def test_size_zero_2d_array(self, channel):
        assert_array_roundtrip(channel, np.zeros((0, 5), dtype=np.float64))

    @given(st.sampled_from(["u1", "i2", "i4", "i8", "f4", "f8", "bool"]))
    @settings(max_examples=20, deadline=None)
    def test_zero_d_every_dtype(self, dtype):
        ch = RingChannel(slots=4, slot_bytes=SLOT)
        try:
            assert_array_roundtrip(ch, np.zeros((), dtype=dtype))
        finally:
            ch.close()
            ch.destroy()


def bytes_payload_of_encoded_size(target: int) -> bytes:
    """A bytes value whose codec frame is exactly ``target`` bytes."""
    probe = encoded_size(encode(b""))
    return b"\xA5" * (target - probe)


class TestSlotBoundary:
    def test_payload_exactly_at_slot_size(self, channel):
        value = bytes_payload_of_encoded_size(SLOT)
        assert encoded_size(encode(value)) == SLOT
        assert through(channel, value) == value
        assert channel.sent_overflows == 0  # in-slot, no side-channel

    def test_payload_one_byte_over_takes_overflow(self, channel):
        value = bytes_payload_of_encoded_size(SLOT + 1)
        assert encoded_size(encode(value)) == SLOT + 1
        channel.put(value, timeout=5.0)
        assert channel.sent_overflows == 1
        assert channel.ring.read_slot(channel.ring.head)[2] & F_OVERFLOW
        assert channel.get(timeout=5.0) == value

    def test_large_array_takes_overflow_and_roundtrips(self, channel):
        arr = np.arange(5000, dtype=np.int64).reshape(50, 100)
        channel.put(arr, timeout=5.0)
        assert channel.sent_overflows == 1
        np.testing.assert_array_equal(channel.get(timeout=5.0), arr)

    @given(st.integers(-3, 3))
    @settings(max_examples=7, deadline=None)
    def test_every_size_around_the_boundary(self, delta):
        ch = RingChannel(slots=4, slot_bytes=SLOT)
        try:
            value = bytes_payload_of_encoded_size(SLOT + delta)
            ch.put(value, timeout=5.0)
            ch.try_flush()
            assert ch.get(timeout=5.0) == value
            assert ch.sent_overflows == (1 if delta > 0 else 0)
        finally:
            ch.close()
            ch.destroy()


class TestExoticValuesFallBackToPickle:
    def test_set_roundtrips_via_pickle_flag(self, channel):
        # Sets are not in the codec grammar; parity with mp.Queue
        # demands they still cross.
        assert through(channel, {1, 2, 3}) == {1, 2, 3}

    def test_executive_tokens_roundtrip(self, channel):
        from repro.codegen.kernel import Stop
        from repro.faults.supervisor import Packet

        got = through(channel, Packet(seq=4, value=(1, 2)))
        assert (got.seq, got.value) == (4, (1, 2))
        assert channel.ring is not None  # channel still healthy
        assert isinstance(through(channel, Stop()), Stop)
