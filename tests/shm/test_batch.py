"""Property tests for the batching framer.

The load-bearing property: *any* packet sequence survives
coalesce→split byte-identically, flags included.  Everything else is
strictness — truncation, trailing garbage, and impossible counts must
raise :class:`BatchError`, never yield a short read.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shm.batch import (
    BATCH_OVERHEAD,
    ENTRY_OVERHEAD,
    BatchError,
    BatchPolicy,
    frame_entries,
    framed_size,
    split_entries,
)

entries = st.lists(
    st.tuples(st.integers(0, 255), st.binary(max_size=200)),
    max_size=40,
)


class TestRoundTrip:
    @given(entries)
    @settings(max_examples=200, deadline=None)
    def test_split_inverts_frame_exactly(self, packets):
        frame = frame_entries(packets)
        assert split_entries(frame) == packets
        assert len(frame) == framed_size(len(p) for _f, p in packets)

    @given(entries)
    @settings(max_examples=50, deadline=None)
    def test_frame_is_canonical(self, packets):
        """Framing the split of a frame reproduces the frame bytes."""
        frame = frame_entries(packets)
        assert frame_entries(split_entries(frame)) == frame

    def test_empty_batch(self):
        assert split_entries(frame_entries([])) == []

    def test_memoryview_input(self):
        frame = frame_entries([(1, b"abc"), (2, b"")])
        assert split_entries(memoryview(frame)) == [(1, b"abc"), (2, b"")]


class TestStrictness:
    def test_flags_must_fit_one_byte(self):
        with pytest.raises(BatchError, match="fit one byte"):
            frame_entries([(256, b"x")])
        with pytest.raises(BatchError, match="fit one byte"):
            frame_entries([(-1, b"x")])

    def test_headerless_frame(self):
        with pytest.raises(BatchError, match="no header"):
            split_entries(b"\x01")

    @given(entries.filter(bool), st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_truncation_raises(self, packets, data):
        """Chopping any suffix off a non-empty frame must be loud."""
        frame = frame_entries(packets)
        cut = data.draw(st.integers(1, len(frame)))
        with pytest.raises(BatchError):
            split_entries(frame[:-cut] if cut < len(frame) else b"")

    @given(entries, st.binary(min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_trailing_garbage_raises(self, packets, garbage):
        frame = frame_entries(packets)
        with pytest.raises(BatchError):
            split_entries(frame + garbage)

    def test_impossible_count_raises_before_looping(self):
        # Claims 2**32-1 entries in a 10-byte frame: the guard must
        # refuse up front, not iterate four billion times.
        bogus = (0xFFFFFFFF).to_bytes(4, "little") + b"\0" * 6
        with pytest.raises(BatchError, match="impossible"):
            split_entries(bogus)


class TestPolicy:
    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchPolicy(small_max=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_packets=-1)

    def test_eager_always_flushes(self):
        policy = BatchPolicy(eager=True)
        assert policy.should_flush(1, 1, 0.0)

    def test_triggers(self):
        policy = BatchPolicy(max_bytes=100, max_packets=4, max_delay_s=0.5)
        assert not policy.should_flush(10, 1, 0.0)
        assert policy.should_flush(100, 1, 0.0)     # size
        assert policy.should_flush(10, 4, 0.0)      # count
        assert policy.should_flush(10, 1, 0.5)      # age
        assert not policy.should_flush(99, 3, 0.49)

    def test_policy_pickles(self):
        import pickle

        policy = BatchPolicy(small_max=7, eager=True)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.small_max == 7 and clone.eager

    def test_overheads_are_what_the_docs_say(self):
        assert ENTRY_OVERHEAD == 5 and BATCH_OVERHEAD == 4
