"""The lock-free shared-memory stop flag.

The whole point of :class:`repro.shm.flag.StopFlag` is surviving what
kills a ``multiprocessing.Event``: a process dying (even SIGKILLed)
at any instruction never blocks anyone else, because there is no lock.
The chaos suite proves the integrated claim; these are the unit facts.
"""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.shm import StopFlag

START_METHODS = [
    m for m in ("fork", "spawn")
    if m in multiprocessing.get_all_start_methods()
]


def _set_and_exit(flag):
    flag.set()


def _spin_until_set(flag):
    while not flag.is_set():
        time.sleep(0.001)


class TestLocal:
    def test_starts_clear(self):
        flag = StopFlag()
        try:
            assert not flag.is_set()
        finally:
            flag.unlink()

    def test_set_is_sticky(self):
        flag = StopFlag()
        try:
            flag.set()
            assert flag.is_set()
            flag.set()  # idempotent
            assert flag.is_set()
        finally:
            flag.unlink()

    def test_wait_timeout_and_success(self):
        flag = StopFlag()
        try:
            assert flag.wait(timeout=0.01) is False
            flag.set()
            assert flag.wait(timeout=0.01) is True
            assert flag.wait() is True  # already set: returns at once
        finally:
            flag.unlink()

    def test_pickle_round_trip_attaches_same_byte(self):
        flag = StopFlag()
        try:
            clone = pickle.loads(pickle.dumps(flag))
            assert not clone.is_set()
            flag.set()
            assert clone.is_set()
        finally:
            flag.unlink()

    def test_unlink_is_idempotent_and_vanished_reads_as_set(self):
        flag = StopFlag()
        clone = pickle.loads(pickle.dumps(flag))
        flag.unlink()
        flag.unlink()
        # A vanished flag means the run is over: late pollers stop.
        assert clone.is_set()
        clone.set()  # and a late set() stays silent


class TestAcrossProcesses:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_child_set_is_seen_by_parent(self, start_method):
        ctx = multiprocessing.get_context(start_method)
        flag = StopFlag()
        try:
            child = ctx.Process(target=_set_and_exit, args=(flag,))
            child.start()
            child.join(30.0)
            assert child.exitcode == 0
            assert flag.is_set()
        finally:
            flag.unlink()

    def test_parent_set_releases_spinning_child(self):
        ctx = multiprocessing.get_context()
        flag = StopFlag()
        try:
            child = ctx.Process(target=_spin_until_set, args=(flag,))
            child.start()
            time.sleep(0.05)
            flag.set()
            child.join(30.0)
            assert child.exitcode == 0
        finally:
            flag.unlink()

    def test_sigkilled_reader_never_wedges_set(self):
        """The scenario that deadlocks multiprocessing.Event."""
        ctx = multiprocessing.get_context()
        flag = StopFlag()
        try:
            child = ctx.Process(target=_spin_until_set, args=(flag,))
            child.start()
            time.sleep(0.05)  # child is mid-is_set() polling
            os.kill(child.pid, signal.SIGKILL)
            child.join(10.0)
            start = time.monotonic()
            flag.set()  # must not block on anything the child held
            assert time.monotonic() - start < 1.0
            assert flag.is_set()
        finally:
            flag.unlink()
