"""The transport registry: lookup, capabilities, per-edge fallback."""

import multiprocessing

import pytest

from repro.shm import (
    ChannelSet,
    EdgeSpec,
    RingChannel,
    Transport,
    TransportError,
    build_channels,
    get_transport,
    list_transports,
    transport_capabilities,
    transport_names,
)
from repro.shm.registry import _REGISTRY, register_transport


def spec(edge="e0", src="a", dst="b"):
    return EdgeSpec(edge, src, dst, "p0", "p1")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert transport_names() == ["queue", "ring"]

    def test_descriptions(self):
        described = list_transports()
        assert set(described) == {"queue", "ring"}
        assert all(described.values())

    def test_capabilities_matrix(self):
        caps = transport_capabilities()
        assert not caps["queue"]["shared_memory"]
        assert caps["ring"]["shared_memory"]
        assert caps["ring"]["batching"]
        assert caps["ring"]["preallocated"]

    def test_unknown_transport_is_loud(self):
        with pytest.raises(TransportError, match="unknown transport"):
            get_transport("carrier-pigeon")

    def test_duplicate_registration_rejected(self):
        class Dupe(Transport):
            name = "ring"

        with pytest.raises(ValueError, match="already registered"):
            register_transport(Dupe)

    def test_nameless_registration_rejected(self):
        class NoName(Transport):
            pass

        with pytest.raises(ValueError, match="has no name"):
            register_transport(NoName)


class TestBuildChannels:
    def test_queue_transport_builds_queues(self):
        ctx = multiprocessing.get_context()
        built = build_channels("queue", [spec("e0"), spec("e1")], ctx)
        assert set(built.channels) == {"e0", "e1"}
        assert built.by_transport == {"e0": "queue", "e1": "queue"}
        built.destroy()

    def test_ring_transport_builds_rings(self):
        ctx = multiprocessing.get_context()
        built = build_channels(
            "ring", [spec("e0")], ctx,
            options={"ring_slots": 4, "ring_slot_bytes": 128},
        )
        try:
            channel = built.channels["e0"]
            assert isinstance(channel, RingChannel)
            assert channel.handle.slots == 4
            assert channel.handle.slot_bytes == 128
            assert built.by_transport["e0"] == "ring"
        finally:
            built.destroy()

    def test_declined_edges_fall_back_to_queue(self):
        """A transport may refuse an edge; the chain must complete it."""
        @register_transport
        class Picky(Transport):
            name = "picky-test-transport"
            description = "declines every edge except e1"

            def channel_for(self, spec, ctx, *, queue_size, options):
                if spec.edge != "e1":
                    return None
                return ctx.Queue(maxsize=queue_size)

        try:
            ctx = multiprocessing.get_context()
            built = build_channels(
                "picky-test-transport", [spec("e0"), spec("e1")], ctx
            )
            assert built.by_transport == {
                "e0": "queue", "e1": "picky-test-transport",
            }
            built.destroy()
        finally:
            del _REGISTRY["picky-test-transport"]

    def test_channel_set_destroy_unlinks_rings(self):
        ctx = multiprocessing.get_context()
        built = build_channels("ring", [spec("e0")], ctx)
        handle = built.channels["e0"].handle
        built.destroy()
        # A second destroy (and a stale unlink) must stay silent.
        built.destroy()
        handle.unlink()

    def test_bad_batch_policy_option_is_loud(self):
        ctx = multiprocessing.get_context()
        with pytest.raises(TypeError, match="BatchPolicy"):
            build_channels(
                "ring", [spec("e0")], ctx,
                options={"batch_policy": "eager"},
            )

    def test_empty_edge_list(self):
        ctx = multiprocessing.get_context()
        built = build_channels("ring", [], ctx)
        assert isinstance(built, ChannelSet)
        assert built.channels == {}
