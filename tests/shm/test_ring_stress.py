"""Seeded multi-process stress: the ring under real concurrency.

Drives :mod:`repro.shm.stress` (the same driver CI runs standalone)
under both start methods: a producer *process* racing this process
through a deliberately tiny ring (hundreds of laps, every payload class
including overflow), and the fault-injected slow reader whose protocol
violation the seqlock stamps must catch.
"""

import multiprocessing

import pytest

from repro.shm.stress import run_exchange, run_slow_reader

START_METHODS = [
    m for m in ("fork", "spawn")
    if m in multiprocessing.get_all_start_methods()
]


class TestExchange:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("seed", [7, 23])
    def test_seeded_exchange_is_lossless(self, start_method, seed):
        verdict = run_exchange(
            seed=seed, packets=300, slots=8, slot_bytes=512,
            start_method=start_method,
        )
        assert verdict["ok"], verdict
        assert verdict["received"] == 300
        assert verdict["mismatches"] == 0
        # The run only means something if it wrapped the slot array.
        assert verdict["laps"] >= 10

    def test_eager_policy_exchange(self):
        verdict = run_exchange(seed=3, packets=200, slots=8,
                               slot_bytes=512, eager=True)
        assert verdict["ok"], verdict

    def test_single_slot_ring(self):
        """slots=1: every push/pop is a full/empty boundary."""
        verdict = run_exchange(seed=5, packets=120, slots=1,
                               slot_bytes=512)
        assert verdict["ok"], verdict
        # Batching coalesces small packets, so laps < packets; but a
        # 1-slot ring laps once per published slot.
        assert verdict["laps"] > 0

    def test_deterministic_across_runs(self):
        a = run_exchange(seed=13, packets=150, slots=8, slot_bytes=512)
        b = run_exchange(seed=13, packets=150, slots=8, slot_bytes=512)
        assert a["ok"] and b["ok"]
        assert a["received"] == b["received"] == 150


class TestSlowReaderFault:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_release_before_copy_is_detected(self, start_method):
        verdict = run_slow_reader(
            seed=3, packets=2000, start_method=start_method,
        )
        assert verdict["ok"], verdict
        assert verdict["torn"] > 0  # the stamps caught the violation
        assert verdict["reads"] >= verdict["torn"]
