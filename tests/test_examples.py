"""Smoke tests: every example script runs end-to-end and reports success.

Examples are documentation that executes; these tests keep them honest.
Each main() is imported from the examples directory and run with its
stdout captured, asserting on the key success markers it prints.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "results agree        : True" in out
        assert "int list -> int" in out

    def test_region_labelling(self, capsys):
        out = run_example("region_labelling", capsys)
        assert out.count("OK") == 2
        assert "MISMATCH" not in out

    def test_road_following(self, capsys):
        out = run_example("road_following", capsys)
        assert "processed 6 frames" in out
        # Both lanes found on every frame.
        for line in out.splitlines():
            if line.startswith("frame"):
                assert "2 line(s)" in line

    def test_quadtree_segmentation(self, capsys):
        out = run_example("quadtree_segmentation", capsys)
        assert "matches the sequential oracle" in out

    def test_histogram_equalization(self, capsys):
        out = run_example("histogram_equalization", capsys)
        assert "equalised 4 frames" in out
        assert "DIFFERS" not in out

    @pytest.mark.slow
    def test_vehicle_tracking(self, capsys):
        out = run_example("vehicle_tracking", capsys)
        assert "deadlock-free" in out
        assert "reinit" in out and "track" in out
        # The paper-vs-measured table is printed.
        assert "30 ms" in out and "110 ms" in out
