"""Tests for the command-line driver."""

import sys
import textwrap

import pytest

from repro.cli import load_table, main, parse_architecture


SPEC = """
let n = 3;;
let main xs = df n square add 0 xs;;
"""

STREAM_SPEC = """
let loop (s, i) = step s i;;
let main = itermem read loop emit 0 ();;
"""

TABLE_MODULE = '''
from repro.core import EndOfStream, FunctionTable

TABLE = FunctionTable()
TABLE.register("square", ins=["int"], outs=["int"], cost=100.0)(lambda x: x * x)
TABLE.register("add", ins=["int", "int"], outs=["int"], cost=10.0)(
    lambda a, b: a + b
)

_count = {"i": 0}


def _read(_src):
    i = _count["i"]
    _count["i"] += 1
    if i >= 4:
        raise EndOfStream
    return i


TABLE.register("read", ins=["unit"], outs=["int"], cost=10.0)(_read)
TABLE.register("step", ins=["int", "int"], outs=["int", "int"], cost=10.0)(
    lambda s, i: (s + i, s + i)
)
TABLE.register("emit", ins=["int"], cost=5.0)(lambda y: None)


def make_table():
    return TABLE
'''


@pytest.fixture()
def workspace(tmp_path, monkeypatch):
    (tmp_path / "spec.ml").write_text(SPEC)
    (tmp_path / "stream.ml").write_text(STREAM_SPEC)
    (tmp_path / "app_functions.py").write_text(TABLE_MODULE)
    monkeypatch.chdir(tmp_path)
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop("app_functions", None)
    yield tmp_path
    sys.modules.pop("app_functions", None)


class TestParsers:
    def test_parse_architecture(self):
        assert parse_architecture("ring:8").n_processors == 8
        assert parse_architecture("mesh:2x3").n_processors == 6
        assert parse_architecture("now:4").channels["bus"].shared

    def test_parse_architecture_errors(self):
        with pytest.raises(SystemExit):
            parse_architecture("torus:4")
        with pytest.raises(SystemExit):
            parse_architecture("ring:lots")

    def test_load_table_attribute(self, workspace):
        table = load_table("app_functions:TABLE")
        assert "square" in table

    def test_load_table_factory(self, workspace):
        table = load_table("app_functions:make_table")
        assert "add" in table

    def test_load_table_errors(self, workspace):
        with pytest.raises(SystemExit, match="cannot import"):
            load_table("no_such_module:TABLE")
        with pytest.raises(SystemExit, match="no attribute"):
            load_table("app_functions:MISSING")
        with pytest.raises(SystemExit, match="module:attribute"):
            load_table("justamodule")

    def test_load_table_does_not_leak_sys_path(self, workspace):
        before = sys.path.count(".")
        load_table("app_functions:TABLE")
        assert sys.path.count(".") == before
        # The cleanup must also run on the failure paths.
        with pytest.raises(SystemExit):
            load_table("no_such_module:TABLE")
        assert sys.path.count(".") == before


class TestCommands:
    def test_typecheck(self, workspace, capsys):
        assert main(["typecheck", "spec.ml", "--functions",
                     "app_functions:TABLE"]) == 0
        out = capsys.readouterr().out
        assert "val main : int list -> int" in out

    def test_compile_summary(self, workspace, capsys):
        assert main([
            "compile", "spec.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:3",
        ]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free" in out
        assert "ring3" in out

    def test_compile_dot(self, workspace, capsys):
        main(["compile", "spec.ml", "--functions", "app_functions:TABLE",
              "--arch", "ring:3", "--emit", "dot"])
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_compile_macro(self, workspace, capsys):
        main(["compile", "spec.ml", "--functions", "app_functions:TABLE",
              "--arch", "ring:3", "--emit", "macro"])
        out = capsys.readouterr().out
        assert "define(`PROCESSOR', `p0')" in out

    def test_compile_python(self, workspace, capsys):
        main(["compile", "spec.ml", "--functions", "app_functions:TABLE",
              "--arch", "ring:3", "--emit", "python"])
        out = capsys.readouterr().out
        assert "def build_executive(kernel, table):" in out

    def test_emulate_stream(self, workspace, capsys):
        assert main([
            "emulate", "stream.ml", "--functions", "app_functions:TABLE",
        ]) == 0
        out = capsys.readouterr().out
        assert "final memory: 6" in out  # 0+1+2+3

    def test_simulate_with_gantt(self, workspace, capsys):
        import app_functions

        app_functions._count["i"] = 0
        assert main([
            "simulate", "stream.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:2", "--gantt", "--gantt-width", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "iteration(s)" in out
        assert "% busy" in out
        assert "p0" in out

    def test_missing_spec_file(self, workspace):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["typecheck", "ghost.ml", "--functions",
                  "app_functions:TABLE"])


class TestBackendSelection:
    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("emulate", "simulate", "threads", "processes", "tcp"):
            assert name in out

    def test_backends_capability_matrix(self, capsys):
        assert main(["backends"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        header, rows = lines[0], lines[1:]
        for column in ("backend", "faults", "realtime", "distributed",
                       "description"):
            assert column in header
        by_name = {row.split()[0]: row.split() for row in rows}
        assert list(by_name) == sorted(by_name)  # stable, sorted
        assert by_name["emulate"][1:4] == ["-", "-", "-"]
        assert by_name["processes"][1:4] == ["yes", "yes", "-"]
        assert by_name["tcp"][1:4] == ["yes", "yes", "yes"]

    def test_run_threads_one_shot(self, workspace, capsys):
        assert main([
            "run", "spec.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:3", "--arg", "[1, 2, 3]",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend threads" in out
        assert "result[0] = 14" in out  # 1 + 4 + 9

    def test_run_processes_stream(self, workspace, capsys):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("lambda tables need the fork start method")
        import app_functions

        app_functions._count["i"] = 0
        assert main([
            "run", "stream.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:2", "--backend", "processes",
            "--timeout", "60", "--start-method", "fork",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend processes" in out
        assert "outputs: [0, 1, 3, 6]" in out

    def test_simulate_with_emulate_backend(self, workspace, capsys):
        import app_functions

        app_functions._count["i"] = 0
        assert main([
            "simulate", "stream.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:2", "--backend", "emulate",
        ]) == 0
        assert "outputs: [0, 1, 3, 6]" in capsys.readouterr().out

    def test_trace_out_writes_chrome_json(self, workspace, capsys):
        import json

        import app_functions

        app_functions._count["i"] = 0
        assert main([
            "simulate", "stream.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:2", "--trace-out", "trace.json",
        ]) == 0
        doc = json.loads((workspace / "trace.json").read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "trace written" in capsys.readouterr().out

    def test_trace_out_creates_parent_dirs(self, workspace, capsys):
        import json

        import app_functions

        app_functions._count["i"] = 0
        assert main([
            "simulate", "stream.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:2",
            "--trace-out", "artifacts/traces/run1.json",
        ]) == 0
        path = workspace / "artifacts" / "traces" / "run1.json"
        assert json.loads(path.read_text())["traceEvents"]


class TestProfileFlag:
    def test_simulate_with_profile(self, workspace, capsys):
        import app_functions

        app_functions._count["i"] = 0
        assert main([
            "simulate", "stream.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:2", "--profile", "2",
        ]) == 0
        out = capsys.readouterr().out
        # Profiling consumed 2 frames and nothing rewinds the module-level
        # counter, so the run sees the remaining 2 of 4.
        assert "2 iteration(s)" in out

    def test_compile_with_profile(self, workspace, capsys):
        import app_functions

        app_functions._count["i"] = 0
        assert main([
            "compile", "stream.ml", "--functions", "app_functions:TABLE",
            "--arch", "ring:2", "--profile", "1",
        ]) == 0
        assert "deadlock-free" in capsys.readouterr().out


# -- the distributed backend through the CLI ----------------------------------

NET_TABLE_MODULE = '''
from repro.core import FunctionTable


def square(x):
    return x * x


def add(a, b):
    return a + b


TABLE = FunctionTable()
TABLE.register("square", ins=["int"], outs=["int"], cost=100.0)(square)
TABLE.register("add", ins=["int", "int"], outs=["int"], cost=10.0)(add)
'''


@pytest.fixture()
def net_workspace(tmp_path, monkeypatch):
    """A workspace whose table is module-level defs: tcp workers must be
    able to import (and pickle) every registered function."""
    (tmp_path / "spec.ml").write_text(SPEC)
    (tmp_path / "net_functions.py").write_text(NET_TABLE_MODULE)
    monkeypatch.chdir(tmp_path)
    monkeypatch.syspath_prepend(str(tmp_path))
    sys.modules.pop("net_functions", None)
    yield tmp_path
    sys.modules.pop("net_functions", None)


class TestDistributedCli:
    def test_run_tcp_private_cluster(self, net_workspace, capsys):
        assert main([
            "run", "spec.ml", "--functions", "net_functions:TABLE",
            "--arch", "ring:3", "--arg", "[1, 2, 3]",
            "--backend", "tcp", "--cluster", "2", "--timeout", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "backend tcp" in out
        assert "result[0] = 14" in out  # 1 + 4 + 9

    def test_worker_rejects_bad_address(self, capsys):
        assert main(["worker", "--connect", "7070"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
