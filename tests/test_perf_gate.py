"""Unit tests for the benchmark perf gate (benchmarks/perf_gate.py)."""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks")
)

from perf_gate import gate_file, judge, main, resolve  # noqa: E402


class TestResolve:
    def test_keys_and_indices(self):
        doc = {"rows": [{"a": 1}, {"a": 2}]}
        assert resolve(doc, ["rows", 1, "a"]) == 2

    def test_match_object_selects_by_content(self):
        doc = {"rows": [
            {"policy": "block", "p99": 10.0},
            {"policy": "shed-oldest", "p99": 4.0},
        ]}
        path = ["rows", {"policy": "shed-oldest"}, "p99"]
        assert resolve(doc, path) == 4.0
        # Reordering the rows must not change the answer.
        doc["rows"].reverse()
        assert resolve(doc, path) == 4.0

    def test_match_object_multiple_fields(self):
        doc = [{"p": "a", "w": 1, "v": 10}, {"p": "a", "w": 2, "v": 20}]
        assert resolve(doc, [{"p": "a", "w": 2}, "v"]) == 20

    def test_no_match_raises(self):
        with pytest.raises(KeyError):
            resolve({"rows": []}, ["rows", {"policy": "nope"}])


class TestJudge:
    def test_max_direction_floors(self):
        metric = {"name": "x", "baseline": 2.0, "direction": "max",
                  "tolerance": 0.25}
        assert judge(metric, 1.6)["ok"]       # 20% down: inside tolerance
        assert not judge(metric, 1.4)["ok"]   # 30% down: regression

    def test_min_direction_ceilings(self):
        metric = {"name": "x", "baseline": 10.0, "direction": "min",
                  "tolerance": 0.25}
        assert judge(metric, 12.0)["ok"]
        assert not judge(metric, 13.0)["ok"]

    def test_default_tolerance_is_25_percent(self):
        metric = {"name": "x", "baseline": 100.0, "direction": "max"}
        assert judge(metric, 76.0)["ok"]
        assert not judge(metric, 74.0)["ok"]

    def test_zero_tolerance_is_exact(self):
        metric = {"name": "x", "baseline": 0.0, "direction": "min",
                  "tolerance": 0.0}
        assert judge(metric, 0.0)["ok"]
        assert not judge(metric, 0.001)["ok"]

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            judge({"name": "x", "baseline": 1.0, "direction": "sideways"}, 1.0)


class TestGateFile:
    def _spec(self, tmp_path, metrics, artifact="BENCH_t.json"):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"artifact": artifact, "metrics": metrics}))
        return str(path)

    def test_missing_artifact_fails_every_metric(self, tmp_path):
        spec = self._spec(tmp_path, [
            {"name": "a", "path": ["a"], "baseline": 1.0},
            {"name": "b", "path": ["b"], "baseline": 1.0},
        ])
        rows = gate_file(spec, str(tmp_path))
        assert len(rows) == 2
        assert all(not r["ok"] for r in rows)
        assert all("missing artifact" in r["error"] for r in rows)

    def test_unresolvable_path_fails_that_metric_only(self, tmp_path):
        (tmp_path / "BENCH_t.json").write_text(json.dumps({"good": 5.0}))
        spec = self._spec(tmp_path, [
            {"name": "good", "path": ["good"], "baseline": 4.0},
            {"name": "gone", "path": ["gone"], "baseline": 4.0},
        ])
        rows = gate_file(spec, str(tmp_path))
        assert rows[0]["ok"]
        assert not rows[1]["ok"] and "unresolvable" in rows[1]["error"]

    def test_main_exit_codes(self, tmp_path, capsys):
        (tmp_path / "BENCH_t.json").write_text(json.dumps({"m": 10.0}))
        base = tmp_path / "baselines"
        base.mkdir()
        (base / "t.json").write_text(json.dumps({
            "artifact": "BENCH_t.json",
            "metrics": [{"name": "m", "path": ["m"], "baseline": 9.0}],
        }))
        argv = ["--artifacts-dir", str(tmp_path), "--baselines", str(base)]
        assert main(argv) == 0
        assert "perf gate: PASS" in capsys.readouterr().out
        (base / "t.json").write_text(json.dumps({
            "artifact": "BENCH_t.json",
            "metrics": [{"name": "m", "path": ["m"], "baseline": 20.0}],
        }))
        assert main(argv) == 1
        assert "perf gate: FAIL" in capsys.readouterr().out

    def test_repo_baselines_are_wellformed(self):
        """Every checked-in baseline spec parses and names real paths."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        base = os.path.join(root, "benchmarks", "baselines")
        specs = [f for f in os.listdir(base) if f.endswith(".json")]
        assert len(specs) >= 4
        for name in specs:
            with open(os.path.join(base, name)) as handle:
                spec = json.load(handle)
            assert spec["artifact"].startswith("BENCH_")
            for metric in spec["metrics"]:
                assert metric["name"]
                assert isinstance(metric["path"], list)
                assert metric.get("direction", "max") in ("max", "min")
                float(metric["baseline"])
