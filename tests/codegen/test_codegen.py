"""Tests for macro-code emission and the generated Python executive."""

import pytest

from repro.core import (
    EndOfStream,
    FunctionTable,
    ProgramBuilder,
    TaskOutcome,
    emulate,
    emulate_once,
)
from repro.codegen import (
    KERNEL_PRIMITIVES,
    ThreadKernel,
    emit_all,
    emit_macro,
    generate_python,
    load_executive,
    run_generated,
)
from repro.codegen.kernel import Shutdown, Stop
from repro.pnt import expand_program
from repro.syndex import distribute, ring


def df_program(degree=3):
    table = FunctionTable()
    table.register("sq", ins=["int"], outs=["int"])(lambda x: x * x)
    table.register("add", ins=["int", "int"], outs=["int"])(lambda a, b: a + b)
    b = ProgramBuilder("sumsq", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="sq", acc="add", z=b.const(0), xs=xs)
    prog = b.returns(r)
    mapping = distribute(expand_program(prog, table), ring(degree))
    return prog, table, mapping


class TestKernel:
    def test_send_recv_roundtrip(self):
        kernel = ThreadKernel()
        kernel.send_("e0", 42)
        assert kernel.recv_("e0") == 42

    def test_alt_picks_ready_channel(self):
        kernel = ThreadKernel()
        kernel.send_("b", "hello")
        edge, value = kernel.alt_(["a", "b"])
        assert (edge, value) == ("b", "hello")

    def test_stop_token(self):
        kernel = ThreadKernel()
        kernel.stop_("e0")
        assert kernel.is_stop(kernel.recv_("e0"))
        assert not kernel.is_stop(42)

    def test_spawn_runs_body(self):
        kernel = ThreadKernel()
        done = []
        t = kernel.spawn_("t", lambda: done.append(1))
        t.join(5)
        assert done == [1]

    def test_shutdown_unwinds_blocked_thread(self):
        kernel = ThreadKernel()

        def blocked():
            kernel.recv_("never")

        t = kernel.spawn_("blocked", blocked)
        kernel.join_([], timeout=1)
        t.join(2)
        assert not t.is_alive()

    def test_primitive_set_documented(self):
        assert {"spawn_", "send_", "recv_", "call_", "alt_", "stop_", "join_"} <= set(
            KERNEL_PRIMITIVES
        )


class TestGeneratedSource:
    def test_source_compiles(self):
        _prog, _table, mapping = df_program()
        src = generate_python(mapping)
        module = load_executive(src)
        assert "build_executive" in module

    def test_source_groups_by_processor(self):
        _prog, _table, mapping = df_program()
        src = generate_python(mapping)
        for proc in mapping.arch.processor_ids():
            assert f"# ==== processor {proc} ====" in src

    def test_source_only_uses_kernel_primitives(self):
        """The generated code talks to the machine through the kernel only."""
        _prog, _table, mapping = df_program()
        src = generate_python(mapping)
        in_code = False
        for line in src.splitlines():
            if line.startswith("def build_executive"):
                in_code = True
            if in_code and "kernel." in line and '"""' not in line:
                import re

                call = re.match(r"\w+", line.split("kernel.")[1]).group(0)
                assert call in (
                    "send_", "recv_", "call_", "stop_", "alt_", "spawn_",
                    "is_stop", "blackboard",
                )

    def test_mentions_every_process(self):
        _prog, _table, mapping = df_program()
        src = generate_python(mapping)
        for pid in mapping.graph.processes:
            assert pid.replace(".", "_") in src


class TestGeneratedExecution:
    def test_df_one_shot(self):
        prog, table, mapping = df_program()
        bb = run_generated(mapping, table, args=([1, 2, 3, 4],))
        assert bb["result_0"] == 30
        assert bb["result_0"] == emulate_once(prog, table, [1, 2, 3, 4])[0]

    def test_df_empty_list(self):
        _prog, table, mapping = df_program()
        bb = run_generated(mapping, table, args=([],))
        assert bb["result_0"] == 0

    def test_scm_with_short_split(self):
        table = FunctionTable()

        def chunk(n, xs):
            out = [xs[i::n] for i in range(n)]
            return [c for c in out if c]

        table.register("chunk", ins=["int", "int list"], outs=["int list list"])(chunk)
        table.register("sumlist", ins=["int list"], outs=["int"])(sum)
        table.register("total", ins=["int list", "int list"], outs=["int"])(
            lambda _o, parts: sum(parts)
        )
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        r = b.scm(6, split="chunk", comp="sumlist", merge="total", x=xs)
        prog = b.returns(r)
        mapping = distribute(expand_program(prog, table), ring(3))
        bb = run_generated(mapping, table, args=([1, 2, 3],))
        assert bb["result_0"] == 6

    def test_tf_divide_and_conquer(self):
        table = FunctionTable()

        def divide(iv):
            lo, hi = iv
            if hi - lo <= 3:
                return TaskOutcome(results=list(range(lo, hi)))
            mid = (lo + hi) // 2
            return TaskOutcome(subtasks=[(lo, mid), (mid, hi)])

        table.register("divide", ins=["iv"], outs=["outcome"])(divide)
        table.register("add", ins=["int", "int"], outs=["int"])(lambda a, b: a + b)
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        r = b.tf(4, comp="divide", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(r)
        mapping = distribute(expand_program(prog, table), ring(4))
        bb = run_generated(mapping, table, args=([(0, 40)],))
        assert bb["result_0"] == sum(range(40))

    def test_stream_program(self):
        table = FunctionTable()
        frames = {"i": 0}

        @table.register("read", ins=["unit"], outs=["int"])
        def read(_src):
            i = frames["i"]
            frames["i"] += 1
            if i >= 5:
                raise EndOfStream
            return i

        table.register("step", ins=["int", "int"], outs=["int", "int"])(
            lambda s, i: (s + i, s + i)
        )
        table.register("emit", ins=["int"])(lambda y: None)
        b = ProgramBuilder("p", table)
        state, item = b.params("state", "item")
        s2, y = b.apply("step", state, item)
        prog = b.stream(s2, y, inp="read", out="emit", init_value=0, source=None)
        mapping = distribute(expand_program(prog, table), ring(2))
        bb = run_generated(mapping, table)
        assert bb["outputs"] == [0, 1, 3, 6, 10]
        assert bb["final_state"] == 10

    def test_stream_equals_emulation(self):
        def make():
            table = FunctionTable()
            frames = {"i": 0}

            @table.register("read", ins=["unit"], outs=["int list"])
            def read(_src):
                i = frames["i"]
                frames["i"] += 1
                if i >= 4:
                    raise EndOfStream
                return list(range(i + 1))

            table.register("neg", ins=["int"], outs=["int"])(lambda x: -x)
            table.register("add", ins=["int", "int"], outs=["int"])(
                lambda a, b: a + b
            )
            table.register("step", ins=["int", "int"], outs=["int", "int"])(
                lambda s, t: (s + t, t)
            )
            table.register("emit", ins=["int"])(lambda y: None)
            b = ProgramBuilder("p", table)
            state, item = b.params("state", "item")
            t = b.df(2, comp="neg", acc="add", z=b.const(0), xs=item)
            s2, y = b.apply("step", state, t)
            prog = b.stream(
                s2, y, inp="read", out="emit", init_value=0, source=None
            )
            return prog, table

        prog1, table1 = make()
        seq = emulate(prog1, table1, call_sink=False)
        prog2, table2 = make()
        mapping = distribute(expand_program(prog2, table2), ring(3))
        bb = run_generated(mapping, table2)
        assert bb["outputs"] == seq.outputs
        assert bb["final_state"] == seq.final_state

    def test_max_iterations(self):
        table = FunctionTable()
        table.register("read", ins=["unit"], outs=["int"])(lambda _s: 1)
        table.register("step", ins=["int", "int"], outs=["int", "int"])(
            lambda s, i: (s + i, s + i)
        )
        table.register("emit", ins=["int"])(lambda y: None)
        b = ProgramBuilder("p", table)
        state, item = b.params("state", "item")
        s2, y = b.apply("step", state, item)
        prog = b.stream(s2, y, inp="read", out="emit", init_value=0, source=None)
        mapping = distribute(expand_program(prog, table), ring(1))
        bb = run_generated(mapping, table, max_iterations=3)
        assert bb["outputs"] == [1, 2, 3]
        assert bb["final_state"] == 3

    def test_wrong_arg_count(self):
        _prog, table, mapping = df_program()
        with pytest.raises(ValueError, match="argument"):
            run_generated(mapping, table, args=())


class TestNestedSkeletonRoundTrip:
    """Codegen round-trip on a *nested* program: an ``itermem`` stream
    loop whose body chains an scm and a df farm (the flat-program tests
    above never exercise MEM + two farm protocols in one executive)."""

    SPEC = {
        "version": 1, "seed": 0, "kind": "stream", "arch": ["ring", 4],
        "input": [], "iterations": 3,
        "stages": [
            {"op": "expand", "fn": "spread"},
            {"op": "scm", "split": "chunk", "comp": "sumlist",
             "merge": "total", "degree": 3},
            {"op": "expand", "fn": "rangeto"},
            {"op": "df", "comp": "sq", "acc": "add", "degree": 2},
        ],
    }

    def _build(self):
        from repro.conformance import CaseSpec, build_case
        from repro.conformance.functions import reset_stream
        from repro.conformance.generator import make_arch

        built = build_case(CaseSpec.from_dict(self.SPEC))
        reset_stream()
        mapping = distribute(
            expand_program(built.program, built.table), make_arch(built.spec)
        )
        return built, mapping

    def test_generated_python_matches_emulation(self):
        from repro.conformance.functions import reset_stream

        built, mapping = self._build()
        seq = emulate(built.program, built.table,
                      max_iterations=built.max_iterations)
        reset_stream()
        bb = run_generated(mapping, built.table,
                           max_iterations=built.max_iterations)
        assert bb["outputs"] == seq.outputs
        assert bb["final_state"] == seq.final_state

    def test_generated_source_contains_both_farm_protocols(self):
        built, mapping = self._build()
        src = generate_python(mapping)
        module = load_executive(src)
        assert "build_executive" in module
        # both skeleton instances and the stream memory made it to code
        assert "scm0_split" in src and "scm0_merge" in src
        assert "df1_master" in src
        assert "mem" in src

    def test_macro_emission_covers_nested_processes(self):
        built, mapping = self._build()
        combined = "\n".join(emit_all(mapping).values())
        for pid in mapping.graph.processes:
            if mapping.graph[pid].kind in ("master", "split", "merge", "mem"):
                # macros name threads by raw pid, python code by mangled id
                assert pid in combined or pid.replace(".", "_") in combined, pid


class TestMacroEmission:
    def test_every_busy_processor_has_macro(self):
        _prog, _table, mapping = df_program()
        macros = emit_all(mapping)
        for proc, text in macros.items():
            assert f"define(`PROCESSOR', `{proc}')" in text
            assert "loop_" in text

    def test_macro_mentions_kernel_ops(self):
        _prog, _table, mapping = df_program()
        text = emit_macro(mapping, mapping.arch.io_processor())
        assert "alt_" in text  # the master lives on the I/O processor
        assert "call_" in text
        assert "send_" in text

    def test_remote_edges_annotated(self):
        _prog, _table, mapping = df_program()
        combined = "\n".join(emit_all(mapping).values())
        assert "local" in combined
        assert "->" in combined  # at least one remote edge annotation
