"""Tests for ``repro emit``: the standalone target and its backend."""

import json
import multiprocessing
import os
import subprocess
import sys

import pytest

from repro import __version__
from repro.backends import get_backend
from repro.backends.standalone_backend import run_emitted
from repro.codegen.targets import MANIFEST_NAME, EmitError, get_target
from repro.codegen.targets.standalone_target import (
    functions_module_source,
    parse_blackboard,
    render_blackboard,
)
from repro.conformance.functions import reset_stream
from repro.conformance.generator import build_case, generate_case
from repro.conformance.oracle import build_mapping
from repro.core.functions import FunctionTable


def _case(seed):
    built = build_case(generate_case(seed))
    return built, build_mapping(built)


def _emit(tmp_path, seed):
    built, mapping = _case(seed)
    reset_stream()
    out = str(tmp_path / f"deploy{seed}")
    files = get_target("standalone").emit(
        mapping, built.table, out, max_iterations=built.max_iterations
    )
    return built, mapping, out, files


class TestEmit:
    def test_emits_the_full_file_set(self, tmp_path):
        _, _, out, files = _emit(tmp_path, 0)
        assert files == [
            "executive.py", "functions.py", "main.py",
            "skipper_kernel.py", MANIFEST_NAME,
        ]
        for rel in files:
            assert os.path.exists(os.path.join(out, rel))

    def test_manifest_contents(self, tmp_path):
        built, mapping, out, files = _emit(tmp_path, 0)
        with open(os.path.join(out, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["schema"] == 1
        assert manifest["target"] == "standalone"
        assert manifest["repro_version"] == __version__
        assert manifest["program"] == mapping.graph.name
        assert manifest["architecture"] == mapping.arch.name
        from repro.serve.cache import arch_fingerprint, table_fingerprint

        assert manifest["fingerprints"]["table"] == table_fingerprint(
            built.table
        )
        assert manifest["fingerprints"]["architecture"] == arch_fingerprint(
            mapping.arch
        )
        # Every emitted file (except the manifest itself) is hashed.
        assert sorted(manifest["files"]) == sorted(
            rel for rel in files if rel != MANIFEST_NAME
        )
        import hashlib

        for rel, digest in manifest["files"].items():
            with open(os.path.join(out, rel), "rb") as handle:
                assert hashlib.sha256(handle.read()).hexdigest() == digest

    def test_executive_imports_only_the_inlined_kernel(self, tmp_path):
        _, _, out, _ = _emit(tmp_path, 0)
        for rel in ("executive.py", "functions.py", "main.py",
                    "skipper_kernel.py"):
            with open(os.path.join(out, rel)) as handle:
                text = handle.read()
            assert "import repro" not in text
            assert "from repro" not in text

    def test_lambda_table_rejected(self):
        table = FunctionTable()
        table.register("sq", ins=["int"], outs=["int"])(lambda x: x * x)
        with pytest.raises(EmitError, match="lambda"):
            functions_module_source(table)

    def test_builtin_table_rejected(self):
        table = FunctionTable()
        table.register("ln", ins=["int"], outs=["int"])(len)
        with pytest.raises(EmitError, match="not a module-level"):
            functions_module_source(table)


class TestRenderBlackboard:
    def test_round_trip(self):
        blackboard = {
            "result_0": [1, 2, 3],
            "outputs": [None, "x"],
            "final_state": 7,
            "arg_xs": [9],       # seeds are not results: not rendered
            "_scratch": object(),
        }
        text = render_blackboard(blackboard)
        assert parse_blackboard(text) == {
            "result_0": [1, 2, 3],
            "outputs": [None, "x"],
            "final_state": 7,
        }

    def test_rejects_garbage(self):
        with pytest.raises(EmitError, match="unparseable"):
            parse_blackboard("not a result line\n")


class TestStandaloneRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_byte_identical_to_run_generated(self, tmp_path, seed):
        """The acceptance bar: the emitted program's stdout equals the
        host-side rendering of a `repro run` blackboard, byte for byte,
        with no repro importable in the child."""
        from repro.codegen import run_generated

        built, mapping, out, _ = _emit(tmp_path, seed)
        args = tuple(built.args) if built.args else None
        reset_stream()
        host = run_generated(
            mapping, built.table,
            max_iterations=built.max_iterations, args=args, timeout=30.0,
        )
        expected = render_blackboard(host)

        argv = [sys.executable, "main.py", "--timeout", "30"]
        for value in args or ():
            argv += ["--arg", repr(value)]
        env = dict(os.environ, PYTHONPATH="")
        proc = subprocess.run(
            argv, cwd=out, env=env, timeout=60.0,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == expected

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_round_trip_under_start_method(self, tmp_path, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        built, mapping, out, _ = _emit(tmp_path, 1)
        args = tuple(built.args) if built.args else None
        reset_stream()
        inline = run_emitted(
            out, args=args, max_iterations=built.max_iterations,
            timeout=60.0, start_method="inline",
        )
        reset_stream()
        child = run_emitted(
            out, args=args, max_iterations=built.max_iterations,
            timeout=60.0, start_method=start_method,
        )
        assert child == inline


class TestStandaloneBackend:
    def test_backend_agrees_with_threads(self):
        built, mapping = _case(2)
        args = tuple(built.args) if built.args else None
        kw = dict(
            max_iterations=built.max_iterations, args=args, timeout=60.0
        )
        reset_stream()
        threads = get_backend("threads").run(mapping, built.table, **kw)
        reset_stream()
        standalone = get_backend("standalone").run(
            mapping, built.table, **kw
        )
        assert standalone.outputs == threads.outputs
        assert standalone.final_state == threads.final_state
        assert standalone.one_shot_results == threads.one_shot_results

    def test_keep_dir_preserves_the_emission(self, tmp_path):
        built, mapping = _case(0)
        args = tuple(built.args) if built.args else None
        out = str(tmp_path / "kept")
        reset_stream()
        report = get_backend("standalone").run(
            mapping, built.table,
            max_iterations=built.max_iterations, args=args,
            timeout=60.0, keep_dir=out,
        )
        assert report.emitted_dir == out
        assert os.path.exists(os.path.join(out, MANIFEST_NAME))

    def test_fault_plan_rejected(self):
        from repro.backends import BackendError

        built, mapping = _case(0)
        with pytest.raises(BackendError, match="fault"):
            get_backend("standalone").run(
                mapping, built.table, fault_plan=object()
            )
