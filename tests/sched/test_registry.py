"""The Scheduler interface, its registry, and the LPT assignment half."""

import pytest

from repro.core import FunctionTable, ProgramBuilder
from repro.pnt import expand_program
from repro.sched import (
    DEFAULT_SCHEDULER,
    Scheduler,
    get_scheduler,
    list_schedulers,
    resolve_scheduler,
    scheduler_names,
)
from repro.sched.registry import _lpt_assign
from repro.syndex import distribute, ring


def farm_table():
    table = FunctionTable()
    table.register("feed", ins=["unit"], outs=["'a list"])(lambda _: [])
    table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
    table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
    table.register("step", ins=["'c", "'a list"], outs=["'c", "'d"])(
        lambda s, xs: (s, None)
    )
    table.register("emit", ins=["'d"])(lambda y: None)
    return table


def df_stream_graph(degree=4):
    table = farm_table()
    b = ProgramBuilder("app", table)
    state, item = b.params("state", "item")
    total = b.df(degree, comp="comp", acc="acc", z=state, xs=item)
    s2, y = b.apply("step", total, item)
    prog = b.stream(s2, y, inp="feed", out="emit", init_value=0, source=None)
    return expand_program(prog, table)


class TestRegistry:
    def test_at_least_two_policies_registered(self):
        names = scheduler_names()
        assert len(names) >= 2
        assert "round-robin" in names
        assert "bicriteria" in names

    def test_listing_carries_descriptions(self):
        for entry in list_schedulers():
            assert entry["name"] and entry["description"]

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError, match="round-robin"):
            get_scheduler("fifo")

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert resolve_scheduler().name == DEFAULT_SCHEDULER
        monkeypatch.setenv("REPRO_SCHEDULER", "round-robin")
        assert resolve_scheduler().name == "round-robin"
        # An explicit name wins over the environment.
        assert resolve_scheduler("aaa").name == "aaa"

    def test_register_requires_a_name(self):
        from repro.sched.registry import register_scheduler

        class Nameless(Scheduler):
            pass

        with pytest.raises(ValueError, match="no name"):
            register_scheduler(Nameless)

    def test_every_policy_places_every_process(self):
        graph = df_stream_graph(4)
        for name in scheduler_names():
            mapping = get_scheduler(name).place(graph, ring(5))
            assert set(mapping.assignment) == set(graph.processes)
            mapping.validate()


class TestAssignment:
    def test_default_assign_is_round_robin(self):
        graph = df_stream_graph(2)
        mapping = distribute(graph, ring(3))
        workers = ["w0", "w1"]
        dealt = get_scheduler("round-robin").assign(
            mapping, ["p0", "p1", "p2"], workers
        )
        assert dealt == {"p0": "w0", "p1": "w1", "p2": "w0"}

    def test_lpt_separates_the_two_heaviest(self):
        from repro.sched.costmodel import processor_loads

        graph = df_stream_graph(4)
        mapping = distribute(graph, ring(4))
        durations = {"df0.master": 5.0}
        for index in range(4):
            durations[f"df0.worker{index}"] = 100.0 - index
        dealt = _lpt_assign(mapping, mapping.arch.processor_ids(),
                            ["w0", "w1"], durations)
        loads = processor_loads(mapping, durations=durations)
        top_two = sorted(loads, key=loads.get, reverse=True)[:2]
        # The first two LPT placements land on distinct empty workers.
        assert dealt[top_two[0]] != dealt[top_two[1]]

    def test_lpt_covers_every_processor(self):
        graph = df_stream_graph(4)
        mapping = distribute(graph, ring(4))
        dealt = get_scheduler("bicriteria").assign(
            mapping, mapping.arch.processor_ids(), ["w0", "w1", "w2"]
        )
        assert set(dealt) == set(mapping.arch.processor_ids())
