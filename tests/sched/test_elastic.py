"""Elastic scale-up: sustained-overload hysteresis onto scale_to."""

import pytest

from repro.sched.elastic import ElasticController, ElasticPolicy


class FakeHarness:
    def __init__(self, size=2):
        self.size = size
        self.calls = []

    def scale_to(self, n):
        self.calls.append(n)
        self.size = n
        return n


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def controller(policy, size=2):
    harness = FakeHarness(size)
    clock = FakeClock()
    return ElasticController(harness, policy, clock=clock), harness, clock


class TestHysteresis:
    def test_one_burst_never_scales(self):
        ctl, harness, _ = controller(ElasticPolicy(sustain=2))
        assert ctl.observe(5.0) is None
        assert ctl.observe(0.0) is None  # calm resets the streak
        assert ctl.observe(5.0) is None
        assert harness.calls == []

    def test_sustained_overload_scales_by_step(self):
        ctl, harness, _ = controller(
            ElasticPolicy(sustain=2, step=2, max_workers=8)
        )
        assert ctl.observe(5.0) is None
        decision = ctl.observe(5.0)
        assert decision is not None
        assert (decision.size_before, decision.size_after) == (2, 4)
        assert harness.calls == [4]
        assert ctl.size == 4

    def test_threshold_is_strictly_greater_than(self):
        ctl, harness, _ = controller(
            ElasticPolicy(sustain=1, surge_threshold=3.0)
        )
        assert ctl.observe(3.0) is None  # at threshold: calm
        assert ctl.observe(3.1) is not None
        assert harness.size == 3

    def test_streak_resets_after_scaling(self):
        ctl, harness, clock = controller(
            ElasticPolicy(sustain=2, cooldown_s=0.0)
        )
        ctl.observe(5.0)
        assert ctl.observe(5.0) is not None
        # The next scale-up needs a fresh sustained streak.
        assert ctl.observe(5.0) is None
        assert ctl.observe(5.0) is not None
        assert harness.calls == [3, 4]


class TestCooldownAndCeiling:
    def test_cooldown_blocks_back_to_back_scaling(self):
        ctl, harness, clock = controller(
            ElasticPolicy(sustain=1, cooldown_s=2.0)
        )
        assert ctl.observe(5.0) is not None
        clock.now = 1.0
        assert ctl.observe(5.0) is None  # still cooling down
        clock.now = 2.5
        assert ctl.observe(5.0) is not None
        assert harness.calls == [3, 4]

    def test_max_workers_is_a_hard_ceiling(self):
        ctl, harness, _ = controller(
            ElasticPolicy(sustain=1, cooldown_s=0.0, max_workers=3, step=2)
        )
        first = ctl.observe(5.0)
        assert (first.size_before, first.size_after) == (2, 3)  # clamped
        assert ctl.observe(5.0) is None  # at the ceiling: no-op
        assert harness.calls == [3]

    def test_decisions_accumulate_in_order(self):
        ctl, _, _ = controller(ElasticPolicy(sustain=1, cooldown_s=0.0,
                                             max_workers=4))
        ctl.observe(1.0)
        ctl.observe(2.0)
        assert [d.size_after for d in ctl.decisions] == [3, 4]
        assert [d.pressure for d in ctl.decisions] == [1.0, 2.0]


class TestPolicyValidation:
    def test_rejects_nonsense_knobs(self):
        with pytest.raises(ValueError):
            ElasticPolicy(max_workers=0)
        with pytest.raises(ValueError):
            ElasticPolicy(sustain=0)
        with pytest.raises(ValueError):
            ElasticPolicy(step=0)


class TestRealHarness:
    def test_scale_to_grows_a_live_pool(self):
        from repro.net.harness import ClusterHarness

        harness = ClusterHarness(size=2, spawn=False)
        try:
            assert harness.scale_to(4) == 4
            assert harness.scale_to(3) == 4  # up-only: shrink is a no-op
            assert harness.size == 4
        finally:
            harness.shutdown()
