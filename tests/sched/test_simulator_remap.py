"""Online re-mapping, reproduced deterministically in virtual time.

The simulator models the count-based re-map protocol — confirm a
limping verdict over N farm completions, then exclude the processor
from dispatch entirely — so the chaos proof's re-mapping arm must
reproduce in virtual microseconds: the migrated arm beats the
demotion-only arm, holds p99 within 2x the no-fault baseline, keeps
outputs bit-identical, and replays the exact same decision sequence
run after run (the virtual-time parity property of ISSUE 10).
"""

from repro.faults import FaultPlan, FaultPolicy, FaultSpec
from repro.health import HealthPolicy
from repro.sched.remap import RemapPolicy

from tests.health.test_simulator import (
    LIMP_PLAN,
    make_stream_farm,
    p99,
    run,
)


def remap_policy():
    return FaultPolicy(remap=RemapPolicy())


class TestVirtualRemap:
    def test_remapping_restores_p99_in_virtual_time(self):
        mapping, table, counter = make_stream_farm()
        plan = FaultPlan([FaultSpec(**LIMP_PLAN[0])])

        baseline = run(counter, mapping, table)
        demoted = run(counter, mapping, table, fault_plan=plan)
        remapped = run(counter, mapping, table, fault_plan=plan,
                       fault_policy=remap_policy())

        # Migration never changes results: bit-identical output stream
        # and final state against the fault-free run.
        assert remapped.outputs == baseline.outputs
        assert remapped.final_state == baseline.final_state

        base = p99(baseline)
        assert p99(remapped) <= 2.0 * base, (p99(remapped), base)
        # Full dispatch exclusion beats the keep_stride trickle that
        # demotion alone still sends to the limping worker.
        assert p99(remapped) < p99(demoted), (p99(remapped), p99(demoted))

        faults = remapped.faults
        assert any("df0.worker3" in tag for tag in faults.remaps)
        assert any(r.category == "remap" for r in faults.records)

    def test_remap_decisions_reproduce_exactly(self):
        mapping, table, counter = make_stream_farm()
        plan = FaultPlan([FaultSpec(**LIMP_PLAN[0])])
        first = run(counter, mapping, table, fault_plan=plan,
                    fault_policy=remap_policy())
        second = run(counter, mapping, table, fault_plan=plan,
                     fault_policy=remap_policy())
        assert ([r.latency for r in first.iterations]
                == [r.latency for r in second.iterations])
        assert first.makespan == second.makespan
        key = lambda report: [  # noqa: E731 - local shorthand
            (r.category, r.kind, r.target, r.time_us)
            for r in report.faults.records if r.category == "remap"
        ]
        assert key(first) == key(second)
        assert key(first)  # the decision actually happened

    def test_remap_requires_health_scoring(self):
        # Re-mapping consumes limping verdicts; with the detector off
        # there is nothing to confirm and nobody migrates.
        mapping, table, counter = make_stream_farm()
        plan = FaultPlan([FaultSpec(**LIMP_PLAN[0])])
        report = run(
            counter, mapping, table, fault_plan=plan,
            fault_policy=FaultPolicy(
                health=HealthPolicy(enabled=False), remap=RemapPolicy()),
        )
        assert not report.faults.remaps

    def test_disabled_remap_policy_is_inert(self):
        mapping, table, counter = make_stream_farm()
        plan = FaultPlan([FaultSpec(**LIMP_PLAN[0])])
        report = run(
            counter, mapping, table, fault_plan=plan,
            fault_policy=FaultPolicy(remap=RemapPolicy(enabled=False)),
        )
        assert not report.faults.remaps
        # The demotion defense still runs underneath.
        assert any("df0.worker3" in tag for tag in report.faults.limping)
