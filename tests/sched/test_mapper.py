"""The bi-criteria Pareto search and its calibrated cost model."""

from repro.core import FunctionTable, ProgramBuilder
from repro.pnt import expand_program
from repro.sched.costmodel import predict, processor_loads, speeds_from_report
from repro.sched.mapper import (
    Candidate,
    bicriteria_map,
    bicriteria_search,
    pareto_front,
)
from repro.syndex import distribute, ring, round_robin


def farm_table():
    table = FunctionTable()
    table.register("feed", ins=["unit"], outs=["'a list"])(lambda _: [])
    table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
    table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
    table.register("step", ins=["'c", "'a list"], outs=["'c", "'d"])(
        lambda s, xs: (s, None)
    )
    table.register("emit", ins=["'d"])(lambda y: None)
    return table


def df_stream_graph(degree=4):
    table = farm_table()
    b = ProgramBuilder("app", table)
    state, item = b.params("state", "item")
    total = b.df(degree, comp="comp", acc="acc", z=state, xs=item)
    s2, y = b.apply("step", total, item)
    prog = b.stream(s2, y, inp="feed", out="emit", init_value=0, source=None)
    return expand_program(prog, table)


def heterogeneous_durations(graph):
    """Per-process costs that punish naive dealing: one worker is 8x
    heavier than its siblings, and the post-farm step is heavy too."""
    durations = {}
    for pid, process in graph.processes.items():
        durations[pid] = 100.0
        if pid.endswith("worker0"):
            durations[pid] = 800.0
        elif ".worker" in pid:
            durations[pid] = 100.0
        elif pid.startswith("step"):
            durations[pid] = 600.0
    return durations


class TestCostModel:
    def test_loads_cover_every_processor(self):
        graph = df_stream_graph(4)
        mapping = distribute(graph, ring(4))
        loads = processor_loads(mapping)
        assert set(loads) == set(mapping.arch.processor_ids())
        assert all(v >= 0.0 for v in loads.values())

    def test_worker_speeds_inflate_the_slow_processor(self):
        graph = df_stream_graph(4)
        mapping = distribute(graph, ring(4))
        base = processor_loads(mapping)
        slow_proc = mapping.processor_of("df0.worker0")
        slowed = processor_loads(mapping, worker_speeds={slow_proc: 0.25})
        assert slowed[slow_proc] > base[slow_proc] * 3.9
        for proc, load in base.items():
            if proc != slow_proc:
                assert slowed[proc] == load

    def test_more_replicas_means_higher_reliability(self):
        graph = df_stream_graph(4)
        spread = predict(distribute(graph, ring(5)))
        packed = predict(distribute(graph, ring(2)))
        assert spread.replication["df0"] > packed.replication["df0"]
        assert spread.reliability > packed.reliability

    def test_speeds_from_report_scores_against_the_median(self):
        class Rec:
            def __init__(self, target, value, time_us, processor=None):
                self.target = target
                self.value = value
                self.time_us = time_us
                self.processor = processor

        class Report:
            def by_category(self, name):
                assert name == "health"
                return [
                    Rec("p1", 10.0, 1.0),
                    Rec("p2", 10.0, 1.0),
                    Rec("p3", 40.0, 1.0),
                    Rec("p3", 30.0, 2.0),  # later sample wins
                ]

        speeds = speeds_from_report(Report())
        assert speeds["p1"] == 1.0
        assert abs(speeds["p3"] - 10.0 / 30.0) < 1e-12
        assert speeds_from_report(None) == {}


class TestParetoFront:
    def cand(self, latency, period, rel):
        class E:
            latency_us = latency
            period_us = period
            reliability = rel

        return Candidate(mapping=None, estimate=E())

    def test_dominated_points_drop_out(self):
        good = self.cand(10.0, 5.0, 0.99)
        worse = self.cand(12.0, 6.0, 0.98)
        tradeoff = self.cand(8.0, 9.0, 0.99)
        front = pareto_front([good, worse, tradeoff])
        assert worse not in front
        assert good in front and tradeoff in front

    def test_criteria_aliases_collapse_to_one_point(self):
        a = self.cand(10.0, 5.0, 0.99)
        b = self.cand(10.0, 5.0, 0.99)
        assert len(pareto_front([a, b])) == 1


class TestBicriteriaSearch:
    def test_beats_round_robin_on_heterogeneous_costs(self):
        graph = df_stream_graph(4)
        arch = ring(4)
        durations = heterogeneous_durations(graph)
        best = predict(
            bicriteria_map(graph, arch, durations=durations),
            durations=durations,
        )
        naive = predict(round_robin(graph, arch), durations=durations)
        assert best.period_us < naive.period_us
        assert best.latency_us <= naive.latency_us

    def test_never_worse_than_the_aaa_seed(self):
        graph = df_stream_graph(4)
        arch = ring(4)
        durations = heterogeneous_durations(graph)
        seed = predict(distribute(graph, arch, durations=durations),
                       durations=durations)
        best, front = bicriteria_search(graph, arch, durations=durations)
        assert best.estimate.latency_us * best.estimate.period_us <= \
            seed.latency_us * seed.period_us + 1e-9
        assert front  # the seed itself is always evaluated

    def test_search_is_deterministic(self):
        graph = df_stream_graph(4)
        arch = ring(4)
        durations = heterogeneous_durations(graph)
        first, _ = bicriteria_search(graph, arch, durations=durations)
        second, _ = bicriteria_search(graph, arch, durations=durations)
        assert first.mapping.assignment == second.mapping.assignment

    def test_front_is_mutually_non_dominated(self):
        graph = df_stream_graph(4)
        _, front = bicriteria_search(
            graph, ring(4), durations=heterogeneous_durations(graph)
        )
        for c in front:
            assert not any(c.dominated_by(other) for other in front)

    def test_latency_budget_prefers_throughput_inside_it(self):
        graph = df_stream_graph(4)
        arch = ring(4)
        durations = heterogeneous_durations(graph)
        unconstrained, _ = bicriteria_search(graph, arch,
                                             durations=durations)
        budget = unconstrained.estimate.latency_us * 4
        constrained, _ = bicriteria_search(
            graph, arch, durations=durations, latency_budget_us=budget
        )
        assert constrained.estimate.latency_us <= budget
        assert constrained.estimate.period_us <= \
            unconstrained.estimate.period_us + 1e-9

    def test_throughput_target_keeps_the_period_under_the_cap(self):
        graph = df_stream_graph(4)
        arch = ring(4)
        durations = heterogeneous_durations(graph)
        loose, _ = bicriteria_search(graph, arch, durations=durations)
        cap_hz = loose.estimate.throughput_hz / 2  # easily feasible
        targeted, _ = bicriteria_search(
            graph, arch, durations=durations, throughput_target_hz=cap_hz
        )
        assert targeted.estimate.period_us <= 1e6 / cap_hz

    def test_every_candidate_validates(self):
        graph = df_stream_graph(4)
        mapping = bicriteria_map(
            graph, ring(3), durations=heterogeneous_durations(graph)
        )
        mapping.validate()
        assert set(mapping.assignment) == set(graph.processes)
