"""The online re-mapping chaos proof, on real backends.

One of eight farm workers limps — every computation 12x slower with a
perfectly fresh heartbeat — for the whole stream.  With the re-mapper
armed the supervisor confirms the limping verdict over N completions,
migrates every processor off the degraded worker (draining its
in-flight packets onto survivors), and the farm's steady-state p99
returns to within 2x the no-fault baseline — the ISSUE 10 acceptance
bound, tighter than the 3x the demotion-only defense promises, because
the limping worker no longer serves even the keep-alive trickle.

Warm-up frames are excluded from the percentile: detection needs
``min_samples`` completions and migration another ``confirm_completions``
on top, so the first frames ride degraded by design.
"""

import math

import pytest

from repro.net import ClusterHarness
from repro.realtime.soak import run_soak
from repro.sched.remap import RemapPolicy

from tests.health.test_chaos_limplock import (
    LIMP_WORKER,
    SOAK,
    the_plan,
)

#: Longer than the demotion proof's 12: the re-mapper needs the limping
#: verdict (min_samples) *and* its confirmation streak before the
#: migration lands, so give the defense the first quarter of the run.
WARMUP_FRAMES = 16


def tail_p99_us(result, warmup=WARMUP_FRAMES):
    """Nearest-rank p99 over post-warm-up delivered frames."""
    lats = sorted(
        f.latency_us
        for f in result.report.realtime.ledger.delivered
        if f.frame >= warmup and f.latency_us is not None
    )
    assert lats, "no delivered frames past warm-up"
    rank = max(0, min(len(lats) - 1, math.ceil(0.99 * len(lats)) - 1))
    return lats[rank]


class TestProcessesRemap:
    def test_remapping_restores_p99_on_processes(self):
        plan = the_plan()
        baseline = run_soak("processes", **SOAK)
        remapped = run_soak("processes", plan=plan, remap=RemapPolicy(),
                            **SOAK)

        # Safety: conservation exact and every delivered value matches
        # the sequential oracle, migration and drains included.
        assert baseline.ok, baseline.violations
        assert remapped.ok, remapped.violations
        assert remapped.report.realtime.ledger.unaccounted() == 0

        base = tail_p99_us(baseline)
        held = tail_p99_us(remapped)
        assert held <= 2.0 * base, (
            f"re-mapped p99 {held / 1e3:.1f} ms vs baseline "
            f"{base / 1e3:.1f} ms"
        )

        faults = remapped.report.faults
        target = f"df0.worker{LIMP_WORKER}"
        assert any(target in tag for tag in faults.remaps)
        # Migration is the *second* stage: the limping verdict fired
        # first, then the confirmation streak promoted it.
        assert any(target in tag for tag in faults.limping)

    def test_remap_summary_names_the_migration(self):
        result = run_soak("processes", plan=the_plan(),
                          remap=RemapPolicy(), **SOAK)
        assert result.ok, result.violations
        summary = result.report.faults.summary()
        assert "re-mapped" in summary
        assert f"df0.worker{LIMP_WORKER}" in summary


class TestTcpRemap:
    @pytest.fixture(scope="class")
    def cluster(self):
        with ClusterHarness(size=4) as harness:
            yield harness

    def test_remapping_restores_p99_on_tcp(self, cluster):
        plan = the_plan()
        baseline = run_soak("tcp", cluster=cluster, **SOAK)
        remapped = run_soak("tcp", plan=plan, remap=RemapPolicy(),
                            cluster=cluster, **SOAK)
        assert baseline.ok, baseline.violations
        assert remapped.ok, remapped.violations
        base = tail_p99_us(baseline)
        held = tail_p99_us(remapped)
        assert held <= 2.0 * base, (
            f"re-mapped p99 {held / 1e3:.1f} ms vs baseline "
            f"{base / 1e3:.1f} ms"
        )
        assert any(f"df0.worker{LIMP_WORKER}" in tag
                   for tag in remapped.report.faults.remaps)
        assert remapped.report.realtime.ledger.unaccounted() == 0
