"""Tests for the backend registry and the common interface."""

import pytest

from repro.backends import (
    AsyncioBackend,
    Backend,
    BackendError,
    EmulateBackend,
    ProcessBackend,
    SimulateBackend,
    StandaloneBackend,
    ThreadBackend,
    backend_names,
    get_backend,
    list_backends,
)
from repro.backends.registry import register_backend


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert backend_names() == [
            "asyncio", "emulate", "processes", "simulate", "standalone",
            "tcp", "threads",
        ]

    def test_get_backend_returns_instances(self):
        from repro.net import TcpBackend

        for name, cls in [
            ("emulate", EmulateBackend),
            ("simulate", SimulateBackend),
            ("threads", ThreadBackend),
            ("asyncio", AsyncioBackend),
            ("processes", ProcessBackend),
            ("standalone", StandaloneBackend),
            ("tcp", TcpBackend),
        ]:
            backend = get_backend(name)
            assert isinstance(backend, cls)
            assert backend.name == name

    def test_unknown_backend_lists_available(self):
        with pytest.raises(BackendError, match="emulate"):
            get_backend("transputer")

    def test_unknown_backend_message_lists_names_sorted(self):
        """The error text embeds the exact sorted, comma-joined names, so
        test assertions (and shell greps) are deterministic."""
        with pytest.raises(
            BackendError,
            match="unknown backend 'transputer'; available: "
                  "asyncio, emulate, processes, simulate, standalone, "
                  "tcp, threads",
        ):
            get_backend("transputer")

    def test_unavailable_backend_rejected(self):
        from repro.backends.registry import _REGISTRY

        @register_backend
        class Unavailable(Backend):
            name = "test-unavailable"
            description = "registered but cannot run here"

            @classmethod
            def available(cls):
                return False

        try:
            assert "test-unavailable" in backend_names()
            with pytest.raises(BackendError, match="not available"):
                get_backend("test-unavailable")
        finally:
            del _REGISTRY["test-unavailable"]
        assert "test-unavailable" not in backend_names()

    def test_list_backends_has_descriptions(self):
        listed = list_backends()
        assert set(listed) == set(backend_names())
        assert all(listed.values())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend
            class Clashing(Backend):  # noqa: F811 - intentionally clashing
                name = "threads"
                description = "clash"

    def test_anonymous_registration_rejected(self):
        with pytest.raises(ValueError, match="name"):

            @register_backend
            class Nameless(Backend):
                description = "no name"

    def test_real_flags(self):
        assert not get_backend("emulate").real
        assert not get_backend("simulate").real
        assert get_backend("threads").real
        assert get_backend("asyncio").real
        assert get_backend("processes").real
        assert get_backend("standalone").real
        assert get_backend("tcp").real

    def test_capability_matrix(self):
        from repro.backends import backend_capabilities

        caps = backend_capabilities()
        assert list(caps) == backend_names()  # sorted, stable
        assert all(
            set(flags) == {"real", "faults", "realtime", "distributed"}
            for flags in caps.values()
        )
        assert caps["emulate"] == {
            "real": False, "faults": False,
            "realtime": False, "distributed": False,
        }
        assert caps["processes"]["faults"]
        assert caps["processes"]["realtime"]
        assert caps["asyncio"]["realtime"]
        assert not caps["asyncio"]["faults"]
        assert not caps["standalone"]["faults"]
        assert [n for n, f in caps.items() if f["distributed"]] == ["tcp"]

    def test_emulate_needs_program(self):
        with pytest.raises(BackendError, match="program"):
            get_backend("emulate").run(None, None)
