"""Unit tests for the multiprocess kernel's building blocks."""

import pickle
import threading

import numpy as np
import pytest

from repro.backends.process_kernel import (
    SHM_MIN_BYTES,
    ProcessKernel,
    _shm_pack,
    _shm_unpack,
    _ShmRef,
)
from repro.codegen.kernel import Shutdown


def make_kernel(**kw):
    defaults = dict(
        placement={},
        remote_channels={},
        stop_event=threading.Event(),
        poll_s=0.01,
    )
    defaults.update(kw)
    return ProcessKernel("p0", **defaults)


class TestSharedMemoryTransfer:
    def test_small_arrays_pass_through(self):
        arr = np.arange(8)
        assert _shm_pack(arr, SHM_MIN_BYTES) is arr

    def test_non_arrays_pass_through(self):
        for value in (42, "s", [1, 2], {"k": 1}, None):
            assert _shm_pack(value, 0) == value or _shm_pack(value, 0) is value

    def test_large_array_roundtrip(self):
        arr = np.random.default_rng(0).integers(0, 255, size=(256, 256))
        ref = _shm_pack(arr, 1024)
        assert isinstance(ref, _ShmRef)
        back = _shm_unpack(ref)
        np.testing.assert_array_equal(back, arr)

    def test_ref_survives_pickle(self):
        arr = np.ones((64, 64), dtype=np.float64)
        ref = _shm_pack(arr, 1024)
        ref2 = pickle.loads(pickle.dumps(ref))
        assert (ref2.name, ref2.shape, ref2.dtype) == (
            ref.name, ref.shape, ref.dtype,
        )
        np.testing.assert_array_equal(_shm_unpack(ref2), arr)

    def test_object_arrays_pass_through(self):
        arr = np.array([{"a": 1}, None], dtype=object)
        assert _shm_pack(arr, 0) is arr

    def test_unpack_passthrough(self):
        assert _shm_unpack("plain") == "plain"


class TestKernelPrimitives:
    def test_local_send_recv(self):
        kernel = make_kernel()
        kernel.send_("e0", 42)
        assert kernel.recv_("e0") == 42

    def test_stop_token_roundtrip(self):
        kernel = make_kernel()
        kernel.stop_("e0")
        assert kernel.is_stop(kernel.recv_("e0"))

    def test_alt_picks_ready_edge(self):
        kernel = make_kernel()
        kernel.send_("e1", "hello")
        edge, value = kernel.alt_(["e0", "e1"])
        assert (edge, value) == ("e1", "hello")

    def test_spawn_skips_remote_processes(self):
        kernel = make_kernel(placement={"proc_far": "p9", "proc_near": "p0"})
        ran = []
        stub = kernel.spawn_("proc_far", lambda: ran.append("far"))
        assert not stub.is_alive()
        stub.join()  # must be a no-op, not an error
        thread = kernel.spawn_("proc_near", lambda: ran.append("near"))
        thread.join(5.0)
        assert ran == ["near"]
        assert kernel.local_threads() == [thread]

    def test_stop_event_unblocks_recv(self):
        stop = threading.Event()
        kernel = make_kernel(stop_event=stop)
        stop.set()
        with pytest.raises(Shutdown):
            kernel.recv_("never")

    def test_stop_event_unblocks_send_on_full_queue(self):
        stop = threading.Event()
        kernel = make_kernel(stop_event=stop, queue_size=1)
        kernel.send_("e0", 1)  # fills the queue
        timer = threading.Timer(0.05, stop.set)
        timer.start()
        with pytest.raises(Shutdown):
            kernel.send_("e0", 2)
        timer.cancel()

    def test_call_records_wall_clock_spans(self):
        kernel = make_kernel()
        assert kernel.call_(lambda a, b: a + b, 2, 3) == 5
        (span,) = kernel.compute_spans
        assert span.resource == "p0"
        assert span.end >= span.start >= 0.0

    def test_call_without_recording(self):
        kernel = make_kernel(record_spans=False)
        assert kernel.call_(lambda: 7) == 7
        assert kernel.compute_spans == []
