"""Four-way backend equivalence: emulate ≡ simulate ≡ threads ≡ processes.

One program per skeleton (scm, df, tf, itermem), each executed on every
registered backend; all four must produce the sequential emulation's
outputs exactly.  Every sequential function is a module-level ``def`` so
the table survives pickling under the ``spawn`` start method (the CI
matrix forces it via ``REPRO_MP_START_METHOD``).
"""

import pytest

from repro.backends import get_backend
from repro.core import EndOfStream, FunctionTable, ProgramBuilder, TaskOutcome
from repro.machine import FAST_TEST
from repro.pnt import expand_program
from repro.syndex import distribute, ring

BACKENDS = ["emulate", "simulate", "threads", "processes"]


# -- module-level sequential functions (spawn-picklable) ----------------------

def chunk(n, xs):
    base, extra = divmod(len(xs), n)
    out, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(xs[start:start + size])
        start += size
    return out


def sumsq(chunk_):
    return sum(x * x for x in chunk_)


def total(_orig, parts):
    return sum(parts)


def square(x):
    return x * x


def add(a, b):
    return a + b


def halve(x):
    if abs(x) <= 1:
        return TaskOutcome(results=[x])
    return TaskOutcome(subtasks=[x // 2, x - x // 2])


_counter = {"i": 0}


def read(_src):
    i = _counter["i"]
    _counter["i"] += 1
    if i >= 5:
        raise EndOfStream
    return i


def step(s, i):
    return s + i, s + i


def emit(_y):
    return None


# -- one program per skeleton -------------------------------------------------

def make_scm():
    table = FunctionTable()
    table.register("chunk", ins=["int", "int list"], outs=["int list list"])(chunk)
    table.register("sumsq", ins=["int list"], outs=["int"], cost=50.0)(sumsq)
    table.register("total", ins=["int list", "int list"], outs=["int"], cost=20.0)(total)
    b = ProgramBuilder("scm_sumsq", table)
    (xs,) = b.params("xs")
    r = b.scm(3, split="chunk", comp="sumsq", merge="total", x=xs)
    return b.returns(r), table, (list(range(10)),)


def make_df():
    table = FunctionTable()
    table.register("square", ins=["int"], outs=["int"], cost=50.0)(square)
    table.register(
        "add", ins=["int", "int"], outs=["int"], cost=10.0,
        properties=["commutative", "associative"],
    )(add)
    b = ProgramBuilder("df_sumsq", table)
    (xs,) = b.params("xs")
    r = b.df(3, comp="square", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table, (list(range(8)),)


def make_tf():
    table = FunctionTable()
    table.register("halve", ins=["int"], outs=["outcome"], cost=30.0)(halve)
    table.register(
        "add", ins=["int", "int"], outs=["int"], cost=10.0,
        properties=["commutative", "associative"],
    )(add)
    b = ProgramBuilder("tf_halve", table)
    (xs,) = b.params("xs")
    r = b.tf(3, comp="halve", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table, ([13, 7, 21],)


def make_itermem():
    _counter["i"] = 0  # fresh stream per run (fork inherits, spawn reimports)
    table = FunctionTable()
    table.register("read", ins=["unit"], outs=["int"], cost=10.0)(read)
    table.register("step", ins=["int", "int"], outs=["int", "int"], cost=10.0)(step)
    table.register("emit", ins=["int"], cost=5.0)(emit)
    b = ProgramBuilder("itermem_sum", table)
    state, item = b.params("state", "item")
    s2, y = b.apply("step", state, item)
    return b.stream(s2, y, inp="read", out="emit", init_value=0, source=None), table, None


RECIPES = {
    "scm": make_scm,
    "df": make_df,
    "tf": make_tf,
    "itermem": make_itermem,
}


def run_on(backend_name, factory, arch_size=4):
    """Build the program fresh and execute it on one backend."""
    prog, table, args = factory()
    mapping = distribute(expand_program(prog, table), ring(arch_size))
    return get_backend(backend_name).run(
        mapping, table,
        program=prog,
        costs=FAST_TEST,
        args=args,
        timeout=60.0,
    )


class TestFourWayEquivalence:
    @pytest.mark.parametrize("skeleton", sorted(RECIPES))
    def test_all_backends_agree(self, skeleton):
        factory = RECIPES[skeleton]
        reports = {name: run_on(name, factory) for name in BACKENDS}
        reference = reports["emulate"]
        for name in BACKENDS[1:]:
            report = reports[name]
            assert report.outputs == reference.outputs, (
                f"{skeleton}: backend {name!r} diverged from emulation"
            )
            assert report.final_state == reference.final_state
            if reference.one_shot_results is not None:
                assert report.one_shot_results == reference.one_shot_results

    @pytest.mark.parametrize("skeleton", ["df", "itermem"])
    def test_processes_on_one_processor(self, skeleton):
        """Degenerate mapping: the whole executive in a single worker."""
        reference = run_on("emulate", RECIPES[skeleton], arch_size=1)
        report = run_on("processes", RECIPES[skeleton], arch_size=1)
        assert report.outputs == reference.outputs

    def test_processes_reports_wall_clock(self):
        report = run_on("processes", make_df)
        assert report.wall_clock
        assert report.backend == "processes"
        assert report.makespan > 0
        assert report.trace is not None
        assert report.trace.compute  # real spans were recorded


class TestSpawnStartMethod:
    def test_df_under_spawn(self):
        report = run_on_spawn(make_df)
        reference = run_on("emulate", make_df)
        assert report.one_shot_results == reference.one_shot_results


def run_on_spawn(factory):
    prog, table, args = factory()
    mapping = distribute(expand_program(prog, table), ring(2))
    return get_backend("processes").run(
        mapping, table, args=args, timeout=90.0, start_method="spawn",
    )
