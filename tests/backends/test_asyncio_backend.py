"""Tests for the asyncio execution backend and its realtime composition."""

import asyncio

import pytest

from repro.backends import BackendError, get_backend
from repro.conformance.functions import reset_stream
from repro.conformance.generator import build_case, generate_case
from repro.conformance.oracle import build_mapping
from repro.realtime.budget import LatencyBudget
from repro.realtime.soak import make_soak


def _case(seed):
    built = build_case(generate_case(seed))
    return built, build_mapping(built)


class TestAsyncioBackend:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 9])
    def test_agrees_with_threads(self, seed):
        built, mapping = _case(seed)
        args = tuple(built.args) if built.args else None
        kw = dict(
            max_iterations=built.max_iterations, args=args, timeout=60.0
        )
        reset_stream()
        threads = get_backend("threads").run(mapping, built.table, **kw)
        reset_stream()
        coroutines = get_backend("asyncio").run(mapping, built.table, **kw)
        assert coroutines.outputs == threads.outputs
        assert coroutines.final_state == threads.final_state
        assert coroutines.one_shot_results == threads.one_shot_results
        assert coroutines.backend == "asyncio"
        assert coroutines.wall_clock or coroutines.makespan >= 0

    def test_needs_mapping(self):
        built, _ = _case(0)
        with pytest.raises(BackendError, match="mapping"):
            get_backend("asyncio").run(None, built.table)

    def test_fault_plan_rejected(self):
        built, mapping = _case(0)
        with pytest.raises(BackendError, match="fault"):
            get_backend("asyncio").run(
                mapping, built.table, fault_plan=object()
            )

    def test_records_trace_spans(self):
        built, mapping = _case(0)
        args = tuple(built.args) if built.args else None
        reset_stream()
        report = get_backend("asyncio").run(
            mapping, built.table,
            max_iterations=built.max_iterations, args=args,
            record_trace=True, timeout=60.0,
        )
        assert report.trace is not None
        assert report.trace.compute  # call_ attributed via task names


class TestAsyncioRealtime:
    def test_budget_composes_like_threads(self):
        program, table, mapping = make_soak(
            nproc=3, frames=30, pieces=4, work_us=50
        )
        budget = LatencyBudget(
            deadline_ms=200, frame_period_ms=1, max_in_flight=4,
            policy="block",
        )
        report = get_backend("asyncio").run(
            mapping, table, max_iterations=30, budget=budget, timeout=60.0
        )
        assert len(report.outputs) == 30
        ledger = report.realtime.ledger
        assert ledger.submitted == 30
        assert ledger.conserved()
        assert len(ledger.delivered) == 30

    def test_shed_policy_sheds_and_conserves(self):
        program, table, mapping = make_soak(
            nproc=2, frames=40, pieces=3, work_us=2000
        )
        budget = LatencyBudget(
            deadline_ms=10, frame_period_ms=0.2, max_in_flight=2,
            policy="shed-newest",
        )
        report = get_backend("asyncio").run(
            mapping, table, max_iterations=40, budget=budget, timeout=60.0
        )
        ledger = report.realtime.ledger
        assert ledger.submitted == 40
        assert ledger.conserved()
        assert ledger.shed  # the tight budget forced load-shedding
        assert len(report.outputs) == len(ledger.delivered)


class TestThousandStreamSoak:
    """The asyncio value proposition: 1000 concurrent admitted streams
    in one process, every one frame-conserving."""

    N_STREAMS = 1000
    FRAMES = 3

    def test_frame_ledger_conservation_across_1000_streams(self):
        from repro.codegen.async_kernel import AsyncioKernel
        from repro.codegen.pygen import load_executive
        from repro.codegen.targets import get_target
        from repro.core.functions import FunctionTable
        from repro.pipeline import build
        from repro.realtime.async_kernel import AsyncRealtimeKernel
        from repro.realtime.topology import StreamTopology

        table = FunctionTable()
        table.register("grab", ins=["unit"], outs=["int"], cost=10.0)(
            _grab
        )
        table.register("step", ins=["int", "int"],
                       outs=["int", "int"], cost=10.0)(_step)
        table.register("show", ins=["int"], cost=5.0)(_show)
        source = (
            "let loop (s, i) = step s i;;\n"
            "let main = itermem grab loop show 0 ();;\n"
        )
        built = build(source, table, _tiny_arch())
        mapping = built.mapping
        topo = StreamTopology.from_mapping(mapping)
        assert topo is not None
        executive = load_executive(
            get_target("asyncio").generate(
                mapping, max_iterations=self.FRAMES
            )
        )
        budget = LatencyBudget(
            deadline_ms=5000, max_in_flight=2, policy="block",
            watchdog_interval_s=0.05,
        )

        async def one_stream():
            kernel = AsyncRealtimeKernel(AsyncioKernel(), topo, budget)
            kernel.start()
            try:
                fns = {spec.name: spec.fn for spec in table}
                _tasks, sinks = await executive["build_executive"](
                    kernel, fns
                )
                await kernel.join_(sinks, timeout=120.0)
            finally:
                await kernel.ashutdown()
            return kernel.build_report()

        async def soak():
            return await asyncio.gather(
                *(one_stream() for _ in range(self.N_STREAMS))
            )

        reports = asyncio.run(soak())
        assert len(reports) == self.N_STREAMS
        total_delivered = 0
        for report in reports:
            ledger = report.ledger
            assert ledger.submitted == self.FRAMES
            assert ledger.conserved(), (
                f"unaccounted frames: {ledger.unaccounted()}"
            )
            total_delivered += len(ledger.delivered)
        assert total_delivered == self.N_STREAMS * self.FRAMES


# Module-level defs: shared by the soak's 1000 executives.
def _grab(_src):
    return 1


def _step(s, i):
    return (s + i, s + i)


def _show(y):
    return None


def _tiny_arch():
    from repro.syndex import ring

    return ring(2)
