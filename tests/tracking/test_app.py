"""End-to-end tests of the case-study application (E2/E3/E5 shape)."""

import pytest

from repro import build
from repro.core import emulate
from repro.minicaml import compile_source
from repro.syndex import ring
from repro.tracking import Occlusion, build_tracking_app


def small_app(**kw):
    defaults = dict(nproc=4, n_frames=5, frame_size=128, n_vehicles=1)
    defaults.update(kw)
    return build_tracking_app(**defaults)


class TestBuildApp:
    def test_spec_compiles_and_types(self):
        app = small_app()
        compiled = compile_source(app.source, app.table)
        assert compiled.type_of("main") == "unit"
        assert compiled.type_of("loop") == "(state * img) -> state * mark list"
        (skel,) = compiled.ir.skeleton_instances()
        assert skel.kind == "df"
        assert skel.degree == 4

    def test_invalid_vehicle_count(self):
        with pytest.raises(ValueError, match="one to three"):
            build_tracking_app(n_vehicles=4)

    def test_rewind_restores_stream(self):
        app = small_app()
        compiled = compile_source(app.source, app.table)
        emulate(compiled.ir, app.table, call_sink=True)
        n = len(app.displayed)
        app.rewind()
        assert app.displayed == []
        emulate(compiled.ir, app.table, call_sink=True)
        assert len(app.displayed) == n


class TestSequentialEmulation:
    def test_tracks_converge_to_truth(self):
        app = small_app(n_frames=6)
        compiled = compile_source(app.source, app.table)
        result = emulate(compiled.ir, app.table, call_sink=False)
        state = result.final_state
        assert state.tracking
        truth = app.scene.vehicles_at(5)[0]
        (track,) = state.tracks
        assert track.z == pytest.approx(truth.z, rel=0.1)
        assert track.x == pytest.approx(truth.x, abs=0.3)

    def test_marks_displayed_every_frame(self):
        app = small_app(n_frames=4)
        compiled = compile_source(app.source, app.table)
        emulate(compiled.ir, app.table, call_sink=True)
        assert len(app.displayed) == 4
        for ms in app.displayed:
            assert len(ms) == 3

    def test_occlusion_triggers_reinitialisation(self):
        occ = (Occlusion(vehicle_index=0, mark_index=2, start=2, end=3),)
        app = small_app(n_frames=6, occlusions=occ)
        compiled = compile_source(app.source, app.table)
        result = emulate(compiled.ir, app.table, call_sink=True)
        # Frame 2 shows <3 marks -> the state after it is 'reinit';
        # the tracker must recover by the final frame.
        assert len(app.displayed[2]) < 3
        assert result.final_state.tracking


class TestParallelEquivalence:
    """The paper's Fig. 2: both paths from one source must agree."""

    def test_simulated_run_equals_emulation(self):
        app_seq = small_app(n_frames=5, n_vehicles=2)
        compiled = compile_source(app_seq.source, app_seq.table)
        seq = emulate(compiled.ir, app_seq.table, call_sink=True)

        app_par = small_app(n_frames=5, n_vehicles=2)
        built = build(app_par.source, app_par.table, ring(4))
        report = built.run()
        assert len(report.outputs) == len(seq.outputs)
        assert app_par.displayed == app_seq.displayed
        assert report.final_state.tracks == seq.final_state.tracks

    def test_equivalence_independent_of_processor_count(self):
        reference = None
        for nprocs in (1, 3, 5):
            app = small_app(n_frames=4)
            built = build(app.source, app.table, ring(nprocs))
            built.run()
            if reference is None:
                reference = app.displayed
            else:
                assert app.displayed == reference


class TestCaseStudyShape:
    """E5: the latency *shape* of §4 on the simulated T9000 ring."""

    @pytest.fixture(scope="class")
    def report(self):
        app = build_tracking_app(
            nproc=8, n_frames=10, frame_size=512, n_vehicles=3
        )
        built = build(
            app.source, app.table, ring(8),
            profile_iterations=2, rewind=app.rewind,
        )
        return built.run(real_time=True)

    def test_reinit_much_slower_than_tracking(self, report):
        reinit = report.iterations[0].latency
        tracking = [r.latency for r in report.iterations[2:]]
        assert reinit > 2.5 * max(tracking)

    def test_reinit_latency_near_paper_value(self, report):
        # Paper: 110 ms on 8 T9000s; accept the right order of magnitude.
        assert 80_000 <= report.iterations[0].latency <= 150_000

    def test_tracking_latency_near_paper_value(self, report):
        # Paper: 30 ms minimal latency for the tracking phase.
        stable = [r.latency for r in report.iterations[2:]]
        mean = sum(stable) / len(stable)
        assert 10_000 <= mean <= 45_000

    def test_tracking_meets_frame_budget(self, report):
        """Tracking phase processes (nearly) every 25 Hz frame."""
        stable = report.iterations[2:]
        steps = [
            b.frame_index - a.frame_index for a, b in zip(stable, stable[1:])
        ]
        assert steps and max(steps) == 1

    def test_reinit_skips_frames(self, report):
        """The 110 ms reinitialisation cannot keep up with 25 Hz."""
        first_step = report.iterations[1].frame_index - report.iterations[0].frame_index
        assert first_step >= 2
