"""Tests for the predict-then-verify tracker (grouping, windows, updates)."""

import pytest

from repro.vision import Image, Mark, Rect
from repro.tracking import (
    Camera,
    MarkLayout,
    TrackerConfig,
    VehicleTrack,
    group_marks,
    initial_state,
    plan_windows,
    update_tracks,
)
from repro.tracking.tracker import _dedupe_marks


def mark_at(row, col, pixels=20):
    return Mark((row, col), Rect(int(row) - 2, int(col) - 2, 5, 5), pixels)


def config(n_vehicles=1):
    return TrackerConfig(
        camera=Camera(focal=800, cx=256, cy=256, nrows=512, ncols=512),
        layout=MarkLayout(),
        n_vehicles=n_vehicles,
    )


def triple_at(cam_cfg, x, z, jitter=0.0):
    """Synthesize the three marks of a vehicle at (x, z)."""
    cam, layout = cam_cfg.camera, cam_cfg.layout
    marks = []
    for i, (dx, dy) in enumerate(layout.local_marks()):
        row, col = cam.project(x + dx, layout.bottom_height + dy, z)
        marks.append(mark_at(row + (jitter if i == 0 else 0), col))
    return marks  # bl, br, top


class TestGrouping:
    def test_single_clean_triple(self):
        cfg = config()
        obs = group_marks(cfg, triple_at(cfg, 0.0, 20.0))
        assert len(obs) == 1
        assert obs[0].z == pytest.approx(20.0, rel=0.05)
        assert obs[0].x == pytest.approx(0.0, abs=0.2)

    def test_recovers_lateral_offset(self):
        cfg = config()
        obs = group_marks(cfg, triple_at(cfg, -1.5, 25.0))
        assert obs[0].x == pytest.approx(-1.5, rel=0.1)

    def test_three_vehicles(self):
        cfg = config(n_vehicles=3)
        marks = (
            triple_at(cfg, 0.0, 18.0)
            + triple_at(cfg, -2.5, 26.0)
            + triple_at(cfg, 2.5, 34.0)
        )
        obs = group_marks(cfg, marks)
        assert len(obs) == 3
        assert [round(o.x, 1) for o in obs] == [-2.5, 0.0, 2.5]  # left-to-right

    def test_incomplete_triple_not_grouped(self):
        cfg = config()
        marks = triple_at(cfg, 0.0, 20.0)[:2]  # missing the top mark
        assert group_marks(cfg, marks) == []

    def test_rejects_unlevel_bottom_pair(self):
        cfg = config()
        bl, br, top = triple_at(cfg, 0.0, 20.0)
        skewed = mark_at(bl.row + 20, bl.col)
        assert group_marks(cfg, [skewed, br, top]) == []

    def test_rejects_top_mark_off_center(self):
        cfg = config()
        bl, br, top = triple_at(cfg, 0.0, 20.0)
        shifted_top = mark_at(top.row, top.col + 30)
        assert group_marks(cfg, [bl, br, shifted_top]) == []

    def test_rejects_implausible_depth(self):
        cfg = config()
        # Pair spacing implying z ~ 1 m (below z_min).
        marks = [mark_at(300, 0), mark_at(300, 480), mark_at(100, 240)]
        assert group_marks(cfg, marks) == []

    def test_limits_to_expected_vehicles(self):
        cfg = config(n_vehicles=1)
        marks = triple_at(cfg, 0.0, 18.0) + triple_at(cfg, -2.5, 26.0)
        assert len(group_marks(cfg, marks)) == 1

    def test_noise_mark_does_not_break_grouping(self):
        cfg = config()
        marks = triple_at(cfg, 0.0, 20.0) + [mark_at(400, 50), mark_at(30, 470)]
        obs = group_marks(cfg, marks)
        assert len(obs) == 1
        assert obs[0].z == pytest.approx(20.0, rel=0.05)


class TestDedupe:
    def test_collapses_nearby_marks(self):
        marks = [mark_at(100, 100, pixels=30), mark_at(101, 100.5, pixels=10)]
        kept = _dedupe_marks(marks)
        assert len(kept) == 1
        assert kept[0].pixel_count == 30  # best-supported wins

    def test_keeps_distinct_marks(self):
        marks = [mark_at(100, 100), mark_at(100, 120)]
        assert len(_dedupe_marks(marks)) == 2


class TestPlanWindows:
    def test_reinit_tiles_frame(self):
        state = initial_state(config())
        frame = Image.zeros(512, 512)
        windows = plan_windows(8, state, frame)
        assert len(windows) == 8
        assert sum(w.rect.height for w in windows) == 512

    def test_tracking_three_windows_per_vehicle(self):
        cfg = config()
        state, frame = self._tracking_state(cfg)
        windows = plan_windows(8, state, frame)
        assert len(windows) == 3

    def test_windows_cover_predicted_marks(self):
        cfg = config()
        state, frame = self._tracking_state(cfg)
        windows = plan_windows(8, state, frame)
        track = state.tracks[0]
        for center in track.marks:
            assert any(w.rect.contains(*center) for w in windows)

    def test_window_size_scales_with_proximity(self):
        cfg = config()
        near, _ = self._tracking_state(cfg, z=10.0)
        far, frame = self._tracking_state(cfg, z=50.0)
        near_w = plan_windows(8, near, frame)
        far_w = plan_windows(8, far, frame)
        assert max(w.area for w in near_w) > max(w.area for w in far_w)

    @staticmethod
    def _tracking_state(cfg, z=20.0):
        marks = triple_at(cfg, 0.0, z)
        state = initial_state(cfg)
        _display, state = update_tracks(state, marks)
        assert state.tracking
        return state, Image.zeros(512, 512)


class TestUpdateTracks:
    def test_enters_tracking_when_complete(self):
        cfg = config()
        display, state = update_tracks(initial_state(cfg), triple_at(cfg, 0, 20))
        assert state.tracking
        assert len(display) == 3
        assert len(state.tracks) == 1

    def test_falls_back_to_reinit_on_missing_marks(self):
        cfg = config()
        _d, state = update_tracks(initial_state(cfg), triple_at(cfg, 0, 20))
        # Next frame: only two marks detected (occlusion).
        _d, state = update_tracks(state, triple_at(cfg, 0, 20)[:2])
        assert not state.tracking

    def test_velocity_estimated_from_consecutive_frames(self):
        cfg = config()
        _d, s1 = update_tracks(initial_state(cfg), triple_at(cfg, 0.0, 20.0))
        _d, s2 = update_tracks(s1, triple_at(cfg, 0.1, 20.5))
        (track,) = s2.tracks
        assert track.vx == pytest.approx(0.1, abs=0.05)
        assert track.vz == pytest.approx(0.5, abs=0.2)
        assert track.age == 1

    def test_track_matching_keeps_identity(self):
        cfg = config(n_vehicles=2)
        m1 = triple_at(cfg, -2.0, 20.0) + triple_at(cfg, 2.0, 30.0)
        _d, s1 = update_tracks(initial_state(cfg), m1)
        m2 = triple_at(cfg, -1.9, 19.5) + triple_at(cfg, 2.1, 30.5)
        _d, s2 = update_tracks(s1, m2)
        assert len(s2.tracks) == 2
        ages = sorted(t.age for t in s2.tracks)
        assert ages == [1, 1]  # both matched, not recreated

    def test_iteration_counter_increments(self):
        cfg = config()
        state = initial_state(cfg)
        _d, state = update_tracks(state, [])
        _d, state = update_tracks(state, [])
        assert state.iteration == 2

    def test_no_marks_stays_reinit(self):
        cfg = config()
        display, state = update_tracks(initial_state(cfg), [])
        assert display == []
        assert not state.tracking
        assert state.tracks == ()
