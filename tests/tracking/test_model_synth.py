"""Tests for the 3D vehicle/camera model and the synthetic video source."""

import math

import pytest

from repro.core import EndOfStream
from repro.tracking import (
    Camera,
    MarkLayout,
    Occlusion,
    TrackingScene,
    Vehicle,
    VideoSource,
    project_vehicle,
)


class TestCamera:
    def test_center_projection(self):
        cam = Camera(focal=800, cx=256, cy=256)
        row, col = cam.project(0.0, 0.0, 10.0)
        assert (row, col) == (256.0, 256.0)

    def test_lateral_offset(self):
        cam = Camera(focal=800, cx=256, cy=256)
        _row, col = cam.project(1.0, 0.0, 20.0)
        assert col == 256 + 40.0

    def test_height_goes_up_in_image(self):
        cam = Camera(focal=800, cx=256, cy=256)
        row, _col = cam.project(0.0, 2.0, 20.0)
        assert row < 256

    def test_behind_camera_rejected(self):
        with pytest.raises(ValueError):
            Camera().project(0, 0, -1)

    def test_depth_roundtrip(self):
        """depth_from_baseline inverts the projection of the bottom pair."""
        cam = Camera(focal=800)
        layout = MarkLayout(baseline=1.2)
        z = 23.0
        (r1, c1) = cam.project(-0.6, 1.4, z)
        (r2, c2) = cam.project(0.6, 1.4, z)
        assert cam.depth_from_baseline(layout.baseline, c2 - c1) == pytest.approx(z)

    def test_lateral_roundtrip(self):
        cam = Camera(focal=800, cx=256)
        _r, col = cam.project(1.7, 1.4, 30.0)
        assert cam.lateral_from_col(col, 30.0) == pytest.approx(1.7)

    def test_mark_radius_shrinks_with_distance(self):
        cam = Camera()
        assert cam.mark_radius_px(0.1, 10) > cam.mark_radius_px(0.1, 40)

    def test_invalid_inputs(self):
        cam = Camera()
        with pytest.raises(ValueError):
            cam.mark_radius_px(0.1, 0)
        with pytest.raises(ValueError):
            cam.depth_from_baseline(1.2, 0)


class TestVehicle:
    def test_mark_triangle(self):
        v = Vehicle(x=0.0, z=20.0)
        marks = v.mark_positions()
        assert len(marks) == 3
        bl, br, top = marks
        assert bl[0] == -0.6 and br[0] == 0.6
        assert top[1] > bl[1]  # top mark is higher

    def test_trajectory_at(self):
        v = Vehicle(x=1.0, z=20.0, vx=0.5, vz=-1.0)
        later = v.at(2.0)
        assert later.x == pytest.approx(2.0)
        assert later.z == pytest.approx(18.0)
        assert v.x == 1.0  # original untouched

    def test_step_mutates(self):
        v = Vehicle(x=0.0, z=10.0, vz=2.0)
        v.step(0.5)
        assert v.z == 11.0

    def test_projection_drops_offscreen(self):
        cam = Camera()
        far_left = Vehicle(x=-100.0, z=10.0)
        assert project_vehicle(cam, far_left) == []

    def test_projection_of_visible_vehicle(self):
        cam = Camera()
        v = Vehicle(x=0.0, z=20.0)
        projected = project_vehicle(cam, v)
        assert len(projected) == 3
        (bl, _), (br, _), (top, _) = projected
        assert bl[1] < br[1]
        assert top[0] < bl[0]  # above


class TestScene:
    def make_scene(self, **kw):
        defaults = dict(
            vehicles=[Vehicle(x=0.0, z=20.0, vz=1.0)],
            camera=Camera(nrows=128, ncols=128, focal=200, cx=64, cy=64),
            noise_sigma=0.0,
        )
        defaults.update(kw)
        return TrackingScene(**defaults)

    def test_render_deterministic(self):
        scene = self.make_scene(noise_sigma=3.0)
        assert scene.render(2) == scene.render(2)

    def test_render_contains_marks(self):
        scene = self.make_scene()
        frame = scene.render(0)
        truth = scene.truth_marks(0)[0]
        assert len(truth) == 3
        for row, col in truth:
            assert frame.pixels[int(row), int(col)] >= 200

    def test_vehicle_moves_between_frames(self):
        scene = self.make_scene()
        t0 = scene.truth_marks(0)[0]
        t50 = scene.truth_marks(50)[0]
        # Approaching vehicle: marks spread apart.
        spread0 = t0[1][1] - t0[0][1]
        spread50 = t50[1][1] - t50[0][1]
        assert spread50 != spread0

    def test_occlusion_hides_mark(self):
        occ = Occlusion(vehicle_index=0, mark_index=2, start=1, end=3)
        scene = self.make_scene(occlusions=[occ])
        assert len(scene.truth_marks(0)[0]) == 3
        assert len(scene.truth_marks(1)[0]) == 2
        assert len(scene.truth_marks(2)[0]) == 2
        assert len(scene.truth_marks(3)[0]) == 3


class TestVideoSource:
    def test_bounded_stream(self):
        scene = TrackingScene(
            vehicles=[Vehicle(x=0, z=20)],
            camera=Camera(nrows=64, ncols=64, focal=100, cx=32, cy=32),
            noise_sigma=0.0,
        )
        video = VideoSource(scene, 3)
        frames = list(video)
        assert len(frames) == 3
        with pytest.raises(EndOfStream):
            video.read()

    def test_rewind(self):
        scene = TrackingScene(
            vehicles=[Vehicle(x=0, z=20)],
            camera=Camera(nrows=64, ncols=64, focal=100, cx=32, cy=32),
            noise_sigma=0.0,
        )
        video = VideoSource(scene, 2)
        first = video.read()
        video.read()
        video.rewind()
        assert video.read() == first
        assert video.frames_served == 1
