"""Tests for the tracking-quality metrics."""

import math

import pytest

from repro.tracking import Camera, TrackingScene, Vehicle, initial_state
from repro.tracking.metrics import (
    DetectionScore,
    depth_rmse,
    pose_errors,
    score_detections,
)
from repro.tracking.tracker import TrackerConfig, VehicleTrack, TrackerState
from repro.vision import Mark, Rect


def scene_one_vehicle():
    return TrackingScene(
        vehicles=[Vehicle(x=0.0, z=20.0)],
        camera=Camera(),
        noise_sigma=0.0,
    )


def mark_at(row, col):
    return Mark((row, col), Rect(int(row) - 2, int(col) - 2, 5, 5), 20)


class TestDetectionScore:
    def test_perfect_detection(self):
        scene = scene_one_vehicle()
        truth = [c for v in scene.truth_marks(0) for c in v]
        detections = [mark_at(r, c) for r, c in truth]
        score = score_detections(scene, 0, detections)
        assert score.true_positives == 3
        assert score.false_positives == 0
        assert score.false_negatives == 0
        assert score.recall == 1.0
        assert score.precision == 1.0
        assert score.mean_residual_px == pytest.approx(0.0)

    def test_missed_mark(self):
        scene = scene_one_vehicle()
        truth = [c for v in scene.truth_marks(0) for c in v]
        detections = [mark_at(*truth[0])]
        score = score_detections(scene, 0, detections)
        assert score.false_negatives == 2
        assert score.recall == pytest.approx(1 / 3)

    def test_spurious_detection(self):
        scene = scene_one_vehicle()
        truth = [c for v in scene.truth_marks(0) for c in v]
        detections = [mark_at(r, c) for r, c in truth] + [mark_at(10, 10)]
        score = score_detections(scene, 0, detections)
        assert score.false_positives == 1
        assert score.precision == pytest.approx(3 / 4)

    def test_residual_measured(self):
        scene = scene_one_vehicle()
        truth = [c for v in scene.truth_marks(0) for c in v]
        detections = [mark_at(r + 1.0, c) for r, c in truth]
        score = score_detections(scene, 0, detections)
        assert score.true_positives == 3
        assert score.mean_residual_px == pytest.approx(1.0)

    def test_no_double_matching(self):
        scene = scene_one_vehicle()
        truth = [c for v in scene.truth_marks(0) for c in v]
        # Two detections on the same truth mark: one is a false positive.
        detections = [mark_at(*truth[0]), mark_at(truth[0][0] + 1, truth[0][1])]
        score = score_detections(scene, 0, detections)
        assert score.true_positives == 1
        assert score.false_positives == 1

    def test_empty_everything(self):
        scene = TrackingScene(
            vehicles=[Vehicle(x=500.0, z=20.0)],  # off screen
            camera=Camera(),
            noise_sigma=0.0,
        )
        score = score_detections(scene, 0, [])
        assert score.recall == 1.0 and score.precision == 1.0


class TestPoseErrors:
    def make_state(self, x, z):
        config = TrackerConfig(camera=Camera())
        return TrackerState(
            config=config,
            mode="track",
            tracks=(VehicleTrack(x=x, z=z),),
        )

    def test_exact_pose(self):
        scene = scene_one_vehicle()
        state = self.make_state(0.0, 20.0)
        (err,) = pose_errors(scene, 0, state)
        assert err == (0.0, 0.0)
        assert depth_rmse(scene, 0, state) == 0.0

    def test_depth_error(self):
        scene = scene_one_vehicle()
        state = self.make_state(0.0, 22.5)
        (err,) = pose_errors(scene, 0, state)
        assert err[1] == pytest.approx(2.5)
        assert depth_rmse(scene, 0, state) == pytest.approx(2.5)

    def test_no_tracks(self):
        scene = scene_one_vehicle()
        config = TrackerConfig(camera=Camera())
        state = TrackerState(config=config)
        assert pose_errors(scene, 0, state) == []
        assert depth_rmse(scene, 0, state) == float("inf")


class TestEndToEndAccuracy:
    def test_emulated_tracker_scores_well(self):
        from repro.core import emulate
        from repro.minicaml import compile_source
        from repro.tracking import build_tracking_app

        app = build_tracking_app(
            nproc=4, n_frames=5, frame_size=128, n_vehicles=1
        )
        compiled = compile_source(app.source, app.table)
        result = emulate(compiled.ir, app.table, call_sink=True)
        # Detection quality on every processed frame.
        for frame, detections in enumerate(app.displayed):
            score = score_detections(app.scene, frame, detections)
            assert score.recall == 1.0
            assert score.mean_residual_px < 1.5
        # Final 3D pose accuracy.
        assert depth_rmse(app.scene, 4, result.final_state) < 1.0
