"""Tests for the road-following application (scene, follower, app)."""

import math

import pytest

from repro import build
from repro.core import EndOfStream, emulate
from repro.minicaml import compile_source
from repro.roadfollow import (
    FollowerConfig,
    LaneEstimate,
    RoadScene,
    RoadVideo,
    build_road_app,
    cluster_peaks,
    select_boundaries,
    update_lane,
)
from repro.syndex import ring
from repro.vision.lines import Line


class TestScene:
    def test_ground_truth_geometry(self):
        scene = RoadScene(noise_sigma=0.0, drift_amplitude=0.0)
        left, right = scene.boundary_cols(scene.nrows - 1, 0)
        assert left == pytest.approx(64 - 40)
        assert right == pytest.approx(64 + 40)
        assert scene.lateral_offset(0) == 0.0

    def test_boundaries_converge_at_vanishing_point(self):
        scene = RoadScene(noise_sigma=0.0)
        left, right = scene.boundary_cols(scene.vanish_row, 0)
        assert left == pytest.approx(right)

    def test_drift_moves_lane_opposite(self):
        scene = RoadScene(noise_sigma=0.0, drift_amplitude=10.0)
        quarter = int(scene.drift_period * scene.fps / 4)  # peak drift
        assert scene.drift_at(quarter) == pytest.approx(10.0, abs=0.1)
        center = scene.lane_center_col(scene.nrows - 1, quarter)
        assert center == pytest.approx(64 - 10.0, abs=0.1)
        assert scene.lateral_offset(quarter) == pytest.approx(10.0, abs=0.1)

    def test_render_draws_lines(self):
        scene = RoadScene(noise_sigma=0.0, drift_amplitude=0.0)
        frame = scene.render(0)
        row = scene.nrows - 1
        left, right = scene.boundary_cols(row, 0)
        assert frame.pixels[row, int(round(left))] >= 200
        assert frame.pixels[row, int(round(right))] >= 200
        assert frame.pixels[row, 64] == scene.background

    def test_render_deterministic(self):
        scene = RoadScene(noise_sigma=4.0)
        assert scene.render(3) == scene.render(3)

    def test_dashed_markings(self):
        solid = RoadScene(noise_sigma=0.0).render(0)
        dashed = RoadScene(noise_sigma=0.0, dashes=(6, 6)).render(0)
        bright = lambda im: int((im.pixels > 200).sum())
        assert 0 < bright(dashed) < bright(solid)

    def test_video_bounded_and_rewindable(self):
        video = RoadVideo(RoadScene(noise_sigma=0.0), 3)
        frames = list(video)
        assert len(frames) == 3
        with pytest.raises(EndOfStream):
            video.read()
        video.rewind()
        assert video.read() == frames[0]


def line_through(col_bottom, col_vanish, nrows=128, vanish_row=50, votes=100):
    """Synthesize the Hough (rho, theta) of the line through two points."""
    # Direction (drow, dcol); normal is (-dcol, drow) normalised.
    drow = (nrows - 1) - vanish_row
    dcol = col_bottom - col_vanish
    length = math.hypot(drow, dcol)
    n_row, n_col = -dcol / length, drow / length
    # rho = col*cos(theta) + row*sin(theta) with (cos, sin) = (n_col, n_row)
    theta = math.atan2(n_row, n_col) % math.pi
    sign = 1.0 if math.cos(theta) * n_col + math.sin(theta) * n_row > 0 else -1.0
    rho = sign * (col_bottom * n_col + (nrows - 1) * n_row)
    return Line(rho=rho, theta=theta, votes=votes)


class TestFollower:
    def test_cluster_merges_near_duplicates(self):
        a = Line(rho=50.0, theta=0.5, votes=30)
        b = Line(rho=52.0, theta=0.51, votes=20)
        c = Line(rho=120.0, theta=2.2, votes=25)
        merged = cluster_peaks([a, b, c])
        assert len(merged) == 2
        assert merged[0].votes == 50  # strongest cluster first

    def test_cluster_weighted_average(self):
        a = Line(rho=50.0, theta=1.0, votes=30)
        b = Line(rho=56.0, theta=1.0, votes=10)
        (m,) = cluster_peaks([a, b])
        assert m.rho == pytest.approx(51.5)

    def test_select_pair_by_width(self):
        cfg = FollowerConfig()
        lines = [
            line_through(24, 64),
            line_through(104, 64),
            line_through(70, 64, votes=90),  # noise near the centre
        ]
        left, right = select_boundaries(cfg, LaneEstimate(), lines)
        assert left == pytest.approx(24, abs=2)
        assert right == pytest.approx(104, abs=2)

    def test_reject_pairs_of_wrong_width(self):
        cfg = FollowerConfig()
        lines = [line_through(50, 64), line_through(78, 64)]  # width 28
        assert select_boundaries(cfg, LaneEstimate(), lines) == (None, None)

    def test_locked_gate_follows_previous(self):
        cfg = FollowerConfig()
        prev = LaneEstimate(left_col=24, right_col=104, locked=True)
        lines = [line_through(26, 64), line_through(102, 64)]
        left, right = select_boundaries(cfg, prev, lines)
        assert left == pytest.approx(26, abs=2)
        assert right == pytest.approx(102, abs=2)

    def test_locked_gate_rejects_jumps(self):
        cfg = FollowerConfig()
        prev = LaneEstimate(left_col=24, right_col=104, locked=True)
        lines = [line_through(70, 64)]  # only a far-away candidate
        assert select_boundaries(cfg, prev, lines) == (None, None)

    def test_update_lane_locks_and_smooths(self):
        cfg = FollowerConfig(smoothing=0.5)
        lane = update_lane(
            cfg, LaneEstimate(),
            [line_through(20, 64), line_through(100, 64)],
        )
        assert lane.locked
        first = lane.offset
        lane = update_lane(
            cfg, lane, [line_through(24, 64), line_through(104, 64)]
        )
        assert lane.locked
        # Smoothed: between the previous and the new raw offset.
        raw_new = 64 - (24 + 104) / 2
        assert min(first, raw_new) <= lane.offset <= max(first, raw_new)

    def test_update_lane_unlocks_on_loss(self):
        cfg = FollowerConfig()
        prev = LaneEstimate(left_col=24, right_col=104, offset=2.0, locked=True)
        lane = update_lane(cfg, prev, [])
        assert not lane.locked
        assert lane.offset == 2.0  # holds the last signal

    def test_horizontal_lines_filtered(self):
        cfg = FollowerConfig()
        horizontal = Line(rho=100.0, theta=math.pi / 2, votes=500)
        assert select_boundaries(cfg, LaneEstimate(), [horizontal]) == (
            None, None,
        )


class TestApplication:
    def test_spec_compiles(self):
        app = build_road_app(n_frames=2)
        compiled = compile_source(app.source, app.table)
        (skel,) = compiled.ir.skeleton_instances()
        assert skel.kind == "df"
        assert compiled.type_of("main") == "unit"

    def test_emulation_tracks_drift(self):
        app = build_road_app(nbands=4, n_frames=20)
        compiled = compile_source(app.source, app.table)
        emulate(compiled.ir, app.table, call_sink=True)
        errors = [
            abs(off - app.scene.lateral_offset(k))
            for k, off in enumerate(app.offsets)
        ]
        assert sum(errors) / len(errors) < 2.0
        assert max(errors) < 5.0

    def test_parallel_equals_sequential(self):
        app1 = build_road_app(nbands=3, n_frames=6)
        compiled = compile_source(app1.source, app1.table)
        emulate(compiled.ir, app1.table, call_sink=True)

        app2 = build_road_app(nbands=3, n_frames=6)
        built = build(app2.source, app2.table, ring(4))
        built.run()
        assert app2.offsets == app1.offsets

    def test_meets_frame_budget_on_small_ring(self):
        app = build_road_app(nbands=4, n_frames=8)
        built = build(
            app.source, app.table, ring(5),
            profile_iterations=2, rewind=app.rewind,
        )
        report = built.run(real_time=True)
        assert report.total_frames_skipped == 0
        assert report.mean_latency < 40_000.0

    def test_rewind(self):
        app = build_road_app(n_frames=3)
        compiled = compile_source(app.source, app.table)
        emulate(compiled.ir, app.table, call_sink=True)
        first = list(app.offsets)
        app.rewind()
        assert app.offsets == []
        emulate(compiled.ir, app.table, call_sink=True)
        assert app.offsets == first
