"""Tests for the declarative skeleton semantics (incl. property-based)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EndOfStream, TaskOutcome, df, itermem, scm, tf


def chunk(n, xs):
    """Reference splitter: n near-equal contiguous chunks."""
    base, extra = divmod(len(xs), n)
    out, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(xs[start : start + size])
        start += size
    return [c for c in out if c]


class TestScm:
    def test_matches_paper_shape(self):
        """split -> map comp -> merge."""
        result = scm(
            3,
            lambda n, xs: chunk(n, xs),
            lambda piece: sum(piece),
            lambda _orig, partials: sum(partials),
            list(range(10)),
        )
        assert result == sum(range(10))

    def test_merge_sees_original_input(self):
        seen = {}

        def merge(orig, results):
            seen["orig"] = orig
            return results

        scm(2, lambda n, x: chunk(n, x), lambda p: p, merge, [1, 2, 3])
        assert seen["orig"] == [1, 2, 3]

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            scm(0, lambda n, x: [x], lambda p: p, lambda o, r: r, 1)

    @given(st.lists(st.integers(), max_size=40), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_sum_independent_of_split_degree(self, xs, n):
        result = scm(
            n,
            lambda k, v: chunk(k, v),
            sum,
            lambda _o, partials: sum(partials),
            xs,
        )
        assert result == sum(xs)


class TestDf:
    def test_paper_definition(self):
        """df n comp acc z xs == fold_left acc z (map comp xs)."""
        comp = lambda x: x * x
        acc = lambda c, y: c + [y]
        assert df(4, comp, acc, [], [1, 2, 3]) == [1, 4, 9]

    def test_empty_input_returns_z(self):
        assert df(2, lambda x: x, lambda c, y: c + y, 42, []) == 42

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            df(-1, lambda x: x, lambda c, y: c, 0, [1])

    def test_n_does_not_affect_declarative_result(self):
        for n in (1, 2, 8, 100):
            assert df(n, lambda x: x + 1, lambda c, y: c + y, 0, range(10)) == 55

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_equals_fold_map(self, xs, n):
        comp = lambda x: 3 * x - 1
        acc = lambda c, y: c + y
        expected = sum(map(comp, xs))
        assert df(n, comp, acc, 0, xs) == expected


class TestTf:
    def test_plain_farming_equals_df(self):
        """A tf whose workers never spawn subtasks behaves like df."""
        comp = lambda x: TaskOutcome(results=[x * 2])
        assert tf(3, comp, lambda c, y: c + y, 0, [1, 2, 3]) == 12

    def test_divide_and_conquer_sum(self):
        """Recursive halving: leaves yield, inner nodes split."""

        def comp(interval):
            lo, hi = interval
            if hi - lo == 1:
                return TaskOutcome(results=[lo])
            mid = (lo + hi) // 2
            return TaskOutcome(subtasks=[(lo, mid), (mid, hi)])

        total = tf(4, comp, lambda c, y: c + y, 0, [(0, 100)])
        assert total == sum(range(100))

    def test_mixed_results_and_subtasks(self):
        def comp(x):
            if x >= 4:
                return TaskOutcome(results=[x], subtasks=[x // 2, x - x // 2])
            return TaskOutcome(results=[x])

        total = tf(2, comp, lambda c, y: c + y, 0, [8])
        # 8 -> yields 8, spawns 4,4 -> each yields 4, spawns 2,2
        assert total == 8 + 4 + 4 + 2 + 2 + 2 + 2

    def test_diverging_farm_guarded(self):
        comp = lambda x: TaskOutcome(subtasks=[x])
        with pytest.raises(RuntimeError):
            tf(2, comp, lambda c, y: c, 0, [1], max_tasks=100)

    def test_wrong_worker_return_type(self):
        with pytest.raises(TypeError):
            tf(2, lambda x: x, lambda c, y: c, 0, [1])

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            tf(0, lambda x: TaskOutcome(), lambda c, y: c, 0, [])

    @given(st.lists(st.integers(1, 64), max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_recursive_decomposition_preserves_sum(self, xs):
        def comp(x):
            if x <= 1:
                return TaskOutcome(results=[x])
            return TaskOutcome(subtasks=[x // 2, x - x // 2])

        assert tf(4, comp, lambda c, y: c + y, 0, xs) == sum(xs)


class TestItermem:
    def test_state_carried_across_iterations(self):
        stream = iter([1, 2, 3, 4])

        def inp(_x):
            try:
                return next(stream)
            except StopIteration:
                raise EndOfStream

        outputs = []
        final = itermem(
            inp,
            lambda si: (si[0] + si[1], si[0]),  # state' = state+item, y = old state
            outputs.append,
            0,
            None,
        )
        assert outputs == [0, 1, 3, 6]
        assert final == 10

    def test_max_iterations_bounds_infinite_stream(self):
        outputs = []
        final = itermem(
            lambda _x: 1,
            lambda si: (si[0] + si[1], si[0] + si[1]),
            outputs.append,
            0,
            None,
            max_iterations=5,
        )
        assert outputs == [1, 2, 3, 4, 5]
        assert final == 5

    def test_source_arg_passed_to_inp(self):
        seen = []

        def inp(x):
            if seen:
                raise EndOfStream
            seen.append(x)
            return x

        itermem(inp, lambda si: si, lambda y: None, 0, (512, 512))
        assert seen == [(512, 512)]

    def test_empty_stream(self):
        def inp(_x):
            raise EndOfStream

        outputs = []
        final = itermem(inp, lambda si: si, outputs.append, "init", None)
        assert outputs == []
        assert final == "init"

    @given(st.lists(st.integers(), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_equivalent_to_scan(self, items):
        """itermem with a fold body == functional scan over the stream."""
        it = iter(items)

        def inp(_x):
            try:
                return next(it)
            except StopIteration:
                raise EndOfStream

        outputs = []
        itermem(
            inp,
            lambda si: (si[0] + si[1], si[0] + si[1]),
            outputs.append,
            0,
            None,
        )
        expected, acc = [], 0
        for v in items:
            acc += v
            expected.append(acc)
        assert outputs == expected
