"""Tests for the program IR, the builder API and the sequential emulator."""

import pytest

from repro.core import (
    Apply,
    Const,
    EndOfStream,
    FunctionTable,
    IRError,
    Program,
    ProgramBuilder,
    SkelApply,
    StreamSpec,
    TaskOutcome,
    emulate,
    emulate_once,
)


def arith_table():
    table = FunctionTable()

    @table.register("double", ins=["int"], outs=["int"])
    def double(x):
        return 2 * x

    @table.register("add", ins=["int", "int"], outs=["int"])
    def add(a, b):
        return a + b

    @table.register("chunk", ins=["int", "int list"], outs=["int list list"])
    def chunk(n, xs):
        base, extra = divmod(len(xs), n)
        out, start = [], 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            if size:
                out.append(xs[start : start + size])
            start += size
        return out

    @table.register("sumlist", ins=["int list"], outs=["int"])
    def sumlist(xs):
        return sum(xs)

    @table.register("sumparts", ins=["int list", "int list"], outs=["int"])
    def sumparts(_orig, parts):
        return sum(parts)

    @table.register("divconq", ins=["int"], outs=["outcome"])
    def divconq(x):
        if x <= 1:
            return TaskOutcome(results=[x])
        return TaskOutcome(subtasks=[x // 2, x - x // 2])

    return table


class TestIRValidation:
    def test_use_before_def(self):
        prog = Program("p", ("a",), [Apply("double", ("ghost",), ("b",))], ("b",))
        with pytest.raises(IRError, match="used before definition"):
            prog.validate()

    def test_ssa_violation(self):
        prog = Program(
            "p",
            ("a",),
            [Apply("double", ("a",), ("b",)), Apply("double", ("a",), ("b",))],
            ("b",),
        )
        with pytest.raises(IRError, match="bound twice"):
            prog.validate()

    def test_undefined_result(self):
        prog = Program("p", ("a",), [], ("zz",))
        with pytest.raises(IRError, match="never defined"):
            prog.validate()

    def test_unknown_function_against_table(self):
        prog = Program("p", ("a",), [Apply("mystery", ("a",), ("b",))], ("b",))
        with pytest.raises(IRError, match="not in the function table"):
            prog.validate(arith_table())

    def test_arity_mismatch_against_table(self):
        prog = Program("p", ("a",), [Apply("add", ("a",), ("b",))], ("b",))
        with pytest.raises(IRError, match="arity"):
            prog.validate(arith_table())

    def test_skeleton_role_check(self):
        with pytest.raises(IRError, match="requires roles"):
            SkelApply("df", 2, {"comp": "double"}, ("z", "xs"), ("out",))

    def test_skeleton_bad_kind(self):
        with pytest.raises(IRError, match="unknown skeleton kind"):
            SkelApply("farm", 2, {}, (), ("out",))

    def test_skeleton_bad_degree(self):
        with pytest.raises(IRError, match="degree"):
            SkelApply(
                "df", 0, {"comp": "c", "acc": "a"}, ("z", "xs"), ("out",)
            )

    def test_stream_body_shape(self):
        prog = Program(
            "p",
            ("state",),
            [],
            ("state",),
            stream=StreamSpec(inp="i", out="o", init_value=0),
        )
        with pytest.raises(IRError, match=r"\(state', y\)"):
            prog.validate()

    def test_stream_needs_init(self):
        with pytest.raises(IRError, match="init"):
            StreamSpec(inp="i", out="o")

    def test_structure_queries(self):
        table = arith_table()
        b = ProgramBuilder("q", table)
        (xs,) = b.params("xs")
        total = b.df(2, comp="double", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(total)
        assert len(prog.skeleton_instances()) == 1
        assert set(prog.function_names()) == {"double", "add"}
        producers = prog.producers()
        assert isinstance(producers[total.name], SkelApply)


class TestBuilder:
    def test_params_once(self):
        b = ProgramBuilder("p")
        b.params("x")
        with pytest.raises(IRError):
            b.params("y")

    def test_params_before_bindings(self):
        b = ProgramBuilder("p")
        b.const(1)
        with pytest.raises(IRError):
            b.params("x")

    def test_multi_out_apply_from_table(self):
        table = FunctionTable()

        @table.register("pair", ins=["int"], outs=["int", "int"])
        def pair(x):
            return x, x + 1

        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        lo, hi = b.apply("pair", x)
        prog = b.returns(lo, hi)
        assert emulate_once(prog, table, 5) == (5, 6)

    def test_foreign_value_rejected(self):
        b1 = ProgramBuilder("p1")
        b2 = ProgramBuilder("p2")
        (x1,) = b1.params("x")
        b2.params("y")
        with pytest.raises(IRError, match="another builder"):
            b2.apply("f", x1)

    def test_finalise_once(self):
        table = arith_table()
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        y = b.apply("double", x)
        b.returns(y)
        with pytest.raises(IRError, match="finalised"):
            b.returns(y)


class TestEmulateOnce:
    def test_df_program(self):
        table = arith_table()
        b = ProgramBuilder("sum2x", table)
        (xs,) = b.params("xs")
        total = b.df(4, comp="double", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(total)
        assert emulate_once(prog, table, [1, 2, 3]) == (12,)

    def test_scm_program(self):
        table = arith_table()
        b = ProgramBuilder("sum", table)
        (xs,) = b.params("xs")
        out = b.scm(3, split="chunk", comp="sumlist", merge="sumparts", x=xs)
        prog = b.returns(out)
        assert emulate_once(prog, table, list(range(10))) == (45,)

    def test_tf_program(self):
        table = arith_table()
        b = ProgramBuilder("dc", table)
        (xs,) = b.params("xs")
        out = b.tf(4, comp="divconq", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(out)
        assert emulate_once(prog, table, [10, 5]) == (15,)

    def test_chained_applies(self):
        table = arith_table()
        b = ProgramBuilder("quad", table)
        (x,) = b.params("x")
        y = b.apply("double", x)
        z = b.apply("double", y)
        prog = b.returns(z)
        assert emulate_once(prog, table, 3) == (12,)

    def test_stream_program_rejected(self):
        table = arith_table()
        b = ProgramBuilder("p", table)
        st_, item = b.params("state", "item")
        s2 = b.apply("add", st_, item)
        y = b.apply("double", item)
        prog = b.stream(s2, y, inp="double", out="double", init_value=0)
        with pytest.raises(IRError, match="emulate"):
            emulate_once(prog, table, 0, 0)


class TestEmulateStream:
    def make_stream_program(self, items):
        table = arith_table()
        feed = iter(items)

        @table.register("next_item", ins=["unit"], outs=["int"])
        def next_item(_x):
            try:
                return next(feed)
            except StopIteration:
                raise EndOfStream

        @table.register("sink", ins=["int"])
        def sink(_y):
            return None

        b = ProgramBuilder("running_sum", table)
        state, item = b.params("state", "item")
        s2 = b.apply("add", state, item)
        y = b.apply("double", s2)
        prog = b.stream(s2, y, inp="next_item", out="sink", init_value=0, source=None)
        return prog, table

    def test_outputs_and_final_state(self):
        prog, table = self.make_stream_program([1, 2, 3])
        result = emulate(prog, table)
        assert result.outputs == [2, 6, 12]  # double of running sums 1,3,6
        assert result.final_state == 6
        assert result.iterations == 3

    def test_max_iterations(self):
        prog, table = self.make_stream_program([1] * 100)
        result = emulate(prog, table, max_iterations=4)
        assert result.iterations == 4
        assert result.final_state == 4

    def test_init_function(self):
        table = arith_table()

        @table.register("one_item", ins=["unit"], outs=["int"])
        def one_item(_x):
            raise EndOfStream

        @table.register("sink", ins=["int"])
        def sink(_y):
            return None

        @table.register("init7", ins=[], outs=["int"])
        def init7():
            return 7

        b = ProgramBuilder("p", table)
        state, item = b.params("state", "item")
        s2 = b.apply("add", state, item)
        prog = b.stream(s2, s2, inp="one_item", out="sink", init="init7")
        result = emulate(prog, table)
        assert result.final_state == 7
        assert result.outputs == []
