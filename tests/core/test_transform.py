"""Tests for the inter-skeleton transformation rules (paper §6 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FunctionTable, ProgramBuilder, emulate_once
from repro.core.functions import check_declared_properties
from repro.core.transform import (
    TransformReport,
    clamp_degrees,
    compose_functions,
    eliminate_dead_bindings,
    fuse_farms,
    fuse_scm,
    optimize,
)


def farm_table():
    table = FunctionTable()
    table.register("inc", ins=["int"], outs=["int"], cost=100.0)(lambda x: x + 1)
    table.register("dbl", ins=["int"], outs=["int"], cost=100.0)(lambda x: 2 * x)
    table.register(
        "cons", ins=["int list", "int"], outs=["int list"],
        properties=["append"],
    )(lambda acc, y: sorted(acc + [y]))
    table.register(
        "add", ins=["int", "int"], outs=["int"],
        properties=["commutative", "associative"],
    )(lambda a, b: a + b)
    return table


def pipeline_program(table, degree=4):
    """df(dbl) feeding df(inc): the farm-fusion candidate."""
    b = ProgramBuilder("pipe", table)
    (xs,) = b.params("xs")
    mids = b.df(degree, comp="dbl", acc="cons", z=b.const([]), xs=xs)
    total = b.df(degree, comp="inc", acc="add", z=b.const(0), xs=mids)
    return b.returns(total)


class TestProperties:
    def test_declared_properties_hold(self):
        table = farm_table()
        samples = [(0, 1, 2), (5, -3, 7), (0, 0, 0)]
        assert check_declared_properties(table["add"], samples) == []
        list_samples = [([], 1, 2), ([9], 4, 4)]
        assert check_declared_properties(table["cons"], list_samples) == []

    def test_violation_detected(self):
        table = FunctionTable()
        table.register(
            "shift_add", ins=["int", "int"], outs=["int"],
            properties=["commutative"],
        )(lambda a, b: a * 2 + b)
        violations = check_declared_properties(table["shift_add"], [(0, 1, 2)])
        assert violations == ["commutative"]

    def test_identity_property(self):
        table = FunctionTable()
        table.register("idf", ins=["'a"], outs=["'a"], properties=["identity"])(
            lambda x: x
        )
        assert check_declared_properties(table["idf"], [(42,)]) == []


class TestCompose:
    def test_composition_semantics(self):
        table = farm_table()
        name = compose_functions(table, "inc", "dbl")
        assert table[name](5) == 11  # inc(dbl(5))

    def test_composition_cost_is_sum(self):
        table = farm_table()
        name = compose_functions(table, "inc", "dbl")
        assert table[name].cost_of(5) == 200.0

    def test_idempotent(self):
        table = farm_table()
        a = compose_functions(table, "inc", "dbl")
        b = compose_functions(table, "inc", "dbl")
        assert a == b

    def test_rejects_multi_out_inner(self):
        table = farm_table()
        table.register("pair", ins=["int"], outs=["int", "int"])(lambda x: (x, x))
        with pytest.raises(ValueError, match="multi-output"):
            compose_functions(table, "inc", "pair")


class TestDeadCode:
    def test_removes_unused_binding(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        _unused = b.apply("dbl", x)
        y = b.apply("inc", x)
        prog = b.returns(y)
        report = TransformReport()
        out = eliminate_dead_bindings(prog, table, report)
        assert len(out.bindings) == 1
        assert report

    def test_cascading_removal(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        a = b.apply("dbl", x)
        _bb = b.apply("inc", a)  # dead, and then `a` becomes dead too
        y = b.apply("inc", x)
        prog = b.returns(y)
        out = eliminate_dead_bindings(prog, table, TransformReport())
        assert len(out.bindings) == 1

    def test_keeps_results(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        y = b.apply("inc", x)
        prog = b.returns(y)
        out = eliminate_dead_bindings(prog, table, TransformReport())
        assert out.bindings == prog.bindings


class TestFarmFusion:
    def test_fuses_matching_pipeline(self):
        table = farm_table()
        prog = pipeline_program(table)
        fused, report = optimize(prog, table)
        assert len(fused.skeleton_instances()) == 1
        assert "fused df" in report.render()
        (skel,) = fused.skeleton_instances()
        assert skel.funcs["comp"] == "inc__o__dbl"

    def test_fusion_preserves_semantics(self):
        table = farm_table()
        prog = pipeline_program(table)
        fused, _ = optimize(prog, table)
        for xs in ([], [1], [3, 1, 4, 1, 5], list(range(20))):
            assert emulate_once(fused, table, xs) == emulate_once(prog, table, xs)

    @given(st.lists(st.integers(-100, 100), max_size=30), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_fusion_equivalence_property(self, xs, degree):
        table = farm_table()
        prog = pipeline_program(table, degree)
        fused, _ = optimize(prog, table)
        assert emulate_once(fused, table, xs) == emulate_once(prog, table, xs)

    def test_no_fusion_without_append_property(self):
        table = FunctionTable()
        table.register("inc", ins=["int"], outs=["int"])(lambda x: x + 1)
        table.register("dbl", ins=["int"], outs=["int"])(lambda x: 2 * x)
        # cons not declared append: rule must not fire.
        table.register("cons", ins=["int list", "int"], outs=["int list"])(
            lambda acc, y: acc + [y]
        )
        table.register("add", ins=["int", "int"], outs=["int"])(lambda a, b: a + b)
        prog = pipeline_program(table)
        fused, report = optimize(prog, table)
        assert len(fused.skeleton_instances()) == 2
        assert "fused" not in report.render()

    def test_no_fusion_across_degree_mismatch(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        mids = b.df(2, comp="dbl", acc="cons", z=b.const([]), xs=xs)
        total = b.df(4, comp="inc", acc="add", z=b.const(0), xs=mids)
        prog = b.returns(total)
        fused, _ = optimize(prog, table)
        assert len(fused.skeleton_instances()) == 2

    def test_no_fusion_when_intermediate_used_elsewhere(self):
        table = farm_table()
        table.register("length", ins=["int list"], outs=["int"])(len)
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        mids = b.df(4, comp="dbl", acc="cons", z=b.const([]), xs=xs)
        total = b.df(4, comp="inc", acc="add", z=b.const(0), xs=mids)
        n = b.apply("length", mids)
        prog = b.returns(total, n)
        fused, _ = optimize(prog, table)
        assert len(fused.skeleton_instances()) == 2


class TestScmFusion:
    def make_table(self):
        table = FunctionTable()

        def chunk(n, xs):
            base, extra = divmod(len(xs), n)
            out, start = [], 0
            for i in range(n):
                size = base + (1 if i < extra else 0)
                out.append(xs[start : start + size])
                start += size
            return out

        table.register("chunk", ins=["int", "int list"], outs=["chunks"])(chunk)
        table.register("glue", ins=["int list", "chunks"], outs=["int list"])(
            lambda _orig, parts: [v for p in parts for v in p]
        )
        table.register("neg_chunk", ins=["int list"], outs=["int list"])(
            lambda c: [-v for v in c]
        )
        table.register("inc_chunk", ins=["int list"], outs=["int list"])(
            lambda c: [v + 1 for v in c]
        )
        return table

    def make_program(self, table, degree=3):
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        mid = b.scm(degree, split="chunk", comp="neg_chunk", merge="glue", x=xs)
        out = b.scm(degree, split="chunk", comp="inc_chunk", merge="glue", x=mid)
        return b.returns(out)

    def test_fuses_with_declared_inverse(self):
        table = self.make_table()
        prog = self.make_program(table)
        fused, report = optimize(
            prog, table, inverse_pairs=[("glue", "chunk")]
        )
        assert len(fused.skeleton_instances()) == 1
        assert "fused scm" in report.render()

    def test_semantics_preserved(self):
        table = self.make_table()
        prog = self.make_program(table)
        fused, _ = optimize(prog, table, inverse_pairs=[("glue", "chunk")])
        for xs in ([], [5], [1, 2, 3, 4, 5, 6, 7]):
            assert emulate_once(fused, table, xs) == emulate_once(prog, table, xs)

    def test_no_fusion_without_declaration(self):
        table = self.make_table()
        prog = self.make_program(table)
        fused, _ = optimize(prog, table)  # no inverse_pairs
        assert len(fused.skeleton_instances()) == 2


class TestClampDegrees:
    def test_clamps_to_machine_size(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        out = b.df(16, comp="inc", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(out)
        clamped, report = optimize(prog, table, max_degree=4)
        assert clamped.skeleton_instances()[0].degree == 4
        assert "clamped" in report.render()

    def test_clamping_preserves_semantics(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        out = b.df(16, comp="inc", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(out)
        clamped, _ = optimize(prog, table, max_degree=4)
        xs_val = list(range(10))
        assert emulate_once(clamped, table, xs_val) == emulate_once(
            prog, table, xs_val
        )

    def test_no_clamp_needed(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        out = b.df(2, comp="inc", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(out)
        same, report = optimize(prog, table, max_degree=8)
        assert same.skeleton_instances()[0].degree == 2
        assert not report


class TestCommonSubexpressionElimination:
    def test_duplicate_applies_merge(self):
        from repro.core.transform import merge_duplicate_applies

        table = farm_table()
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        a1 = b.apply("dbl", x)
        a2 = b.apply("dbl", x)  # identical call
        y1 = b.apply("inc", a1)
        y2 = b.apply("inc", a2)  # identical after renaming
        prog = b.returns(y1, y2)
        out, report = optimize(prog, table)
        applies = [bd for bd in out.bindings if bd.__class__.__name__ == "Apply"]
        assert len(applies) == 2  # dbl once, inc once
        assert out.results[0] == out.results[1]
        assert "merged duplicate" in report.render()

    def test_semantics_preserved(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        a1 = b.apply("dbl", x)
        a2 = b.apply("dbl", x)
        y1 = b.apply("inc", a1)
        y2 = b.apply("inc", a2)
        prog = b.returns(y1, y2)
        out, _ = optimize(prog, table)
        assert emulate_once(out, table, 5) == emulate_once(prog, table, 5)

    def test_duplicate_constants_merge(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        r1 = b.df(2, comp="dbl", acc="add", z=b.const(0), xs=xs)
        r2 = b.df(2, comp="inc", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(r1, r2)
        out, report = optimize(prog, table)
        consts = [bd for bd in out.bindings if bd.__class__.__name__ == "Const"]
        assert len(consts) == 1
        assert "constant" in report.render()
        assert emulate_once(out, table, [1, 2]) == emulate_once(
            prog, table, [1, 2]
        )

    def test_different_args_not_merged(self):
        from repro.core.transform import merge_duplicate_applies

        table = farm_table()
        b = ProgramBuilder("p", table)
        x, y = b.params("x", "y")
        a1 = b.apply("dbl", x)
        a2 = b.apply("dbl", y)
        prog = b.returns(a1, a2)
        report = TransformReport()
        out = merge_duplicate_applies(prog, table, report)
        assert len(out.bindings) == 2
        assert not report
