"""Tests for the sequential-function registry."""

import pytest

from repro.core import FunctionSpec, FunctionTable, constant_cost, payload_bytes


def make_table():
    table = FunctionTable()

    @table.register("inc", ins=["int"], outs=["int"], cost=5.0)
    def inc(x):
        return x + 1

    @table.register(
        "predict", ins=["mark list"], outs=["mark list", "state"], doc="split outs"
    )
    def predict(marks):
        return marks, {"n": len(marks)}

    @table.register("show", ins=["mark list"])  # sink: no outs
    def show(_marks):
        return None

    return table


class TestFunctionSpec:
    def test_signature_rendering(self):
        spec = FunctionSpec("f", lambda a, b: a, ["state", "img"], ["mark list"])
        assert spec.signature() == "state * img -> mark list"

    def test_nullary_signature(self):
        spec = FunctionSpec("init", lambda: 0, [], ["state"])
        assert spec.signature() == "unit -> state"

    def test_sink_defaults_to_unit_out(self):
        spec = FunctionSpec("show", lambda x: None, ["img"], ())
        assert spec.outs == ("unit",)
        assert spec.n_outs == 1

    def test_call_checks_arity(self):
        spec = FunctionSpec("f", lambda a: a, ["int"], ["int"])
        assert spec(3) == 3
        with pytest.raises(TypeError):
            spec(1, 2)

    def test_cost_constant(self):
        spec = FunctionSpec("f", lambda a: a, ["int"], ["int"], constant_cost(7.5))
        assert spec.cost_of(99) == 7.5

    def test_cost_data_dependent(self):
        spec = FunctionSpec(
            "f", lambda xs: xs, ["list"], ["list"], cost=lambda xs: 2.0 * len(xs)
        )
        assert spec.cost_of([1, 2, 3]) == 6.0

    def test_cost_unmodelled(self):
        spec = FunctionSpec("f", lambda a: a, ["int"], ["int"])
        assert spec.cost_of(1) is None


class TestFunctionTable:
    def test_lookup_and_contains(self):
        table = make_table()
        assert "inc" in table
        assert table["inc"](4) == 5
        assert len(table) == 3
        assert set(table.names()) == {"inc", "predict", "show"}

    def test_unknown_function(self):
        table = make_table()
        with pytest.raises(KeyError, match="unknown sequential function"):
            table["nope"]

    def test_duplicate_rejected(self):
        table = make_table()
        with pytest.raises(ValueError, match="already registered"):

            @table.register("inc", ins=["int"], outs=["int"])
            def inc2(x):
                return x

    def test_register_numeric_cost(self):
        table = make_table()
        assert table["inc"].cost_of(0) == 5.0

    def test_multi_out_spec(self):
        table = make_table()
        spec = table["predict"]
        assert spec.n_outs == 2
        marks, state = spec([1, 2])
        assert state == {"n": 2}

    def test_iteration(self):
        table = make_table()
        assert {s.name for s in table} == {"inc", "predict", "show"}


class TestPayloadBytes:
    def test_scalars(self):
        assert payload_bytes(None) == 0
        assert payload_bytes(True) == 1
        assert payload_bytes(7) == 4
        assert payload_bytes(3.14) == 4

    def test_containers(self):
        assert payload_bytes([1, 2, 3]) == 4 + 12
        assert payload_bytes((1.0, 2.0)) == 4 + 8
        assert payload_bytes({"a": 1}) == 4 + (4 + 1) + 4

    def test_numpy_and_image(self):
        import numpy as np

        from repro.vision import Image

        assert payload_bytes(np.zeros(10, dtype=np.uint8)) == 14
        assert payload_bytes(Image.zeros(4, 4)) == 4 + 16

    def test_dataclass_recursion(self):
        from repro.vision import Mark, Rect

        m = Mark((1.0, 2.0), Rect(0, 0, 2, 2), 4)
        # center tuple (4+8) + rect (4 ints = 16) + count (4)
        assert payload_bytes(m) == 12 + 16 + 4

    def test_opaque_fallback(self):
        class Weird:
            pass

        assert payload_bytes(Weird()) == 64
