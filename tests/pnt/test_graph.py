"""Tests for the process-graph IR."""

import pytest

from repro.pnt import Edge, GraphError, Process, ProcessGraph, ProcessKind


def linear_graph():
    g = ProcessGraph("lin")
    g.add_process(Process("a", ProcessKind.INPUT, n_in=0, n_out=1))
    g.add_process(Process("b", ProcessKind.APPLY, func="f"))
    g.add_process(Process("c", ProcessKind.OUTPUT, n_in=1, n_out=0))
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestConstruction:
    def test_duplicate_process(self):
        g = linear_graph()
        with pytest.raises(GraphError, match="duplicate"):
            g.add_process(Process("a", ProcessKind.APPLY))

    def test_unknown_kind(self):
        with pytest.raises(GraphError, match="unknown process kind"):
            Process("x", "banana")

    def test_edge_to_missing_process(self):
        g = linear_graph()
        with pytest.raises(GraphError, match="does not exist"):
            g.add_edge("a", "zzz")

    def test_edge_port_bounds(self):
        g = linear_graph()
        with pytest.raises(GraphError, match="no port"):
            g.add_edge("a", "b", src_port=3)
        with pytest.raises(GraphError, match="no port"):
            g.add_edge("a", "b", dst_port=5)

    def test_queries(self):
        g = linear_graph()
        assert g.predecessors("b") == ["a"]
        assert g.successors("b") == ["c"]
        assert len(g) == 3
        assert "a" in g
        assert g["b"].func == "f"
        assert [p.id for p in g.by_kind(ProcessKind.APPLY)] == ["b"]


class TestValidation:
    def test_valid_linear(self):
        linear_graph().validate()

    def test_unconnected_input_port(self):
        g = ProcessGraph()
        g.add_process(Process("sink", ProcessKind.OUTPUT, n_in=1, n_out=0))
        with pytest.raises(GraphError, match="not connected"):
            g.validate()

    def test_double_fed_input_port(self):
        g = linear_graph()
        g.add_edge("a", "b")  # second feed into b[0]
        with pytest.raises(GraphError, match="incoming edges"):
            g.validate()

    def test_dangling_output(self):
        g = ProcessGraph()
        g.add_process(Process("src", ProcessKind.INPUT, n_in=0, n_out=1))
        with pytest.raises(GraphError, match="dangles"):
            g.validate()

    def test_cycle_detected(self):
        g = ProcessGraph()
        g.add_process(Process("a", ProcessKind.APPLY))
        g.add_process(Process("b", ProcessKind.APPLY))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_loop_edge_not_a_cycle(self):
        g = ProcessGraph()
        g.add_process(Process("mem", ProcessKind.MEM))
        g.add_process(Process("f", ProcessKind.APPLY))
        g.add_edge("mem", "f")
        g.add_edge("f", "mem", loop=True)
        order = g.topological_order()
        assert order.index("mem") < order.index("f")

    def test_skeleton_cycle_condensed(self):
        """Intra-skeleton cycles (farm protocol) are legal."""
        g = ProcessGraph()
        g.add_process(Process("m", ProcessKind.MASTER, skeleton="df0",
                              n_in=1, n_out=1))
        g.add_process(Process("w", ProcessKind.WORKER, skeleton="df0"))
        g.add_edge("m", "w")
        g.add_edge("w", "m")
        order = g.group_topological_order()
        assert sorted(order[0]) == ["m", "w"]

    def test_inter_skeleton_cycle_rejected(self):
        g = ProcessGraph()
        g.add_process(Process("a", ProcessKind.WORKER, skeleton="s1"))
        g.add_process(Process("b", ProcessKind.WORKER, skeleton="s2"))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(GraphError, match="cycle"):
            g.group_topological_order()


class TestRendering:
    def test_dot_output_mentions_everything(self):
        g = linear_graph()
        dot = g.to_dot()
        assert '"a"' in dot and '"b"' in dot and '"c"' in dot
        assert "->" in dot

    def test_summary(self):
        s = linear_graph().summary()
        assert "3 processes" in s
        assert "2 edges" in s
