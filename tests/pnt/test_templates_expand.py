"""Tests for PNT instantiation and program expansion (paper Fig. 1 / E1)."""

import pytest

from repro.core import FunctionTable, ProgramBuilder
from repro.pnt import (
    ProcessGraph,
    ProcessKind,
    expand_program,
    instantiate_df,
    instantiate_scm,
)


def farm_table():
    table = FunctionTable()
    table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
    table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
    table.register("split", ins=["int", "'a"], outs=["'b list"])(lambda n, x: [x])
    table.register("merge", ins=["'a", "'c list"], outs=["'d"])(lambda x, rs: rs)
    table.register("feed", ins=["unit"], outs=["'a list"])(lambda _: [])
    return table


class TestDfTemplate:
    """E1: the df PNT has the exact structure of paper Fig. 1."""

    def make(self, n):
        g = ProcessGraph("fig1")
        ports = instantiate_df(g, "df0", n, "comp", "acc")
        return g, ports

    def test_process_census(self):
        g, _ = self.make(4)
        assert len(g.by_kind(ProcessKind.MASTER)) == 1
        assert len(g.by_kind(ProcessKind.WORKER)) == 4
        assert len(g.by_kind(ProcessKind.ROUTER_MW)) == 4
        assert len(g.by_kind(ProcessKind.ROUTER_WM)) == 4
        # 1 + 3n processes total, matching Fig. 1.
        assert len(g) == 1 + 3 * 4

    def test_ring_of_edges(self):
        g, _ = self.make(3)
        master = g.by_kind(ProcessKind.MASTER)[0]
        for i in range(3):
            mw, w, wm = f"df0.mw{i}", f"df0.worker{i}", f"df0.wm{i}"
            assert g.successors(mw) == [w]
            assert g.successors(w) == [wm]
            assert master.id in g.successors(wm)
            assert mw in g.successors(master.id)

    def test_routers_colocated_with_worker(self):
        g, _ = self.make(2)
        for i in range(2):
            assert g[f"df0.mw{i}"].colocate_with == f"df0.worker{i}"
            assert g[f"df0.wm{i}"].colocate_with == f"df0.worker{i}"

    def test_worker_runs_comp_master_runs_acc(self):
        g, _ = self.make(2)
        assert g["df0.worker0"].func == "comp"
        assert g["df0.master"].func == "acc"

    def test_parametric_in_degree(self):
        for n in (1, 2, 8, 16):
            g, _ = self.make(n)
            assert len(g) == 1 + 3 * n


class TestScmTemplate:
    def test_census_and_wiring(self):
        g = ProcessGraph()
        ports = instantiate_scm(g, "scm0", 4, "split", "comp", "merge")
        assert len(g.by_kind(ProcessKind.SPLIT)) == 1
        assert len(g.by_kind(ProcessKind.WORKER)) == 4
        assert len(g.by_kind(ProcessKind.MERGE)) == 1
        for i in range(4):
            w = f"scm0.worker{i}"
            assert g.predecessors(w) == ["scm0.split"]
            assert g.successors(w) == ["scm0.merge"]
        assert ports.result[0] == "scm0.merge"


class TestExpandProgram:
    def test_one_shot_df(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        r = b.df(3, comp="comp", acc="acc", z=b.const(0), xs=xs)
        prog = b.returns(r)
        g = expand_program(prog, table)
        g.validate()
        assert len(g.by_kind(ProcessKind.INPUT)) == 1
        assert len(g.by_kind(ProcessKind.OUTPUT)) == 1
        assert len(g.by_kind(ProcessKind.CONST)) == 1
        assert len(g.by_kind(ProcessKind.WORKER)) == 3

    def test_scm_input_fans_to_split_and_merge(self):
        table = farm_table()
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        r = b.scm(2, split="split", comp="comp", merge="merge", x=x)
        prog = b.returns(r)
        g = expand_program(prog, table)
        succ = set(g.successors("in.x"))
        assert succ == {"scm0.split", "scm0.merge"}

    def test_stream_has_mem_loop(self):
        table = farm_table()
        table.register("step", ins=["'c", "'a list"], outs=["'c", "'d"])(
            lambda s, xs: (s, None)
        )
        table.register("emit", ins=["'d"])(lambda y: None)
        b = ProgramBuilder("p", table)
        state, item = b.params("state", "item")
        s2, y = b.apply("step", state, item)
        prog = b.stream(s2, y, inp="feed", out="emit", init_value=0, source=None)
        g = expand_program(prog, table)
        loop_edges = [e for e in g.edges if e.loop]
        assert len(loop_edges) == 1
        assert loop_edges[0].dst == "stream.mem"
        assert g["stream.input"].func == "feed"
        assert g["stream.output"].func == "emit"

    def test_unused_outputs_get_discard_sinks(self):
        table = farm_table()
        table.register("pair", ins=["'a"], outs=["'a", "'a"])(lambda x: (x, x))
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        first, _second = b.apply("pair", x)
        prog = b.returns(first)
        g = expand_program(prog, table)
        discards = [
            p for p in g.by_kind(ProcessKind.OUTPUT) if p.params.get("discard")
        ]
        assert len(discards) == 1
        g.validate()

    def test_case_study_process_count(self):
        """8-worker tracking app: structure per Fig. 1 + endpoints."""
        from repro.minicaml import compile_source

        table = FunctionTable()
        table.register("read_img", ins=["int * int"], outs=["img"])(lambda s: None)
        table.register("init_state", ins=[], outs=["state"])(lambda: None)
        table.register(
            "get_windows", ins=["int", "state", "img"], outs=["window list"]
        )(lambda n, s, i: [])
        table.register("detect_mark", ins=["window"], outs=["mark"])(lambda w: None)
        table.register(
            "accum_marks", ins=["mark list", "mark"], outs=["mark list"]
        )(lambda o, m: o)
        table.register("predict", ins=["mark list"], outs=["mark list", "state"])(
            lambda m: (m, None)
        )
        table.register("display_marks", ins=["mark list"])(lambda m: None)
        src = """
        let nproc = 8;;
        let s0 = init_state ();;
        let loop (state, im) =
          let ws = get_windows nproc state im in
          let marks = df nproc detect_mark accum_marks [] ws in
          let ms, st = predict marks in
          (st, ms);;
        let main = itermem read_img loop display_marks s0 (512,512);;
        """
        prog = compile_source(src, table)
        g = expand_program(prog.ir, table)
        # df instance: 1 master + 8 workers + 16 routers = 25
        assert len(g.by_kind(ProcessKind.WORKER)) == 8
        assert len(g.by_kind(ProcessKind.ROUTER_MW)) == 8
        assert len(g.by_kind(ProcessKind.ROUTER_WM)) == 8
        # stream: input + mem + output; body: get_windows + predict; 2 consts
        assert len(g.by_kind(ProcessKind.APPLY)) == 2
        assert len(g.by_kind(ProcessKind.MEM)) == 1
        g.validate()

    def test_expansion_is_deterministic(self):
        table = farm_table()

        def build():
            b = ProgramBuilder("p", table)
            (xs,) = b.params("xs")
            r = b.df(3, comp="comp", acc="acc", z=b.const(0), xs=xs)
            return expand_program(b.returns(r), table)

        g1, g2 = build(), build()
        assert sorted(g1.processes) == sorted(g2.processes)
        assert [repr(e) for e in g1.edges] == [repr(e) for e in g2.edges]
