"""ClusterHarness pool behaviour: fail-fast checkout, safe teardown.

A service parks requests behind :meth:`ClusterHarness.checkout`, so the
pool must never block a caller forever (a dead cluster raises) and
shutdown must be safe to call from any number of racing threads.
"""

import threading
import time

import pytest

from repro.backends import BackendError
from repro.net import ClusterHarness
from repro.net.harness import _shutdown_shared, shared_cluster


class TestCheckoutFailFast:
    def test_checkout_after_shutdown_raises_immediately(self):
        harness = ClusterHarness(size=1)
        harness.shutdown()
        t0 = time.monotonic()
        with pytest.raises(BackendError, match="shut down"):
            harness.checkout(1, timeout=30.0)
        assert time.monotonic() - t0 < 1.0, (
            "a shut-down cluster must refuse instantly, not wait out "
            "the timeout"
        )

    def test_checkout_timeout_on_empty_external_pool(self):
        """spawn=False and nobody dials in: the timeout is the bound."""
        with ClusterHarness(size=2, spawn=False) as harness:
            t0 = time.monotonic()
            with pytest.raises(BackendError, match="worker"):
                harness.checkout(1, timeout=0.5)
            elapsed = time.monotonic() - t0
            assert 0.4 <= elapsed < 5.0

    def test_checkout_hopeless_cluster_raises_before_timeout(self):
        """Every subprocess dead + respawn budget exhausted: the
        checkout must fail as soon as the deaths are observed, not
        after the full timeout."""
        harness = ClusterHarness(size=1, respawn_limit=0)
        try:
            links = harness.checkout(1, timeout=30.0)
            harness.release(links)
            for proc in list(harness._procs):
                proc.kill()
                proc.wait(timeout=5.0)
            t0 = time.monotonic()
            with pytest.raises(BackendError, match="respawn budget"):
                harness.checkout(1, timeout=60.0)
            assert time.monotonic() - t0 < 15.0, (
                "a provably dead cluster must not sit out the timeout"
            )
        finally:
            harness.shutdown()

    def test_checkout_release_cycle(self):
        with ClusterHarness(size=2) as harness:
            links = harness.checkout(2, timeout=30.0)
            assert len(links) == 2
            harness.release(links)
            again = harness.checkout(1, timeout=30.0)
            assert len(again) == 1
            harness.release(again)


class TestShutdownSafety:
    def test_shutdown_idempotent(self):
        harness = ClusterHarness(size=1)
        harness.shutdown()
        harness.shutdown()  # second call is a no-op, not an error
        assert not harness.alive

    def test_shutdown_concurrent_callers(self):
        harness = ClusterHarness(size=2)
        harness.checkout(2, timeout=30.0)  # teardown with links out
        errors = []
        barrier = threading.Barrier(8)

        def race():
            try:
                barrier.wait(10.0)
                harness.shutdown()
            except Exception as err:  # pragma: no cover
                errors.append(err)

        threads = [threading.Thread(target=race) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not errors
        assert not any(t.is_alive() for t in threads), (
            "every racing shutdown caller must return"
        )
        assert not harness.alive

    def test_shared_cluster_shutdown_idempotent_and_replaceable(self):
        first = shared_cluster(size=2)
        assert first.alive
        threads = [threading.Thread(target=_shutdown_shared)
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not first.alive
        second = shared_cluster(size=2)
        try:
            assert second is not first
            assert second.alive
        finally:
            _shutdown_shared()


class TestNoWorkerLeak:
    def test_repeated_checkout_release_leaks_no_workers(self):
        """Checkout/release churn from many threads must neither grow
        the subprocess set nor strand links outside the pool."""
        with ClusterHarness(size=2) as harness:
            harness.checkout(2, timeout=30.0)  # wait for both to dial in
            harness.release(harness._out[:])
            baseline = {proc.pid for proc in harness._procs}
            errors = []

            def churn():
                try:
                    for _ in range(10):
                        links = harness.checkout(1, timeout=30.0)
                        time.sleep(0.005)
                        harness.release(links)
                except BackendError as err:  # pragma: no cover
                    errors.append(err)

            threads = [threading.Thread(target=churn) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60.0)
            assert not errors
            with harness._cond:
                assert len(harness._idle) == 2, (
                    "all links must be back in the pool"
                )
                assert not harness._out
                pids = {proc.pid for proc in harness._procs}
            assert pids == baseline, (
                f"churn respawned workers: {baseline} -> {pids}"
            )
