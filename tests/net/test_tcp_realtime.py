"""Realtime budgets and the chaos soak over the tcp backend.

The admission half of :class:`~repro.realtime.kernel.RealtimeKernel`
runs on the worker that hosts the stream input, the delivery half on the
worker that hosts the output, and their released/delivered counters ride
the coordinator as COUNT frames — these tests prove the two ledger
halves still reconcile when each half lives in a different process on a
different socket.
"""

import pytest

from repro.net import ClusterHarness
from repro.realtime.soak import run_soak


@pytest.fixture(scope="module")
def cluster():
    with ClusterHarness(size=4) as harness:
        yield harness


class TestRealtimeOverTcp:
    def test_quiet_stream_holds_budget(self, cluster):
        result = run_soak(
            "tcp", seed=0, frames=20, chaos=False,
            deadline_ms=200.0, frame_period_ms=5.0, timeout=90.0,
            cluster=cluster,
        )
        assert result.ok, result.violations
        ledger = result.report.realtime.ledger
        assert ledger.submitted == 20
        assert ledger.unaccounted() == 0
        assert ledger.delivered
        assert ledger.deadline_misses == 0

    def test_chaos_soak_conserves_frames(self, cluster):
        result = run_soak(
            "tcp", seed=3, frames=30, n_faults=4, timeout=120.0,
            cluster=cluster,
        )
        assert result.ok, result.violations
        rt = result.report.realtime
        assert rt.ledger.submitted == 30
        assert rt.ledger.unaccounted() == 0

    def test_rt_instants_carry_host_tags(self, cluster):
        # A 1 ms deadline on ~300 us-per-piece frames guarantees misses,
        # so the admission half must emit rt:* events to tag.
        result = run_soak(
            "tcp", seed=0, frames=10, chaos=False,
            deadline_ms=1.0, frame_period_ms=2.0, timeout=90.0,
            cluster=cluster,
        )
        instants = [
            i for i in result.report.trace.instants
            if i.name.startswith("rt:")
        ]
        assert instants
        assert all("[host " in i.detail for i in instants)

    def test_back_to_back_soaks_reset_stream_state(self, cluster):
        """The grab counter lives in module state: a persistent worker
        must re-import it per run, or the second soak starves."""
        for _ in range(2):
            result = run_soak(
                "tcp", seed=1, frames=15, chaos=False,
                deadline_ms=200.0, frame_period_ms=5.0, timeout=90.0,
                cluster=cluster,
            )
            assert result.ok, result.violations
            assert result.report.realtime.ledger.submitted == 15
