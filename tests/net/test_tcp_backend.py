"""The tcp backend end to end on a localhost cluster.

Every test runs real ``repro worker`` subprocesses connected over real
sockets — the same path a network-of-workstations deployment uses, just
with every workstation on 127.0.0.1.
"""

import threading
import time

import pytest

from repro.backends import backend_capabilities, get_backend
from repro.core import FunctionTable, ProgramBuilder
from repro.faults import FaultPlan, FaultPolicy
from repro.faults.topology import FaultTopology
from repro.machine import FAST_TEST
from repro.net import ClusterHarness
from repro.pnt import expand_program
from repro.syndex import distribute, ring

from tests.backends.test_backend_equivalence import RECIPES, run_on


@pytest.fixture(scope="module")
def cluster():
    with ClusterHarness(size=4) as harness:
        yield harness


def run_tcp(factory, cluster, arch_size=4, **options):
    prog, table, args = factory()
    mapping = distribute(expand_program(prog, table), ring(arch_size))
    return get_backend("tcp").run(
        mapping, table,
        program=prog,
        costs=FAST_TEST,
        args=args,
        timeout=60.0,
        cluster=cluster,
        **options,
    )


class TestDistributedEquivalence:
    @pytest.mark.parametrize("skeleton", sorted(RECIPES))
    def test_matches_emulation(self, skeleton, cluster):
        reference = run_on("emulate", RECIPES[skeleton])
        report = run_tcp(RECIPES[skeleton], cluster)
        assert report.outputs == reference.outputs, (
            f"{skeleton}: tcp diverged from emulation"
        )
        assert report.final_state == reference.final_state
        if reference.one_shot_results is not None:
            assert report.one_shot_results == reference.one_shot_results

    def test_more_processors_than_workers(self, cluster):
        """ring:8 on 4 workers: processors co-hosted round-robin."""
        reference = run_on("emulate", RECIPES["df"], arch_size=8)
        report = run_tcp(RECIPES["df"], cluster, arch_size=8)
        assert report.one_shot_results == reference.one_shot_results

    def test_reports_wall_clock_and_spans(self, cluster):
        report = run_tcp(RECIPES["df"], cluster)
        assert report.wall_clock
        assert report.backend == "tcp"
        assert report.makespan > 0
        assert report.trace is not None
        assert report.trace.compute

    def test_runs_back_to_back_on_one_cluster(self, cluster):
        """Persistent workers must not leak state between runs."""
        first = run_tcp(RECIPES["itermem"], cluster)
        second = run_tcp(RECIPES["itermem"], cluster)
        assert first.outputs == second.outputs


def test_capability_matrix_reports_tcp_distributed():
    caps = backend_capabilities()
    assert caps["tcp"] == {
        "real": True, "faults": True, "realtime": True, "distributed": True,
    }
    assert not caps["emulate"]["distributed"]
    assert not caps["processes"]["distributed"]


class TestConformanceOverTcp:
    """The differential oracle drives tcp exactly like any backend —
    ``run_case`` passes no options, so the shared localhost cluster
    serves every case."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_generated_cases_conform(self, seed):
        from repro.conformance import generate_case, run_case

        assert run_case(generate_case(seed), ["tcp"]) is None

    def test_faulted_case_conforms(self):
        from repro.conformance import generate_case, run_case

        for seed in range(30):
            spec = generate_case(seed, allow_faults=True)
            if spec.faults:
                assert run_case(spec, ["tcp"]) is None, spec.to_dict()
                return
        pytest.fail("no faulted case in the first 30 seeds")


# -- chaos: a worker's socket dies mid-run ------------------------------------

def crunch(x):
    time.sleep(0.1)
    return x * x


def add(a, b):
    return a + b


def make_slow_df():
    table = FunctionTable()
    table.register("crunch", ins=["int"], outs=["int"], cost=50.0)(crunch)
    table.register(
        "add", ins=["int", "int"], outs=["int"], cost=10.0,
        properties=["commutative", "associative"],
    )(add)
    b = ProgramBuilder("df_slow", table)
    (xs,) = b.params("xs")
    r = b.df(3, comp="crunch", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table, (list(range(10)),)


CHAOS_POLICY = FaultPolicy(
    packet_timeout_s=0.3,
    heartbeat_timeout_s=0.15,
    poll_s=0.002,
    probe_after_s=10.0,  # a killed socket must stay quarantined
)


def test_survives_worker_socket_kill_mid_run():
    prog, table, args = make_slow_df()
    mapping = distribute(expand_program(prog, table), ring(4))
    participating = [
        p for p in mapping.arch.processor_ids() if mapping.processes_on(p)
    ]
    topology = FaultTopology.from_mapping(mapping)
    farms = [farm for farm in topology.farms if farm.supervised]
    assert farms, "expected a supervised farm"
    farm = farms[0]
    owner_proc = topology.pid_to_processor.get(farm.owner_pid)
    by_proc = {}
    for pid, proc in mapping.assignment.items():
        by_proc.setdefault(proc, []).append(pid)
    # A processor that hosts one farm worker (plus its relay processes)
    # and nothing else — killing it must not take down the master, the
    # stream input, or the sink.
    worker_procs = {w.processor for w in farm.workers}
    victims = [
        proc for proc in sorted(worker_procs)
        if proc != owner_proc
        and all(pid.startswith(f"{farm.sid}.") for pid in by_proc[proc])
    ]
    assert victims, "expected a processor hosting only farm-cell pids"
    victim = victims[0]

    timers = []

    def on_assign(assignment):
        # One worker per processor (cluster size == len(participating)),
        # so killing this socket kills exactly the victim processor.
        link = assignment[victim]
        timer = threading.Timer(0.25, link.link.close)
        timer.start()
        timers.append(timer)

    with ClusterHarness(size=len(participating)) as harness:
        try:
            report = get_backend("tcp").run(
                mapping, table,
                args=args,
                timeout=60.0,
                cluster=harness,
                fault_plan=FaultPlan(seed=0),
                fault_policy=CHAOS_POLICY,
                on_assign=on_assign,
            )
        finally:
            for timer in timers:
                timer.cancel()

    expected = sum(x * x for x in range(10))
    assert report.one_shot_results == (expected,)
    assert report.faults is not None
    categories = {r.category for r in report.faults.records}
    assert "detected" in categories
    assert "quarantine" in categories
    assert "redispatch" in categories
    # The fault instants carry the host tag of the worker that owned them.
    tagged = [
        i for i in report.trace.instants if i.name.startswith("fault:")
    ]
    assert tagged and all("[host " in i.detail for i in tagged)


def test_dead_worker_without_supervision_is_fatal():
    from repro.backends import BackendError

    prog, table, args = make_slow_df()
    mapping = distribute(expand_program(prog, table), ring(4))
    timers = []

    def on_assign(assignment):
        link = next(iter(assignment.values()))
        timer = threading.Timer(0.2, link.link.close)
        timer.start()
        timers.append(timer)

    with ClusterHarness(size=2) as harness:
        try:
            with pytest.raises(BackendError, match="connection lost"):
                get_backend("tcp").run(
                    mapping, table,
                    args=args,
                    timeout=30.0,
                    cluster=harness,
                    on_assign=on_assign,
                )
        finally:
            for timer in timers:
                timer.cancel()
