"""Property and example tests for the pickle-free wire codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.kernel import NoPiece, Stop
from repro.core.semantics import TaskOutcome
from repro.faults.supervisor import Packet, Result
from repro.net import CodecError, decode, encode, encoded_size


def roundtrip(value):
    buffers = encode(value)
    blob = b"".join(
        bytes(b) if isinstance(b, memoryview) else b for b in buffers
    )
    assert encoded_size(buffers) == len(blob)
    return decode(blob)


# -- hypothesis strategies ----------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # includes > 64-bit values (the bigint path)
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)

DTYPES = ["u1", "i2", "i4", "i8", "f4", "f8", "c8", "bool"]

arrays = st.builds(
    lambda dtype, shape, seed: (
        np.random.default_rng(seed)
        .integers(0, 100, size=shape)
        .astype(dtype)
    ),
    st.sampled_from(DTYPES),
    st.lists(st.integers(0, 4), min_size=0, max_size=3).map(tuple),
    st.integers(0, 2**32 - 1),
)


@given(values)
@settings(max_examples=200, deadline=None)
def test_python_values_roundtrip(value):
    assert roundtrip(value) == value


@given(arrays)
@settings(max_examples=100, deadline=None)
def test_arrays_roundtrip(arr):
    out = roundtrip(arr)
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    np.testing.assert_array_equal(out, arr)


@given(st.floats(allow_nan=True, allow_infinity=True))
@settings(deadline=None)
def test_floats_roundtrip_bitexact(x):
    out = roundtrip(x)
    assert np.isnan(out) if np.isnan(x) else out == x


def test_none_bearing_frames():
    frame = (None, [None, (1, None)], {"k": None})
    assert roundtrip(frame) == frame


def test_nested_tuple_with_array_payload():
    arr = np.arange(12, dtype=np.float32).reshape(3, 4)
    seq, payload = roundtrip((7, ("frame", arr)))
    assert seq == 7
    assert payload[0] == "frame"
    np.testing.assert_array_equal(payload[1], arr)


def test_noncontiguous_array_roundtrips():
    arr = np.arange(24, dtype=np.int64).reshape(4, 6)[::2, ::3]
    assert not arr.flags["C_CONTIGUOUS"]
    np.testing.assert_array_equal(roundtrip(arr), arr)


def test_zero_copy_send_path():
    """A contiguous array's own buffer rides the frame uncopied."""
    arr = np.arange(1000, dtype=np.float64)
    buffers = encode(arr)
    views = [b for b in buffers if isinstance(b, memoryview)]
    assert len(views) == 1
    assert views[0].obj is arr or views[0].nbytes == arr.nbytes


def test_numpy_scalars_roundtrip():
    for value in (np.int32(-7), np.float64(2.5), np.uint8(255)):
        out = roundtrip(value)
        assert out == value
        assert out.dtype == value.dtype


def test_executive_tokens_roundtrip():
    assert isinstance(roundtrip(Stop()), Stop)
    assert isinstance(roundtrip(NoPiece()), NoPiece)
    packet = roundtrip(Packet(3, (1, 2)))
    assert (packet.seq, packet.value) == (3, (1, 2))
    result = roundtrip(Result(9, [4, 5]))
    assert (result.seq, result.value) == (9, [4, 5])
    outcome = roundtrip(TaskOutcome(results=[1], subtasks=[2, 3]))
    assert list(outcome.results) == [1]
    assert list(outcome.subtasks) == [2, 3]


def test_bool_not_confused_with_int():
    out = roundtrip((True, 1, False, 0))
    assert [type(v) for v in out] == [bool, int, bool, int]


@given(values)
@settings(max_examples=100, deadline=None)
def test_truncated_frames_rejected(value):
    blob = b"".join(
        bytes(b) if isinstance(b, memoryview) else b for b in encode(value)
    )
    for cut in range(len(blob)):
        with pytest.raises(CodecError):
            decode(blob[:cut])


def test_trailing_garbage_rejected():
    blob = b"".join(bytes(b) for b in encode(42)) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        decode(blob)


def test_unknown_tag_rejected():
    with pytest.raises(CodecError, match="unknown wire tag"):
        decode(b"Z")


def test_object_dtype_rejected():
    arr = np.array([object()], dtype=object)
    with pytest.raises(CodecError, match="object-dtype"):
        encode(arr)


def test_unencodable_type_rejected():
    class Exotic:
        pass

    with pytest.raises(CodecError, match="not wire-encodable"):
        encode(Exotic())


def test_inconsistent_array_header_rejected():
    arr = np.arange(4, dtype=np.int32)
    blob = bytearray(b"".join(bytes(b) for b in encode(arr)))
    # Corrupt the nbytes field (last 4 header bytes before the payload).
    offset = len(blob) - arr.nbytes - 4
    blob[offset:offset + 4] = (999).to_bytes(4, "big")
    with pytest.raises(CodecError):
        decode(bytes(blob))
