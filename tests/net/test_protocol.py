"""Framing, flow control, and cluster-harness mechanics."""

import queue
import socket
import struct
import threading

import pytest

from repro.net import ClusterHarness, ConnectionClosed, Frame, Link
from repro.net.protocol import pack_edge, pack_run, split_edge, split_run
from repro.net.worker import parse_hostport


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    links = (Link(a), Link(b))
    yield links
    for link in links:
        link.close()


class TestLink:
    def test_frame_roundtrip(self, pair):
        tx, rx = pair
        tx.send(Frame.DATA, b"hello ", b"world")
        kind, body = rx.recv()
        assert kind == Frame.DATA
        assert bytes(body) == b"hello world"

    def test_memoryview_buffers(self, pair):
        tx, rx = pair
        payload = memoryview(bytearray(range(256)))
        tx.send(Frame.DATA, b"head-", payload)
        _kind, body = rx.recv()
        assert bytes(body) == b"head-" + bytes(range(256))

    def test_empty_frame(self, pair):
        tx, rx = pair
        tx.send(Frame.BYE)
        kind, body = rx.recv()
        assert kind == Frame.BYE
        assert len(body) == 0

    def test_large_frame_survives_partial_sends(self, pair):
        tx, rx = pair
        blob = bytes(range(256)) * 4096  # 1 MiB: several sendmsg calls
        got = {}

        def reader():
            got["frame"] = rx.recv()

        thread = threading.Thread(target=reader)
        thread.start()
        tx.send(Frame.DATA, blob)
        thread.join(10.0)
        kind, body = got["frame"]
        assert kind == Frame.DATA
        assert bytes(body) == blob

    def test_eof_raises_connection_closed(self, pair):
        tx, rx = pair
        tx.close()
        with pytest.raises(ConnectionClosed):
            rx.recv()

    def test_send_on_closed_raises(self, pair):
        tx, rx = pair
        tx.close()
        with pytest.raises(ConnectionClosed):
            tx.send(Frame.DATA, b"x")

    def test_oversized_header_rejected(self, pair):
        tx, rx = pair
        # Hand-craft a header claiming a 2 GiB body.
        tx._sock.sendall(struct.pack("!IB", 1 << 31, Frame.DATA))
        with pytest.raises(ConnectionClosed, match="oversized"):
            rx.recv()


class TestHelpers:
    def test_run_and_edge_headers(self):
        run, rest = split_run(memoryview(pack_run(42) + b"tail"))
        assert run == 42
        assert bytes(rest) == b"tail"
        header = pack_edge(7, "e12")
        run, rest = split_run(memoryview(header + b"payload"))
        assert run == 7
        edge, payload = split_edge(rest)
        assert edge == "e12"
        assert bytes(payload) == b"payload"

    def test_truncated_headers_raise(self):
        with pytest.raises(ConnectionClosed):
            split_run(memoryview(b"\x00"))
        with pytest.raises(ConnectionClosed):
            split_edge(memoryview(b"\x00"))

    def test_parse_hostport(self):
        assert parse_hostport("example.org:7070") == ("example.org", 7070)
        assert parse_hostport(":7070") == ("127.0.0.1", 7070)
        with pytest.raises(ValueError):
            parse_hostport("7070")


class TestCreditFlowControl:
    def _kernel(self, link, credits=2):
        from repro.net.kernel import NetKernel, NetStopEvent

        return NetKernel(
            ["p0"],
            placement={},
            edges={"e0": ("p0", "p1"), "e1": ("p1", "p0")},
            link=link,
            run_id=1,
            stop_event=NetStopEvent(link, 1),
            queue_size=credits,
        )

    def test_producer_blocks_without_credits(self, pair):
        tx, _rx = pair
        kernel = self._kernel(tx, credits=2)
        out = kernel.channel("e0")
        out.put_nowait(1)
        out.put_nowait(2)
        with pytest.raises(queue.Full):
            out.put_nowait(3)
        kernel.add_credit("e0", 1)
        out.put_nowait(3)  # credit granted: flows again

    def test_consumer_grants_credit_per_dequeue(self, pair):
        tx, rx = pair
        kernel = self._kernel(tx)
        inbox = kernel.inboxes["e1"]
        from repro.net import encode

        blob = b"".join(bytes(b) for b in encode(41))
        inbox.push(memoryview(blob))
        assert inbox.get(timeout=1.0) == 41
        kind, body = rx.recv()  # the dequeue emitted a CREDIT frame
        assert kind == Frame.CREDIT
        run, rest = split_run(body)
        assert run == 1
        edge, counter = split_edge(rest)
        assert edge == "e1"
        assert struct.unpack("!I", counter)[0] == 1


class TestClusterHarness:
    def test_checkout_release_reuse(self):
        with ClusterHarness(size=2) as harness:
            links = harness.checkout(timeout=30.0)
            assert len(links) == 2
            assert all(link.alive for link in links)
            hosts = {link.host for link in links}
            assert len(hosts) == 2  # distinct worker processes
            harness.release(links)
            again = harness.checkout(timeout=10.0)
            assert set(again) == set(links)  # pooled, not respawned
            harness.release(again)

    def test_killed_socket_worker_reconnects(self):
        import time

        with ClusterHarness(size=1) as harness:
            (link,) = harness.checkout(timeout=30.0)
            link.link.close()  # the worker process survives and re-dials
            deadline = time.monotonic() + 5.0
            while link.alive and time.monotonic() < deadline:
                time.sleep(0.01)  # let the reader thread notice the EOF
            assert not link.alive
            harness.release([link])
            (fresh,) = harness.checkout(timeout=30.0)
            assert fresh is not link
            assert fresh.alive
            harness.release([fresh])

    def test_checkout_timeout_is_clean(self):
        with ClusterHarness(size=1, spawn=False) as harness:
            from repro.backends import BackendError

            with pytest.raises(BackendError, match="worker"):
                harness.checkout(timeout=0.3)
