"""Tests for Hindley-Milner inference, incl. the paper's skeleton typings."""

import pytest

from repro.core import FunctionTable
from repro.minicaml import (
    TypeError_,
    infer_expr,
    initial_env,
    parse,
    parse_expr,
    typecheck_source,
    type_to_str,
)
from repro.minicaml.infer import infer_program


def typeof(src, table=None):
    env = initial_env(table)
    return type_to_str(infer_expr(parse_expr(src), env))


def scheme_str(src, name, table=None):
    schemes = typecheck_source(src, table)
    return type_to_str(schemes[name].instantiate())


class TestLiteralsAndOperators:
    def test_literals(self):
        assert typeof("1") == "int"
        assert typeof("1.5") == "float"
        assert typeof("true") == "bool"
        assert typeof('"s"') == "string"
        assert typeof("()") == "unit"

    def test_int_arithmetic(self):
        assert typeof("1 + 2 * 3") == "int"

    def test_float_arithmetic(self):
        assert typeof("1.0 +. 2.5") == "float"

    def test_mixed_arithmetic_rejected(self):
        with pytest.raises(TypeError_):
            typeof("1 + 2.0")
        with pytest.raises(TypeError_):
            typeof("1.0 +. 2")

    def test_comparison_polymorphic_but_homogeneous(self):
        assert typeof("1 = 2") == "bool"
        assert typeof('"a" = "b"') == "bool"
        with pytest.raises(TypeError_):
            typeof('1 = "a"')

    def test_cons_and_append(self):
        assert typeof("1 :: [2; 3]") == "int list"
        assert typeof("[1] @ [2]") == "int list"
        with pytest.raises(TypeError_):
            typeof("1 :: [true]")

    def test_list_homogeneous(self):
        with pytest.raises(TypeError_):
            typeof("[1; true]")


class TestFunctionsAndPolymorphism:
    def test_identity(self):
        assert typeof("fun x -> x") == "'a -> 'a"

    def test_const_function(self):
        assert typeof("fun x y -> x") == "'a -> 'b -> 'a"

    def test_application(self):
        assert typeof("(fun x -> x + 1) 2") == "int"

    def test_if_branches_unify(self):
        assert typeof("fun c -> if c then 1 else 2") == "bool -> int"
        with pytest.raises(TypeError_):
            typeof("if true then 1 else false")

    def test_cond_must_be_bool(self):
        with pytest.raises(TypeError_):
            typeof("if 1 then 2 else 3")

    def test_let_polymorphism(self):
        assert typeof("let id = fun x -> x in (id 1, id true)") == "int * bool"

    def test_lambda_bound_monomorphic(self):
        with pytest.raises(TypeError_):
            typeof("fun f -> (f 1, f true)")

    def test_tuple_pattern_in_fun(self):
        assert typeof("fun (a, b) -> a") == "('a * 'b) -> 'a"

    def test_let_rec(self):
        src = "let rec loop = fun x -> if x = 0 then 0 else loop (x - 1);;"
        assert scheme_str(src, "loop") == "int -> int"

    def test_occurs_check_self_application(self):
        with pytest.raises(TypeError_, match="occurs|mismatch"):
            typeof("fun x -> x x")

    def test_unbound_identifier(self):
        with pytest.raises(TypeError_, match="unbound"):
            typeof("mystery")

    def test_shadowing(self):
        assert typeof("let x = 1 in let x = true in x") == "bool"


class TestBuiltins:
    def test_map(self):
        assert typeof("map (fun x -> x + 1) [1; 2]") == "int list"

    def test_fold_left(self):
        assert typeof("fold_left (fun a x -> a + x) 0 [1; 2]") == "int"

    def test_fst_snd(self):
        assert typeof("fst (1, true)") == "int"
        assert typeof("snd (1, true)") == "bool"

    def test_hd_tl(self):
        assert typeof("hd [1]") == "int"
        assert typeof("tl [1]") == "int list"


class TestSkeletonSignatures:
    def test_df_full_application(self):
        src = (
            "df 4 (fun x -> x + 1) (fun acc y -> acc + y) 0 [1; 2; 3]"
        )
        assert typeof(src) == "int"

    def test_df_partial_application_keeps_constraints(self):
        t = typeof("df 4 (fun x -> x + 1)")
        # Remaining: acc, z, xs, result with 'b = int fixed.
        assert t == "('a -> int -> 'a) -> 'a -> int list -> 'a"

    def test_df_rejects_mismatched_accumulator(self):
        # comp produces int but acc consumes bool.
        with pytest.raises(TypeError_):
            typeof("df 4 (fun x -> x + 1) (fun a y -> if y then a else a) 0 [1]")

    def test_df_degree_must_be_int(self):
        with pytest.raises(TypeError_):
            typeof("df true (fun x -> x) (fun a y -> a) 0 []")

    def test_scm_signature(self):
        src = (
            "scm 4 (fun n x -> [x]) (fun p -> p + 1) "
            "(fun x rs -> rs) 5"
        )
        assert typeof(src) == "int list"

    def test_scm_split_first_arg_is_int(self):
        with pytest.raises(TypeError_):
            typeof("scm 4 (fun s x -> [x + s]) (fun p -> p) (fun x rs -> rs) true")

    def test_tf_worker_pair_convention(self):
        src = (
            "tf 2 (fun x -> ([x], [])) (fun a y -> a + y) 0 [1; 2]"
        )
        assert typeof(src) == "int"

    def test_tf_worker_subtasks_must_match_input(self):
        with pytest.raises(TypeError_):
            typeof("tf 2 (fun x -> ([x], [true])) (fun a y -> a + y) 0 [1]")

    def test_itermem_signature(self):
        src = (
            "itermem (fun x -> x + 1) (fun (s, i) -> (s + i, s)) "
            "(fun y -> ignore y) 0 5"
        )
        assert typeof(src) == "unit"

    def test_itermem_loop_must_return_pair(self):
        with pytest.raises(TypeError_):
            typeof("itermem (fun x -> x) (fun (s, i) -> s) (fun y -> ignore y) 0 5")

    def test_itermem_output_consumes_loop_snd(self):
        with pytest.raises(TypeError_):
            typeof(
                "itermem (fun x -> x) (fun (s, i) -> (s, 1)) "
                "(fun y -> ignore (y = true)) 0 5"
            )


class TestExternals:
    def make_table(self):
        table = FunctionTable()

        @table.register("detect_mark", ins=["window"], outs=["mark"])
        def detect_mark(w):
            return w

        @table.register("accum_marks", ins=["mark list", "mark"], outs=["mark list"])
        def accum_marks(old, m):
            return old

        @table.register("predict", ins=["mark list"], outs=["mark list", "state"])
        def predict(marks):
            return marks, None

        @table.register("poly_pass", ins=["'a"], outs=["'a"])
        def poly_pass(x):
            return x

        return table

    def test_external_curried_type(self):
        table = self.make_table()
        assert typeof("accum_marks", table) == "mark list -> mark -> mark list"

    def test_multi_out_is_tuple(self):
        table = self.make_table()
        assert typeof("predict", table) == "mark list -> mark list * state"

    def test_polymorphic_external(self):
        table = self.make_table()
        assert typeof("(poly_pass 1, poly_pass true)", table) == "int * bool"

    def test_df_with_externals(self):
        table = self.make_table()
        src = "fun ws -> df 8 detect_mark accum_marks [] ws"
        assert typeof(src, table) == "window list -> mark list"

    def test_df_rejects_wrong_external_wiring(self):
        table = self.make_table()
        # accum_marks as comp and detect_mark as acc: ill-typed.
        with pytest.raises(TypeError_):
            typeof("fun ws -> df 8 accum_marks detect_mark [] ws", table)

    def test_opaque_types_do_not_unify(self):
        table = self.make_table()
        with pytest.raises(TypeError_):
            typeof("fun w -> accum_marks w (detect_mark w)", table)


class TestPaperCaseStudy:
    def make_table(self):
        table = FunctionTable()
        table.register("read_img", ins=["int * int"], outs=["img"])(lambda s: None)
        table.register("init_state", ins=[], outs=["state"])(lambda: None)
        table.register(
            "get_windows", ins=["int", "state", "img"], outs=["window list"]
        )(lambda n, s, i: [])
        table.register("detect_mark", ins=["window"], outs=["mark"])(lambda w: None)
        table.register(
            "accum_marks", ins=["mark list", "mark"], outs=["mark list"]
        )(lambda o, m: o)
        table.register(
            "predict", ins=["mark list"], outs=["mark list", "state"]
        )(lambda m: (m, None))
        table.register("display_marks", ins=["mark list"])(lambda m: None)
        return table

    SRC = """
    let nproc = 8;;
    let s0 = init_state ();;
    let loop (state, im) =
      let ws = get_windows nproc state im in
      let marks = df nproc detect_mark accum_marks [] ws in
      let ms, st = predict marks in
      (st, ms);;
    let main = itermem read_img loop display_marks s0 (512,512);;
    """

    def test_whole_program_types(self):
        table = self.make_table()
        schemes = typecheck_source(self.SRC, table)
        get = lambda n: type_to_str(schemes[n].instantiate())
        assert get("nproc") == "int"
        assert get("s0") == "state"
        assert get("loop") == "(state * img) -> state * mark list"
        assert get("main") == "unit"

    def test_swapping_detector_and_accumulator_rejected(self):
        table = self.make_table()
        bad = self.SRC.replace(
            "df nproc detect_mark accum_marks", "df nproc accum_marks detect_mark"
        )
        with pytest.raises(TypeError_):
            typecheck_source(bad, table)

    def test_wrong_source_tuple_rejected(self):
        table = self.make_table()
        bad = self.SRC.replace("(512,512)", "true")
        with pytest.raises(TypeError_):
            typecheck_source(bad, table)
