"""Round-trip tests for the pretty-printer: parse . pretty == id."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minicaml import parse, parse_expr
from repro.minicaml.pretty import pretty_expr, pretty_pattern, pretty_program
from repro.minicaml import ast


def roundtrip(source: str) -> None:
    first = parse_expr(source)
    printed = pretty_expr(first)
    second = parse_expr(printed)
    assert second == first, f"{source!r} -> {printed!r} reparsed differently"


class TestExprRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "42",
            "3.5",
            "true",
            '"hi\\n"',
            "()",
            "x",
            "f a b",
            "f (a, b)",
            "f (g x)",
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "1 - 2 - 3",
            "1 - (2 - 3)",
            "a < b + 1",
            "1 :: 2 :: []",
            "(1 :: xs) :: ys",
            "[1; 2; 3] @ rest",
            "fun x -> x + 1",
            "fun (a, b) -> a",
            "let x = 1 in x + x",
            "let f = fun x -> x in f 1",
            "let a, b = p in (b, a)",
            "if c then 1 else 2",
            "(if c then f else g) x",
            "df nproc detect accum [] ws",
            "itermem read (fun (s, i) -> (s, i)) show 0 (512, 512)",
        ],
    )
    def test_roundtrip(self, source):
        roundtrip(source)

    def test_application_of_operator_result_parenthesised(self):
        e = parse_expr("f (a + b)")
        assert pretty_expr(e) == "f (a + b)"

    def test_nested_tuples(self):
        e = parse_expr("(1, (2, 3))")
        assert parse_expr(pretty_expr(e)) == e


class TestPatternPrinting:
    def test_flat(self):
        assert pretty_pattern(ast.PVar("x")) == "x"
        assert pretty_pattern(ast.PWild()) == "_"

    def test_tuple(self):
        p = ast.PTuple((ast.PVar("a"), ast.PWild()))
        assert pretty_pattern(p) == "a, _"
        assert pretty_pattern(p, top=False) == "(a, _)"


class TestProgramRoundTrip:
    def test_case_study(self):
        source = """
        let nproc = 8;;
        let s0 = init_state ();;
        let loop (state, im) =
          let ws = get_windows nproc state im in
          let marks = df nproc detect_mark accum_marks [] ws in
          let ms, st = predict state marks in
          (st, ms);;
        let main = itermem read_img loop display_marks s0 (512,512);;
        """
        prog = parse(source)
        printed = pretty_program(prog)
        assert parse(printed) == prog

    def test_let_rec(self):
        source = "let rec f = fun x -> f x;;"
        prog = parse(source)
        assert "let rec" in pretty_program(prog)
        assert parse(pretty_program(prog)) == prog


# Random expression generator for the property round-trip.
_names = st.sampled_from(["x", "y", "f", "g", "ws"])


def _exprs(depth: int):
    leaves = st.one_of(
        # Non-negative only: the grammar has no negative literals
        # (unary minus parses as 0 - x).
        st.integers(0, 99).map(ast.IntLit),
        st.booleans().map(ast.BoolLit),
        _names.map(ast.Var),
        st.just(ast.UnitLit()),
    )
    if depth == 0:
        return leaves
    sub = _exprs(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(sub, sub).map(lambda t: ast.Apply(t[0], t[1])),
        st.tuples(st.sampled_from(["+", "*", "::", "@", "<"]), sub, sub).map(
            lambda t: ast.BinOp(t[0], t[1], t[2])
        ),
        st.tuples(sub, sub).map(lambda t: ast.TupleExpr((t[0], t[1]))),
        st.lists(sub, max_size=3).map(lambda es: ast.ListExpr(tuple(es))),
        st.tuples(_names, sub).map(
            lambda t: ast.Fun(ast.PVar(t[0]), t[1])
        ),
        st.tuples(sub, sub, sub).map(lambda t: ast.If(t[0], t[1], t[2])),
        st.tuples(_names, sub, sub).map(
            lambda t: ast.Let(ast.PVar(t[0]), t[1], t[2])
        ),
    )


class TestPropertyRoundTrip:
    @given(_exprs(3))
    @settings(max_examples=150, deadline=None)
    def test_parse_pretty_identity(self, expr):
        printed = pretty_expr(expr)
        assert parse_expr(printed) == expr
