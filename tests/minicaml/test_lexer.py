"""Tests for the mini-ML lexer."""

import pytest

from repro.minicaml import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == TokenKind.EOF

    def test_integers(self):
        toks = tokenize("0 42 512")
        assert [t.text for t in toks[:-1]] == ["0", "42", "512"]
        assert all(t.kind == TokenKind.INT for t in toks[:-1])

    def test_floats(self):
        toks = tokenize("3.14 2. 0.5")
        assert all(t.kind == TokenKind.FLOAT for t in toks[:-1])

    def test_strings_with_escapes(self):
        toks = tokenize(r'"hello\nworld"')
        assert toks[0].kind == TokenKind.STRING
        assert toks[0].text == "hello\nworld"

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"oops')

    def test_identifiers_and_keywords(self):
        toks = tokenize("let rec foo_bar x' in fun")
        assert toks[0].kind == TokenKind.KEYWORD
        assert toks[1].kind == TokenKind.KEYWORD
        assert toks[2].kind == TokenKind.IDENT
        assert toks[2].text == "foo_bar"
        assert toks[3].kind == TokenKind.IDENT
        assert toks[3].text == "x'"

    def test_operators_maximal_munch(self):
        assert texts("a <= b ;; c -> d :: e <> f") == [
            "a", "<=", "b", ";;", "c", "->", "d", "::", "e", "<>", "f",
        ]

    def test_float_operators(self):
        assert texts("a +. b *. c") == ["a", "+.", "b", "*.", "c"]

    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a # b")


class TestComments:
    def test_simple_comment(self):
        assert texts("a (* comment *) b") == ["a", "b"]

    def test_nested_comment(self):
        assert texts("a (* outer (* inner *) still *) b") == ["a", "b"]

    def test_multiline_comment(self):
        assert texts("a (* line1\nline2 *) b") == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError, match="unterminated comment"):
            tokenize("a (* oops")


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("let x = 1\nlet y = 2")
        assert toks[0].loc.line == 1 and toks[0].loc.column == 1
        second_let = [t for t in toks if t.text == "y"][0]
        assert second_let.loc.line == 2
        assert second_let.loc.column == 5

    def test_column_after_multichar_token(self):
        toks = tokenize("ab ->")
        arrow = toks[1]
        assert arrow.loc.column == 4
