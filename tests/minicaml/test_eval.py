"""Tests for the mini-ML interpreter (the sequential emulation path)."""

import pytest

from repro.core import EndOfStream, FunctionTable
from repro.minicaml import EvalError, evaluate_program, parse, run_main
from repro.minicaml.eval import Interpreter
from repro.minicaml.parser import parse_expr


def run_expr(src, table=None, **kw):
    interp = Interpreter(table, **kw)
    return interp.eval(parse_expr(src), {})


class TestExpressions:
    def test_arithmetic(self):
        assert run_expr("1 + 2 * 3") == 7
        assert run_expr("7 / 2") == 3  # integer division
        assert run_expr("7.0 /. 2.0") == 3.5
        assert run_expr("-5") == -5

    def test_division_by_zero(self):
        with pytest.raises(EvalError, match="division by zero"):
            run_expr("1 / 0")

    def test_comparisons(self):
        assert run_expr("1 < 2") is True
        assert run_expr("1 = 1") is True
        assert run_expr("1 <> 1") is False

    def test_lists(self):
        assert run_expr("1 :: [2; 3]") == [1, 2, 3]
        assert run_expr("[1] @ [2; 3]") == [1, 2, 3]

    def test_tuples_and_projections(self):
        assert run_expr("fst (1, 2)") == 1
        assert run_expr("snd (1, 2)") == 2

    def test_if(self):
        assert run_expr("if 1 < 2 then 10 else 20") == 10

    def test_let_and_shadowing(self):
        assert run_expr("let x = 1 in let x = x + 1 in x") == 2

    def test_tuple_destructuring(self):
        assert run_expr("let a, b = (1, 2) in a + b") == 3

    def test_destructure_mismatch(self):
        with pytest.raises(EvalError, match="destructure"):
            run_expr("let a, b = (1, 2, 3) in a")

    def test_closures_capture(self):
        assert run_expr("let make = fun x -> fun y -> x + y in make 10 5") == 15

    def test_unbound(self):
        with pytest.raises(EvalError, match="unbound"):
            run_expr("ghost")

    def test_apply_non_function(self):
        with pytest.raises(EvalError, match="apply"):
            run_expr("1 2")


class TestBuiltins:
    def test_map(self):
        assert run_expr("map (fun x -> x * 2) [1; 2; 3]") == [2, 4, 6]

    def test_fold_left(self):
        assert run_expr("fold_left (fun a x -> a + x) 0 [1; 2; 3]") == 6

    def test_fold_left_order(self):
        assert run_expr('fold_left (fun a x -> a @ [x]) [] [1; 2]') == [1, 2]

    def test_length_rev_hd_tl(self):
        assert run_expr("length [1; 2; 3]") == 3
        assert run_expr("rev [1; 2]") == [2, 1]
        assert run_expr("hd [9; 8]") == 9
        assert run_expr("tl [9; 8]") == [8]

    def test_hd_empty(self):
        with pytest.raises(EvalError):
            run_expr("hd []")

    def test_min_max_abs(self):
        assert run_expr("min 3 5") == 3
        assert run_expr("max 3 5") == 5
        assert run_expr("abs (-4)") == 4


class TestSkeletonBuiltins:
    def test_df_is_fold_map(self):
        assert (
            run_expr("df 4 (fun x -> x * x) (fun a y -> a + y) 0 [1; 2; 3]") == 14
        )

    def test_scm(self):
        src = (
            "scm 2 (fun n x -> [x; x]) (fun p -> p + 1) "
            "(fun x rs -> rs) 10"
        )
        assert run_expr(src) == [11, 11]

    def test_tf_pair_convention(self):
        src = (
            "tf 2 (fun x -> if x <= 1 then ([x], []) else ([], [x - 1; x - 2])) "
            "(fun a y -> a + y) 0 [3]"
        )
        # 3 -> tasks [2;1]; 2 -> [1;0]; each 1 yields 1, 0 yields 0 => 1+1+0
        assert run_expr(src) == 2

    def test_itermem_bounded(self):
        src = (
            "itermem (fun x -> 1) (fun (s, i) -> (s + i, s + i)) "
            "(fun y -> ignore y) 0 ()"
        )
        interp = Interpreter(max_iterations=5)
        assert interp.eval(parse_expr(src), {}) == 5


class TestPrograms:
    def test_top_level_sequence(self):
        env = evaluate_program(parse("let a = 2;; let b = a * 3;;"))
        assert env["b"] == 6

    def test_let_rec_factorial(self):
        src = """
        let rec fact n = if n = 0 then 1 else n * fact (n - 1);;
        let main = fact 6;;
        """
        assert run_main(parse(src)) == 720

    def test_let_rec_mutual_via_closure(self):
        src = """
        let rec even n = if n = 0 then true else
          (let rec odd m = if m = 0 then false else even (m - 1) in odd (n - 1));;
        let main = even 10;;
        """
        assert run_main(parse(src)) is True

    def test_missing_entry(self):
        with pytest.raises(EvalError, match="no top-level binding"):
            run_main(parse("let a = 1;;"))

    def test_externals_and_stream(self):
        table = FunctionTable()
        frames = iter([10, 20, 30])

        @table.register("read", ins=["unit"], outs=["int"])
        def read(_):
            try:
                return next(frames)
            except StopIteration:
                raise EndOfStream

        seen = []

        @table.register("show", ins=["int"])
        def show(y):
            seen.append(y)

        src = """
        let loop (s, i) = (s + i, s + i);;
        let main = itermem read loop show 0 ();;
        """
        final = run_main(parse(src), table)
        assert seen == [10, 30, 60]
        assert final == 60

    def test_paper_case_study_emulates(self):
        table = FunctionTable()
        frames = iter(["f1", "f2"])

        @table.register("read_img", ins=["int * int"], outs=["img"])
        def read_img(shape):
            assert shape == (512, 512)
            try:
                return next(frames)
            except StopIteration:
                raise EndOfStream

        @table.register("init_state", ins=[], outs=["state"])
        def init_state():
            return "s0"

        @table.register(
            "get_windows", ins=["int", "state", "img"], outs=["window list"]
        )
        def get_windows(n, state, im):
            return [f"{im}:w{i}" for i in range(3)]

        @table.register("detect_mark", ins=["window"], outs=["mark"])
        def detect_mark(w):
            return f"m({w})"

        @table.register(
            "accum_marks", ins=["mark list", "mark"], outs=["mark list"]
        )
        def accum_marks(old, m):
            return old + [m]

        @table.register("predict", ins=["mark list"], outs=["mark list", "state"])
        def predict(marks):
            return marks, f"state<{len(marks)}>"

        shown = []

        @table.register("display_marks", ins=["mark list"])
        def display_marks(ms):
            shown.append(ms)

        src = """
        let nproc = 8;;
        let s0 = init_state ();;
        let loop (state, im) =
          let ws = get_windows nproc state im in
          let marks = df nproc detect_mark accum_marks [] ws in
          let ms, st = predict marks in
          (st, ms);;
        let main = itermem read_img loop display_marks s0 (512,512);;
        """
        final = run_main(parse(src), table)
        assert len(shown) == 2
        assert shown[0] == ["m(f1:w0)", "m(f1:w1)", "m(f1:w2)"]
        assert final == "state<3>"
