"""Tests for the HM type language: unification, schemes, parsing, printing."""

import pytest

from repro.minicaml import (
    Scheme,
    TArrow,
    TCon,
    TList,
    TTuple,
    TVar,
    TypeEnv,
    TypeError_,
    Unifier,
    parse_type,
    type_to_str,
)
from repro.minicaml.types import free_vars, prune, t_bool, t_int


class TestParseType:
    def test_base(self):
        assert parse_type("int") == TCon("int")
        assert parse_type("img") == TCon("img")

    def test_var(self):
        t = parse_type("'a")
        assert isinstance(t, TVar)

    def test_shared_vars_within_one_parse(self):
        t = parse_type("'a -> 'a")
        assert isinstance(t, TArrow)
        assert prune(t.arg) is prune(t.result)

    def test_shared_vars_across_parses(self):
        shared = {}
        t1 = parse_type("'a list", shared)
        t2 = parse_type("'a", shared)
        assert prune(t1.element) is prune(t2)

    def test_list_postfix(self):
        assert parse_type("mark list") == TList(TCon("mark"))
        assert parse_type("int list list") == TList(TList(TCon("int")))

    def test_tuple(self):
        t = parse_type("int * int")
        assert t == TTuple((TCon("int"), TCon("int")))

    def test_arrow_right_assoc(self):
        t = parse_type("int -> int -> bool")
        assert isinstance(t, TArrow)
        assert isinstance(t.result, TArrow)

    def test_precedence_tuple_vs_arrow(self):
        t = parse_type("int * int -> bool")
        assert isinstance(t, TArrow)
        assert isinstance(t.arg, TTuple)

    def test_parens(self):
        t = parse_type("(int -> bool) list")
        assert isinstance(t, TList)
        assert isinstance(t.element, TArrow)

    def test_paper_df_signature(self):
        t = parse_type("int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c")
        assert type_to_str(t) == (
            "int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c"
        )

    def test_bad_type(self):
        with pytest.raises(TypeError_):
            parse_type("int ->")
        with pytest.raises(TypeError_):
            parse_type("(int")
        with pytest.raises(TypeError_):
            parse_type("int $")


class TestUnify:
    def test_identical_cons(self):
        Unifier().unify(TCon("int"), TCon("int"))

    def test_con_mismatch(self):
        with pytest.raises(TypeError_, match="mismatch"):
            Unifier().unify(TCon("int"), TCon("bool"))

    def test_var_binds(self):
        v = TVar()
        Unifier().unify(v, t_int)
        assert prune(v) == t_int

    def test_var_binds_symmetric(self):
        v = TVar()
        Unifier().unify(t_int, v)
        assert prune(v) == t_int

    def test_occurs_check(self):
        v = TVar()
        with pytest.raises(TypeError_, match="occurs"):
            Unifier().unify(v, TList(v))

    def test_structural(self):
        a, b = TVar(), TVar()
        Unifier().unify(TArrow(a, t_bool), TArrow(t_int, b))
        assert prune(a) == t_int
        assert prune(b) == t_bool

    def test_tuple_arity_mismatch(self):
        with pytest.raises(TypeError_):
            Unifier().unify(TTuple((t_int, t_int)), TTuple((t_int, t_int, t_int)))

    def test_transitive_var_chain(self):
        a, b = TVar(), TVar()
        u = Unifier()
        u.unify(a, b)
        u.unify(b, t_int)
        assert prune(a) == t_int


class TestScheme:
    def test_instantiate_freshens_quantified(self):
        v = TVar()
        scheme = Scheme((v,), TArrow(v, v))
        t1 = scheme.instantiate()
        t2 = scheme.instantiate()
        # Fresh copies unify independently.
        Unifier().unify(t1.arg, t_int)
        assert prune(t2.arg) != t_int

    def test_instantiate_preserves_sharing(self):
        v = TVar()
        scheme = Scheme((v,), TArrow(v, v))
        t = scheme.instantiate()
        Unifier().unify(t.arg, t_int)
        assert prune(t.result) == t_int

    def test_monomorphic_not_freshened(self):
        v = TVar()
        scheme = Scheme.monomorphic(TArrow(v, v))
        t = scheme.instantiate()
        Unifier().unify(t.arg, t_int)
        assert prune(v) == t_int


class TestTypeEnv:
    def test_generalize_quantifies_free(self):
        env = TypeEnv()
        v = TVar()
        scheme = env.generalize(TArrow(v, v))
        assert len(scheme.quantified) == 1

    def test_generalize_respects_env(self):
        v = TVar()
        env = TypeEnv().extend("x", Scheme.monomorphic(v))
        scheme = env.generalize(TArrow(v, t_int))
        assert scheme.quantified == ()

    def test_extend_is_persistent(self):
        base = TypeEnv()
        child = base.extend("x", Scheme.monomorphic(t_int))
        assert base.lookup("x") is None
        assert child.lookup("x") is not None


class TestPrinting:
    def test_var_naming_stable(self):
        a, b = TVar(), TVar()
        assert type_to_str(TArrow(a, TArrow(b, a))) == "'a -> 'b -> 'a"

    def test_nested_arrow_parens(self):
        inner = TArrow(TVar(), TVar())
        assert type_to_str(TArrow(inner, t_int)) == "('a -> 'b) -> int"

    def test_list_of_tuple(self):
        t = TList(TTuple((t_int, t_int)))
        assert type_to_str(t) == "(int * int) list"

    def test_free_vars_order(self):
        a, b = TVar(), TVar()
        t = TArrow(a, TTuple((b, a)))
        assert free_vars(t) == [a, b]
