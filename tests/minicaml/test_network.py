"""Tests for network extraction (spec -> program IR)."""

import pytest

from repro.core import Apply, Const, FunctionTable, SkelApply
from repro.minicaml import NetworkError, compile_source, extract_network, parse


def make_table():
    table = FunctionTable()
    table.register("read_img", ins=["int * int"], outs=["img"])(lambda s: None)
    table.register("init_state", ins=[], outs=["state"])(lambda: None)
    table.register("get_windows", ins=["int", "state", "img"], outs=["window list"])(
        lambda n, s, i: []
    )
    table.register("detect_mark", ins=["window"], outs=["mark"])(lambda w: None)
    table.register("accum_marks", ins=["mark list", "mark"], outs=["mark list"])(
        lambda o, m: o
    )
    table.register("predict", ins=["mark list"], outs=["mark list", "state"])(
        lambda m: (m, None)
    )
    table.register("display_marks", ins=["mark list"])(lambda m: None)
    table.register("split_img", ins=["int", "img"], outs=["img list"])(
        lambda n, im: []
    )
    table.register("process", ins=["img"], outs=["img"])(lambda im: im)
    table.register("merge_img", ins=["img", "img list"], outs=["img"])(
        lambda im, parts: im
    )
    table.register("worker", ins=["task"], outs=["mark list", "task list"])(
        lambda t: ([], [])
    )
    return table


CASE_STUDY = """
let nproc = 8;;
let s0 = init_state ();;
let loop (state, im) =
  let ws = get_windows nproc state im in
  let marks = df nproc detect_mark accum_marks [] ws in
  let ms, st = predict marks in
  (st, ms);;
let main = itermem read_img loop display_marks s0 (512,512);;
"""


class TestStreamExtraction:
    def test_case_study_structure(self):
        prog = compile_source(CASE_STUDY, make_table()).ir
        assert prog.stream is not None
        assert prog.stream.inp == "read_img"
        assert prog.stream.out == "display_marks"
        assert prog.stream.init == "init_state"
        assert prog.stream.source == (512, 512)
        assert prog.params == ("state", "item")
        skels = prog.skeleton_instances()
        assert len(skels) == 1
        assert skels[0].kind == "df"
        assert skels[0].degree == 8
        assert skels[0].funcs == {"comp": "detect_mark", "acc": "accum_marks"}

    def test_constant_folding_of_degree(self):
        src = CASE_STUDY.replace("let nproc = 8;;", "let nproc = 2 * 2 + 4;;")
        prog = compile_source(src, make_table()).ir
        assert prog.skeleton_instances()[0].degree == 8

    def test_results_are_state_then_output(self):
        prog = compile_source(CASE_STUDY, make_table()).ir
        producers = prog.producers()
        state_binding = producers[prog.results[0]]
        out_binding = producers[prog.results[1]]
        assert isinstance(state_binding, Apply) and state_binding.func == "predict"
        assert isinstance(out_binding, Apply) and out_binding.func == "predict"

    def test_const_initial_memory(self):
        table = make_table()
        table.register("step", ins=["int", "img"], outs=["int", "mark list"])(
            lambda s, im: (s, [])
        )
        src = """
        let loop (s, im) = step s im;;
        let main = itermem read_img loop display_marks 0 (512,512);;
        """
        prog = compile_source(src, table).ir
        assert prog.stream.init is None
        assert prog.stream.init_value == 0

    def test_type_annotations_on_edges(self):
        prog = compile_source(CASE_STUDY, make_table()).ir
        get_windows_out = [
            b.outs[0] for b in prog.bindings
            if isinstance(b, Apply) and b.func == "get_windows"
        ][0]
        assert prog.types[get_windows_out] == "window list"


class TestOneShotExtraction:
    def test_scm_pipeline(self):
        src = """
        let main im =
          let out = scm 4 split_img process merge_img im in
          out;;
        """
        prog = compile_source(src, make_table()).ir
        assert prog.stream is None
        assert prog.params == ("im",)
        (skel,) = prog.skeleton_instances()
        assert skel.kind == "scm"
        assert skel.funcs == {
            "split": "split_img", "comp": "process", "merge": "merge_img",
        }

    def test_tf_extraction(self):
        src = """
        let main ts =
          tf 4 worker accum_marks [] ts;;
        """
        prog = compile_source(src, make_table()).ir
        (skel,) = prog.skeleton_instances()
        assert skel.kind == "tf"

    def test_user_function_inlining(self):
        src = """
        let detect ws = df 4 detect_mark accum_marks [] ws;;
        let main (state, im) =
          let ws = get_windows 4 state im in
          detect ws;;
        """
        prog = compile_source(src, make_table()).ir
        assert len(prog.skeleton_instances()) == 1
        assert prog.params == ("state", "im")

    def test_multiple_skeletons_in_sequence(self):
        src = """
        let main (state, im) =
          let clean = scm 4 split_img process merge_img im in
          let ws = get_windows 4 state clean in
          df 4 detect_mark accum_marks [] ws;;
        """
        prog = compile_source(src, make_table()).ir
        kinds = [s.kind for s in prog.skeleton_instances()]
        assert kinds == ["scm", "df"]


class TestRestrictions:
    def test_itermem_inside_body_rejected(self):
        src = """
        let loop (s, i) = (s, itermem read_img (fun (a, b) -> (a, b)) display_marks s (1,1));;
        let main = itermem read_img loop display_marks 0 (512,512);;
        """
        with pytest.raises(NetworkError, match="outermost"):
            extract_network(parse(src), make_table(), source=src)

    def test_dynamic_degree_rejected(self):
        src = """
        let main (n, ws) = df n detect_mark accum_marks [] ws;;
        """
        with pytest.raises(NetworkError, match="static integer"):
            extract_network(parse(src), make_table(), source=src)

    def test_closure_as_skeleton_function_rejected(self):
        src = """
        let main ws = df 4 (fun w -> detect_mark w) accum_marks [] ws;;
        """
        with pytest.raises(NetworkError, match="named sequential function"):
            extract_network(parse(src), make_table(), source=src)

    def test_dynamic_conditional_rejected(self):
        src = """
        let main (c, ws) =
          if c then df 4 detect_mark accum_marks [] ws
          else df 2 detect_mark accum_marks [] ws;;
        """
        with pytest.raises(NetworkError, match="control flow"):
            extract_network(parse(src), make_table(), source=src)

    def test_static_conditional_folds(self):
        src = """
        let fast = true;;
        let main ws =
          if fast then df 8 detect_mark accum_marks [] ws
          else df 1 detect_mark accum_marks [] ws;;
        """
        prog = extract_network(parse(src), make_table(), source=src)
        assert prog.skeleton_instances()[0].degree == 8

    def test_runtime_arithmetic_rejected(self):
        table = make_table()
        table.register("as_int", ins=["img"], outs=["int"])(lambda im: 0)
        src = """
        let main im = as_int im + 1;;
        """
        with pytest.raises(NetworkError, match="arithmetic"):
            extract_network(parse(src), table, source=src)

    def test_map_in_coordination_rejected(self):
        src = """
        let main ws = map detect_mark ws;;
        """
        with pytest.raises(NetworkError, match="sequential function"):
            extract_network(parse(src), make_table(), source=src)

    def test_recursion_in_coordination_rejected(self):
        src = """
        let main ws =
          let rec go w = go w in
          go ws;;
        """
        with pytest.raises(NetworkError, match="recursive"):
            extract_network(parse(src), make_table(), source=src)

    def test_missing_entry(self):
        with pytest.raises(NetworkError, match="no top-level binding"):
            extract_network(parse("let a = 1;;"), make_table())

    def test_entry_must_not_be_constant(self):
        with pytest.raises(NetworkError):
            extract_network(parse("let main = 42;;"), make_table())

    def test_non_nullary_call_at_top_level_rejected(self):
        src = """
        let marks = detect_mark 0;;
        let main ws = df 2 detect_mark accum_marks [] ws;;
        """
        with pytest.raises(NetworkError, match="outside the processing loop"):
            extract_network(parse(src), make_table(), source=src)


class TestEquivalence:
    def test_extracted_ir_emulates_like_interpreter(self):
        """The IR emulator and the direct interpreter agree (Fig. 2 both paths)."""
        from repro.core import emulate
        from repro.core.semantics import EndOfStream

        table = FunctionTable()
        feeds = {"count": 0}

        @table.register("read", ins=["int * int"], outs=["int"])
        def read(_shape):
            feeds["count"] += 1
            if feeds["count"] > 4:
                raise EndOfStream
            return feeds["count"] * 10

        @table.register("triple", ins=["int", "int"], outs=["int list"])
        def triple(n, x):
            return [x] * n

        @table.register("inc", ins=["int"], outs=["int"])
        def inc(x):
            return x + 1

        @table.register("add", ins=["int", "int"], outs=["int"])
        def add(a, b):
            return a + b

        @table.register("emit", ins=["int"])
        def emit(_y):
            return None

        src = """
        let loop (s, i) =
          let xs = triple 3 i in
          let total = df 2 inc add 0 xs in
          (total, total);;
        let main = itermem read loop emit 0 (1,1);;
        """
        compiled = compile_source(src, table)
        feeds["count"] = 0
        result = emulate(compiled.ir, table, call_sink=False)
        # Each frame: [x,x,x] -> inc -> sum = 3x+3
        assert result.outputs == [33, 63, 93, 123]
