"""Type-soundness smoke property: well-typed terms don't go wrong.

Milner's slogan, tested empirically: hypothesis generates random
expressions; whenever HM inference *accepts* one, evaluating it must
not raise a dynamic type error (applying a non-function, destructuring
a non-tuple, heterogeneous arithmetic...).  Division by zero is the one
sanctioned runtime error — the type system does not track it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minicaml import EvalError, TypeError_, infer_expr, initial_env
from repro.minicaml import ast
from repro.minicaml.eval import Interpreter

_names = st.sampled_from(["x", "y", "f"])


def _exprs(depth: int):
    leaves = st.one_of(
        st.integers(0, 9).map(ast.IntLit),
        st.booleans().map(ast.BoolLit),
        st.just(ast.UnitLit()),
        _names.map(ast.Var),
    )
    if depth == 0:
        return leaves
    sub = _exprs(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(sub, sub).map(lambda t: ast.Apply(t[0], t[1])),
        st.tuples(st.sampled_from(["+", "-", "*", "/", "=", "<", "::", "@"]),
                  sub, sub).map(lambda t: ast.BinOp(t[0], t[1], t[2])),
        st.tuples(sub, sub).map(lambda t: ast.TupleExpr((t[0], t[1]))),
        st.lists(sub, max_size=3).map(lambda es: ast.ListExpr(tuple(es))),
        st.tuples(_names, sub).map(lambda t: ast.Fun(ast.PVar(t[0]), t[1])),
        st.tuples(sub, sub, sub).map(lambda t: ast.If(t[0], t[1], t[2])),
        st.tuples(_names, sub, sub).map(
            lambda t: ast.Let(ast.PVar(t[0]), t[1], t[2])
        ),
    )


class TestSoundness:
    @given(_exprs(4))
    @settings(max_examples=300, deadline=None)
    def test_well_typed_terms_do_not_go_wrong(self, expr):
        env = initial_env()
        try:
            infer_expr(expr, env)
        except TypeError_:
            return  # rejected: nothing to check
        interp = Interpreter()
        try:
            interp.eval(expr, {})
        except EvalError as err:
            # The sanctioned dynamic failures (as in OCaml): arithmetic
            # partiality and polymorphic comparison of functional values.
            sanctioned = (
                "division by zero",
                "empty list",
                "compare functional",
            )
            assert any(s in str(err) for s in sanctioned), (
                f"well-typed term crashed: {expr!r}: {err}"
            )
        except (TypeError, AttributeError, KeyError) as err:
            pytest.fail(f"well-typed term went wrong: {expr!r}: {err!r}")

    @given(_exprs(3))
    @settings(max_examples=150, deadline=None)
    def test_inference_is_deterministic(self, expr):
        from repro.minicaml import type_to_str

        env = initial_env()
        try:
            t1 = type_to_str(infer_expr(expr, env))
        except TypeError_ as first:
            with pytest.raises(TypeError_):
                infer_expr(expr, initial_env())
            return
        t2 = type_to_str(infer_expr(expr, initial_env()))
        assert t1 == t2
