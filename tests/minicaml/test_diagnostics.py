"""Golden tests for front-end diagnostics: location and caret rendering."""

import pytest

from repro.core import FunctionTable
from repro.minicaml import (
    LexError,
    ParseError,
    TypeError_,
    compile_source,
    parse,
    tokenize,
    typecheck_source,
)
from repro.minicaml.errors import Location, SourceError
from repro.minicaml.network import NetworkError, extract_network


class TestLocationRendering:
    def test_str(self):
        assert str(Location(3, 7)) == "line 3, column 7"

    def test_unknown_location(self):
        err = SourceError("boom")
        assert err.render() == "error: boom"

    def test_caret_points_at_column(self):
        source = "let x = $ 1;;"
        with pytest.raises(LexError) as exc:
            tokenize(source)
        rendered = exc.value.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("lexical error at line 1, column 9")
        assert lines[1] == "  let x = $ 1;;"
        assert lines[2] == "  " + " " * 8 + "^"

    def test_multiline_source_excerpt(self):
        source = "let a = 1;;\nlet b = ;;\nlet c = 3;;"
        with pytest.raises(ParseError) as exc:
            parse(source)
        rendered = exc.value.render()
        assert "line 2" in rendered
        assert "let b = ;;" in rendered


class TestTypeErrorMessages:
    def test_unbound_names_the_identifier(self):
        with pytest.raises(TypeError_, match="unbound identifier 'ghost'"):
            typecheck_source("let main = ghost;;")

    def test_application_mismatch_shows_both_types(self):
        source = "let f = fun x -> x + 1;;\nlet main = f true;;"
        with pytest.raises(TypeError_) as exc:
            typecheck_source(source)
        message = exc.value.message
        assert "int" in message and "bool" in message
        assert exc.value.loc.line == 2

    def test_skeleton_misuse_located_at_call(self):
        table = FunctionTable()
        table.register("detect", ins=["window"], outs=["mark"])(lambda w: w)
        table.register("acc", ins=["mark list", "mark"], outs=["mark list"])(
            lambda o, m: o
        )
        source = "let main ws = df 4 acc detect [] ws;;"
        with pytest.raises(TypeError_) as exc:
            typecheck_source(source, table)
        assert exc.value.loc.line == 1


class TestNetworkErrorMessages:
    def make_table(self):
        table = FunctionTable()
        table.register("comp", ins=["'a"], outs=["'b"])(lambda x: x)
        table.register("acc", ins=["'c", "'b"], outs=["'c"])(lambda c, y: c)
        return table

    def test_dynamic_degree_message(self):
        source = "let main (n, ws) = df n comp acc [] ws;;"
        with pytest.raises(NetworkError) as exc:
            extract_network(parse(source), self.make_table(), source=source)
        assert "static integer" in exc.value.message
        assert "^" in exc.value.render()

    def test_closure_parameter_message_names_role(self):
        source = "let main ws = df 2 (fun w -> comp w) acc [] ws;;"
        with pytest.raises(NetworkError, match="'comp' parameter of 'df'"):
            extract_network(parse(source), self.make_table(), source=source)

    def test_runtime_arithmetic_hint(self):
        table = self.make_table()
        table.register("count", ins=["'a list"], outs=["int"])(len)
        source = "let main ws = count ws + 1;;"
        with pytest.raises(NetworkError, match="inside a sequential function"):
            extract_network(parse(source), table, source=source)


class TestCompileSourceErrors:
    def test_type_error_before_network_error(self):
        """compile_source type-checks first: a program that is both
        ill-typed and structurally invalid reports the type error."""
        table = FunctionTable()
        table.register("f", ins=["int"], outs=["int"])(lambda x: x)
        source = "let main ws = df true f f ws ws;;"
        with pytest.raises(TypeError_):
            compile_source(source, table)
