"""Tests for the mini-ML parser."""

import pytest

from repro.minicaml import ParseError, parse, parse_expr
from repro.minicaml import ast


class TestAtoms:
    def test_literals(self):
        assert parse_expr("42") == ast.IntLit(42)
        assert parse_expr("3.5") == ast.FloatLit(3.5)
        assert parse_expr("true") == ast.BoolLit(True)
        assert parse_expr('"hi"') == ast.StringLit("hi")
        assert isinstance(parse_expr("()"), ast.UnitLit)

    def test_lists(self):
        e = parse_expr("[1; 2; 3]")
        assert isinstance(e, ast.ListExpr)
        assert len(e.elements) == 3

    def test_empty_list(self):
        e = parse_expr("[]")
        assert isinstance(e, ast.ListExpr)
        assert e.elements == ()

    def test_parens(self):
        assert parse_expr("(1)") == ast.IntLit(1)


class TestOperators:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "*"

    def test_left_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-"
        assert isinstance(e.left, ast.BinOp) and e.left.op == "-"
        assert e.right == ast.IntLit(3)

    def test_cons_right_associative(self):
        e = parse_expr("1 :: 2 :: []")
        assert e.op == "::"
        assert isinstance(e.right, ast.BinOp) and e.right.op == "::"

    def test_compare_binds_looser_than_add(self):
        e = parse_expr("a + 1 = b")
        assert e.op == "="

    def test_unary_minus(self):
        e = parse_expr("-x")
        assert isinstance(e, ast.BinOp) and e.op == "-"
        assert e.left == ast.IntLit(0)

    def test_tuple_looser_than_cons(self):
        e = parse_expr("1, 2 :: []")
        assert isinstance(e, ast.TupleExpr)
        assert len(e.elements) == 2


class TestApplication:
    def test_juxtaposition_left_assoc(self):
        e = parse_expr("f a b")
        assert isinstance(e, ast.Apply)
        assert isinstance(e.fn, ast.Apply)
        assert e.fn.fn == ast.Var("f")

    def test_application_binds_tighter_than_operators(self):
        e = parse_expr("f a + g b")
        assert e.op == "+"
        assert isinstance(e.left, ast.Apply)
        assert isinstance(e.right, ast.Apply)

    def test_application_of_parenthesised_tuple(self):
        e = parse_expr("f (a, b)")
        assert isinstance(e, ast.Apply)
        assert isinstance(e.arg, ast.TupleExpr)

    def test_paper_df_call(self):
        e = parse_expr("df nproc detect_mark accum_marks empty_list ws")
        # Five nested applications.
        count = 0
        while isinstance(e, ast.Apply):
            count += 1
            e = e.fn
        assert count == 5
        assert e == ast.Var("df")


class TestBindingForms:
    def test_let_in(self):
        e = parse_expr("let x = 1 in x + x")
        assert isinstance(e, ast.Let)
        assert e.pattern == ast.PVar("x")

    def test_let_function_sugar(self):
        prog = parse("let f x y = x;;")
        expr = prog.phrases[0].expr
        assert isinstance(expr, ast.Fun)
        assert isinstance(expr.body, ast.Fun)

    def test_let_tuple_pattern_parenthesised(self):
        prog = parse("let loop (state, im) = state;;")
        expr = prog.phrases[0].expr
        assert isinstance(expr, ast.Fun)
        assert isinstance(expr.param, ast.PTuple)

    def test_let_tuple_pattern_bare(self):
        e = parse_expr("let ms, st = p in ms")
        assert isinstance(e.pattern, ast.PTuple)
        assert [p.name for p in e.pattern.elements] == ["ms", "st"]

    def test_let_rec(self):
        e = parse_expr("let rec f = fun x -> f x in f")
        assert e.recursive

    def test_fun_multi_param(self):
        e = parse_expr("fun x y -> x")
        assert isinstance(e, ast.Fun)
        assert isinstance(e.body, ast.Fun)

    def test_fun_needs_params(self):
        with pytest.raises(ParseError):
            parse_expr("fun -> 1")

    def test_wildcard_param(self):
        e = parse_expr("fun _ -> 1")
        assert isinstance(e.param, ast.PWild)

    def test_if_then_else(self):
        e = parse_expr("if a then 1 else 2")
        assert isinstance(e, ast.If)

    def test_params_on_tuple_pattern_rejected(self):
        with pytest.raises(ParseError):
            parse("let (a, b) x = a;;")


class TestTopLevel:
    def test_phrases_with_and_without_semisemi(self):
        prog = parse("let a = 1;;\nlet b = 2\nlet c = 3;;")
        assert len(prog.phrases) == 3

    def test_binding_lookup_last_wins(self):
        prog = parse("let a = 1;; let a = 2;;")
        assert prog.binding("a").expr == ast.IntLit(2)

    def test_paper_case_study_parses(self):
        src = """
        let nproc = 8;;
        let s0 = init_state ();;
        let loop (state, im) =
          let ws = get_windows nproc state im in
          let marks = df nproc detect_mark accum_marks empty_list ws in
          predict marks;;
        let main = itermem read_img loop display_marks s0 (512,512);;
        """
        prog = parse(src)
        assert [p.pattern.name for p in prog.phrases] == [
            "nproc", "s0", "loop", "main",
        ]

    def test_error_has_location(self):
        with pytest.raises(ParseError) as exc:
            parse("let x = ;;")
        assert exc.value.loc.line == 1

    def test_trailing_garbage_in_expr(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_expr("1 2 3 )")
