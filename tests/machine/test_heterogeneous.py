"""Tests for heterogeneous processor speeds (the multi-DSP scenario).

The paper's targets mixed Transputers with DSP accelerators; the
architecture model supports per-processor ``speed`` factors, the
executive scales compute costs by them, and the distribution heuristic
prefers fast processors under load.
"""

import pytest

from repro.core import FunctionTable, ProgramBuilder
from repro.machine import Executive, T9000, simulate
from repro.pnt import expand_program
from repro.syndex import Architecture, Channel, Processor, distribute


def hetero_arch(fast_speed: float) -> Architecture:
    """Three processors: p0 (I/O), p1 normal, p2 scaled by fast_speed."""
    arch = Architecture(f"hetero_{fast_speed}")
    arch.add_processor(Processor("p0", io=True))
    arch.add_processor(Processor("p1", speed=1.0))
    arch.add_processor(Processor("p2", speed=fast_speed))
    arch.add_channel(Channel("c0", ("p0", "p1")))
    arch.add_channel(Channel("c1", ("p1", "p2")))
    arch.add_channel(Channel("c2", ("p2", "p0")))
    return arch


def farm(degree=2):
    table = FunctionTable()
    table.register("work", ins=["int"], outs=["int"], cost=10_000.0)(
        lambda x: x + 1
    )
    table.register("add", ins=["int", "int"], outs=["int"], cost=10.0)(
        lambda a, b: a + b
    )
    b = ProgramBuilder("p", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="work", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table


class TestSpeedScaling:
    def test_fast_processor_shortens_makespan(self):
        prog, table = farm(degree=2)
        times = {}
        for speed in (1.0, 4.0):
            mapping = distribute(expand_program(prog, table), hetero_arch(speed))
            report = simulate(mapping, table, T9000, args=(list(range(8)),))
            times[speed] = report.makespan
        assert times[4.0] < times[1.0]

    def test_compute_cost_divided_by_speed(self):
        from repro.machine.costs import CostModel

        model = CostModel()
        assert model.scaled_cost(1000.0, 2.0) == 500.0
        assert model.scaled_cost(1000.0, 0.5) == 2000.0
        with pytest.raises(ValueError):
            model.scaled_cost(1000.0, 0.0)

    def test_results_unaffected_by_speed(self):
        prog, table = farm(degree=2)
        results = set()
        for speed in (1.0, 3.0, 10.0):
            mapping = distribute(expand_program(prog, table), hetero_arch(speed))
            report = simulate(mapping, table, T9000, args=([5, 6, 7],))
            results.add(report.one_shot_results)
        assert len(results) == 1

    def test_distribution_prefers_fast_processor(self):
        """With one 10x processor, load-balancing should lean on it."""
        prog, table = farm(degree=2)
        graph = expand_program(prog, table)
        durations = {pid: 10_000.0 for pid in graph.processes
                     if "worker" in pid}
        mapping = distribute(graph, hetero_arch(10.0), durations=durations)
        homes = {mapping.processor_of(pid) for pid in graph.processes
                 if "worker" in pid}
        assert "p2" in homes  # the fast processor got at least one worker
