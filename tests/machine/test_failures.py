"""Failure-injection tests: faulty sequential functions get crash context."""

import pytest

from repro.core import EndOfStream, FunctionTable, ProgramBuilder
from repro.machine import Executive, FAST_TEST
from repro.machine.executive import ExecutiveError
from repro.pnt import expand_program
from repro.syndex import distribute, ring


def build_farm(comp_fn, acc_fn=None):
    table = FunctionTable()
    table.register("comp", ins=["int"], outs=["int"])(comp_fn)
    table.register("acc", ins=["int", "int"], outs=["int"])(
        acc_fn or (lambda a, b: a + b)
    )
    b = ProgramBuilder("p", table)
    (xs,) = b.params("xs")
    r = b.df(3, comp="comp", acc="acc", z=b.const(0), xs=xs)
    prog = b.returns(r)
    mapping = distribute(expand_program(prog, table), ring(3))
    return Executive(mapping, table, FAST_TEST), table


class TestWorkerFailures:
    def test_worker_exception_wrapped_with_context(self):
        def bad(x):
            if x == 3:
                raise ValueError("pixel soup")
            return x

        executive, _ = build_farm(bad)
        with pytest.raises(ExecutiveError) as exc:
            executive.run_once([1, 2, 3, 4])
        assert exc.value.func == "comp"
        assert "worker" in exc.value.pid
        assert "pixel soup" in str(exc.value)
        assert isinstance(exc.value.original, ValueError)

    def test_accumulator_exception_names_master(self):
        def bad_acc(a, b):
            raise KeyError("lost mark")

        executive, _ = build_farm(lambda x: x, bad_acc)
        with pytest.raises(ExecutiveError) as exc:
            executive.run_once([1])
        assert exc.value.func == "acc"
        assert "master" in exc.value.pid

    def test_healthy_run_unaffected(self):
        executive, _ = build_farm(lambda x: x * x)
        report = executive.run_once([1, 2, 3])
        assert report.one_shot_results == (14,)


class TestStreamFailures:
    def make_stream(self, inp_fn):
        table = FunctionTable()
        table.register("read", ins=["unit"], outs=["int"])(inp_fn)
        table.register("step", ins=["int", "int"], outs=["int", "int"])(
            lambda s, i: (s + i, s + i)
        )
        table.register("emit", ins=["int"])(lambda y: None)
        b = ProgramBuilder("p", table)
        state, item = b.params("state", "item")
        s2, y = b.apply("step", state, item)
        prog = b.stream(s2, y, inp="read", out="emit", init_value=0, source=None)
        mapping = distribute(expand_program(prog, table), ring(2))
        return Executive(mapping, table, FAST_TEST)

    def test_input_failure_contextualised(self):
        calls = {"n": 0}

        def flaky(_src):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise OSError("frame grabber unplugged")
            return calls["n"]

        executive = self.make_stream(flaky)
        with pytest.raises(ExecutiveError) as exc:
            executive.run(10)
        assert exc.value.func == "read"
        assert "stream.input" in exc.value.pid

    def test_end_of_stream_is_not_an_error(self):
        def finite(_src):
            raise EndOfStream

        executive = self.make_stream(finite)
        report = executive.run(5)
        assert report.iterations == []
