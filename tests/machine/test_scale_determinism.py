"""Scale and determinism checks for the compile/simulate pipeline."""

import pytest

from repro.core import FunctionTable, ProgramBuilder, payload_bytes
from repro.machine import T9000, simulate
from repro.pnt import expand_program
from repro.syndex import distribute, hypercube, ring


def big_farm(degree):
    table = FunctionTable()
    table.register("work", ins=["int"], outs=["int"], cost=500.0)(
        lambda x: x * 3
    )
    table.register("add", ins=["int", "int"], outs=["int"], cost=10.0)(
        lambda a, b: a + b
    )
    b = ProgramBuilder("big", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="work", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table


class TestScale:
    def test_degree_64_on_hypercube(self):
        """A 193-process farm on a 64-node hypercube: correct and quick."""
        prog, table = big_farm(64)
        graph = expand_program(prog, table)
        assert len(graph) == 1 + 3 * 64 + 3  # farm + in/out/const
        mapping = distribute(graph, hypercube(6))
        mapping.validate()
        xs = list(range(256))
        report = simulate(mapping, table, T9000, args=(xs,))
        assert report.one_shot_results == (sum(3 * x for x in xs),)

    def test_wide_ring(self):
        prog, table = big_farm(32)
        mapping = distribute(expand_program(prog, table), ring(32))
        report = simulate(mapping, table, T9000, args=(list(range(64)),))
        assert report.one_shot_results == (sum(3 * x for x in range(64)),)


class TestDeterminism:
    def test_identical_runs_identical_timing(self):
        """The DES is deterministic: two runs agree to the microsecond."""
        def run():
            prog, table = big_farm(8)
            mapping = distribute(expand_program(prog, table), ring(8))
            return simulate(mapping, table, T9000, args=(list(range(40)),))

        a, b = run(), run()
        assert a.makespan == b.makespan
        assert a.proc_busy == b.proc_busy
        assert a.chan_busy == b.chan_busy
        assert a.one_shot_results == b.one_shot_results

    def test_mapping_deterministic_across_processes(self):
        prog1, table1 = big_farm(12)
        prog2, table2 = big_farm(12)
        m1 = distribute(expand_program(prog1, table1), ring(7))
        m2 = distribute(expand_program(prog2, table2), ring(7))
        assert m1.assignment == m2.assignment


class TestPayloadProperties:
    def test_monotone_under_append(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.lists(st.integers()), st.integers())
        @settings(max_examples=50, deadline=None)
        def check(xs, x):
            assert payload_bytes(xs + [x]) >= payload_bytes(xs)
            assert payload_bytes(xs) >= 0

        check()

    def test_nested_structures(self):
        assert payload_bytes([(1, 2), (3, 4)]) == 4 + 2 * (4 + 8)
