"""Tests for the distributed-executive simulator."""

import pytest

from repro.core import (
    EndOfStream,
    FunctionTable,
    ProgramBuilder,
    TaskOutcome,
    emulate,
    emulate_once,
)
from repro.machine import FAST_TEST, T9000, CostModel, Executive, simulate
from repro.pnt import expand_program
from repro.syndex import distribute, now, ring


def df_sum_table():
    table = FunctionTable()
    table.register("sq", ins=["int"], outs=["int"], cost=100)(lambda x: x * x)
    table.register("add", ins=["int", "int"], outs=["int"], cost=10)(
        lambda a, b: a + b
    )
    return table


def df_sum_program(degree, table):
    b = ProgramBuilder("sumsq", table)
    (xs,) = b.params("xs")
    r = b.df(degree, comp="sq", acc="add", z=b.const(0), xs=xs)
    return b.returns(r)


def build_mapping(prog, table, arch):
    graph = expand_program(prog, table)
    return distribute(graph, arch)


class TestOneShotFarm:
    def test_df_computes_correct_result(self):
        table = df_sum_table()
        prog = df_sum_program(4, table)
        mapping = build_mapping(prog, table, ring(4))
        report = simulate(mapping, table, FAST_TEST, args=([1, 2, 3, 4, 5],))
        assert report.one_shot_results == (55,)

    def test_df_empty_input(self):
        table = df_sum_table()
        prog = df_sum_program(3, table)
        mapping = build_mapping(prog, table, ring(3))
        report = simulate(mapping, table, FAST_TEST, args=([],))
        assert report.one_shot_results == (0,)

    def test_df_single_item(self):
        table = df_sum_table()
        prog = df_sum_program(4, table)
        mapping = build_mapping(prog, table, ring(4))
        report = simulate(mapping, table, FAST_TEST, args=([7],))
        assert report.one_shot_results == (49,)

    def test_matches_emulation(self):
        table = df_sum_table()
        prog = df_sum_program(3, table)
        mapping = build_mapping(prog, table, ring(5))
        xs = list(range(20))
        report = simulate(mapping, table, FAST_TEST, args=(xs,))
        assert report.one_shot_results == emulate_once(prog, table, xs)

    def test_more_workers_is_faster(self):
        table = df_sum_table()
        xs = list(range(16))
        times = {}
        for degree in (1, 8):
            prog = df_sum_program(degree, table)
            mapping = build_mapping(prog, table, ring(max(degree, 1)))
            times[degree] = simulate(
                mapping, table, T9000, args=(xs,)
            ).makespan
        assert times[8] < times[1]

    def test_wrong_arg_count(self):
        table = df_sum_table()
        prog = df_sum_program(2, table)
        mapping = build_mapping(prog, table, ring(2))
        with pytest.raises(RuntimeError, match="input"):
            simulate(mapping, table, FAST_TEST, args=())


class TestScm:
    def make(self, degree, arch_size):
        table = FunctionTable()
        table.register("chunk", ins=["int", "int list"], outs=["int list list"])(
            self._chunk
        )
        table.register("sumlist", ins=["int list"], outs=["int"], cost=50)(sum)
        table.register(
            "total", ins=["int list", "int list"], outs=["int"], cost=20
        )(lambda _orig, parts: sum(parts))
        b = ProgramBuilder("scm_sum", table)
        (xs,) = b.params("xs")
        r = b.scm(degree, split="chunk", comp="sumlist", merge="total", x=xs)
        prog = b.returns(r)
        return build_mapping(prog, table, ring(arch_size)), table, prog

    @staticmethod
    def _chunk(n, xs):
        base, extra = divmod(len(xs), n)
        out, start = [], 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            if size:
                out.append(xs[start : start + size])
            start += size
        return out

    def test_correct_sum(self):
        mapping, table, _prog = self.make(4, 4)
        report = simulate(mapping, table, FAST_TEST, args=(list(range(30)),))
        assert report.one_shot_results == (sum(range(30)),)

    def test_short_split_uses_no_piece(self):
        """Fewer pieces than workers: sentinel path still yields the sum."""
        mapping, table, _prog = self.make(8, 4)
        report = simulate(mapping, table, FAST_TEST, args=([1, 2, 3],))
        assert report.one_shot_results == (6,)

    def test_matches_emulation(self):
        mapping, table, prog = self.make(3, 3)
        xs = [5, 1, 4, 1, 5, 9, 2, 6]
        report = simulate(mapping, table, FAST_TEST, args=(xs,))
        assert report.one_shot_results == emulate_once(prog, table, xs)


class TestTf:
    def make_table(self):
        table = FunctionTable()

        def divide(interval):
            lo, hi = interval
            if hi - lo <= 2:
                return TaskOutcome(results=list(range(lo, hi)))
            mid = (lo + hi) // 2
            return TaskOutcome(subtasks=[(lo, mid), (mid, hi)])

        table.register("divide", ins=["interval"], outs=["outcome"], cost=30)(
            divide
        )
        table.register("add", ins=["int", "int"], outs=["int"], cost=5)(
            lambda a, b: a + b
        )
        return table

    def make_program(self, degree, table):
        b = ProgramBuilder("dc_sum", table)
        (xs,) = b.params("xs")
        r = b.tf(degree, comp="divide", acc="add", z=b.const(0), xs=xs)
        return b.returns(r)

    def test_divide_and_conquer(self):
        table = self.make_table()
        prog = self.make_program(4, table)
        mapping = build_mapping(prog, table, ring(4))
        report = simulate(mapping, table, FAST_TEST, args=([(0, 50)],))
        assert report.one_shot_results == (sum(range(50)),)

    def test_matches_emulation(self):
        table = self.make_table()
        prog = self.make_program(3, table)
        mapping = build_mapping(prog, table, ring(3))
        args = ([(0, 17), (100, 123)],)
        report = simulate(mapping, table, FAST_TEST, args=args)
        assert report.one_shot_results == emulate_once(prog, table, *args)

    def test_pair_convention_accepted(self):
        table = FunctionTable()
        table.register("halve", ins=["int"], outs=["pair"])(
            lambda x: ([x], []) if x <= 1 else ([], [x // 2, x - x // 2])
        )
        table.register("add", ins=["int", "int"], outs=["int"])(lambda a, b: a + b)
        b = ProgramBuilder("p", table)
        (xs,) = b.params("xs")
        r = b.tf(2, comp="halve", acc="add", z=b.const(0), xs=xs)
        prog = b.returns(r)
        mapping = build_mapping(prog, table, ring(2))
        report = simulate(mapping, table, FAST_TEST, args=([9],))
        assert report.one_shot_results == (9,)


class TestStream:
    def make(self, n_frames, degree=2, arch=None):
        table = FunctionTable()
        counter = {"i": 0}

        @table.register("read", ins=["unit"], outs=["int list"], cost=50)
        def read(_src):
            i = counter["i"]
            counter["i"] += 1
            if i >= n_frames:
                raise EndOfStream
            return [i, i + 1, i + 2]

        table.register("sq", ins=["int"], outs=["int"], cost=100)(lambda x: x * x)
        table.register("add", ins=["int", "int"], outs=["int"], cost=5)(
            lambda a, b: a + b
        )
        table.register(
            "step", ins=["int", "int"], outs=["int", "int"], cost=20
        )(lambda s, total: (s + total, s + total))
        table.register("emit", ins=["int"], cost=10)(lambda y: None)

        b = ProgramBuilder("stream_sum", table)
        state, item = b.params("state", "item")
        total = b.df(degree, comp="sq", acc="add", z=b.const(0), xs=item)
        s2, y = b.apply("step", state, total)
        prog = b.stream(s2, y, inp="read", out="emit", init_value=0, source=None)
        mapping = build_mapping(prog, table, arch or ring(degree + 1))
        return prog, table, mapping, counter

    def test_runs_until_end_of_stream(self):
        prog, table, mapping, _ = self.make(5)
        report = simulate(mapping, table, FAST_TEST)
        assert len(report.iterations) == 5
        assert len(report.outputs) == 5

    def test_outputs_match_emulation(self):
        prog, table, mapping, counter = self.make(4)
        report = simulate(mapping, table, FAST_TEST)
        counter["i"] = 0  # rewind the stream for the emulator
        seq = emulate(prog, table, call_sink=False)
        assert report.outputs == seq.outputs
        assert report.final_state == seq.final_state

    def test_max_iterations_cap(self):
        prog, table, mapping, _ = self.make(100)
        report = simulate(mapping, table, FAST_TEST, max_iterations=3)
        assert len(report.iterations) == 3

    def test_latencies_positive_and_ordered(self):
        _prog, table, mapping, _ = self.make(4)
        report = simulate(mapping, table, T9000)
        for rec in report.iterations:
            assert rec.latency > 0
            assert rec.end >= rec.output_time >= rec.start
        starts = [r.start for r in report.iterations]
        assert starts == sorted(starts)

    def test_utilisation_bounded(self):
        _prog, table, mapping, _ = self.make(4)
        report = simulate(mapping, table, T9000)
        for frac in report.utilisation().values():
            assert 0.0 <= frac <= 1.0

    def test_init_function_used(self):
        table = FunctionTable()
        reads = {"i": 0}

        @table.register("read", ins=["unit"], outs=["int"])
        def read(_src):
            if reads["i"] >= 1:
                raise EndOfStream
            reads["i"] += 1
            return 5

        table.register("boot", ins=[], outs=["int"])(lambda: 100)
        table.register("step", ins=["int", "int"], outs=["int", "int"])(
            lambda s, i: (s + i, s + i)
        )
        table.register("emit", ins=["int"])(lambda y: None)
        b = ProgramBuilder("p", table)
        state, item = b.params("state", "item")
        s2, y = b.apply("step", state, item)
        prog = b.stream(s2, y, inp="read", out="emit", init="boot", source=None)
        mapping = build_mapping(prog, table, ring(2))
        report = simulate(mapping, table, FAST_TEST)
        assert report.final_state == 105

    def test_empty_stream(self):
        _prog, table, mapping, _ = self.make(0)
        report = simulate(mapping, table, FAST_TEST)
        assert report.iterations == []
        assert report.outputs == []


class TestRealTimeStream:
    def make(self, frame_cost, n_frames=50):
        """A stream whose loop body costs ``frame_cost`` µs per frame."""
        table = FunctionTable()
        counter = {"i": 0}

        @table.register("read", ins=["unit"], outs=["int"], cost=100)
        def read(_src):
            i = counter["i"]
            counter["i"] += 1
            if i >= n_frames:
                raise EndOfStream
            return i

        table.register(
            "work", ins=["int", "int"], outs=["int", "int"], cost=frame_cost
        )(lambda s, i: (s + 1, i))
        table.register("emit", ins=["int"], cost=10)(lambda y: None)
        b = ProgramBuilder("rt", table)
        state, item = b.params("state", "item")
        s2, y = b.apply("work", state, item)
        prog = b.stream(s2, y, inp="read", out="emit", init_value=0, source=None)
        mapping = build_mapping(prog, table, ring(1))
        return table, mapping

    def test_fast_loop_processes_every_frame(self):
        """Loop faster than the 40 ms frame period: no frames skipped."""
        table, mapping = self.make(frame_cost=10_000.0)  # 10 ms
        report = simulate(mapping, table, T9000, real_time=True)
        assert report.total_frames_skipped == 0
        indices = [r.frame_index for r in report.iterations]
        assert indices == sorted(set(indices))
        # consecutive frames
        assert all(b - a == 1 for a, b in zip(indices, indices[1:]))

    def test_slow_loop_skips_frames(self):
        """~110 ms loop on a 25 Hz stream: processes ~1 image in 3 (§4)."""
        table, mapping = self.make(frame_cost=110_000.0)
        report = simulate(mapping, table, T9000, real_time=True)
        assert report.total_frames_skipped > 0
        steps = [
            b.frame_index - a.frame_index
            for a, b in zip(report.iterations, report.iterations[1:])
        ]
        assert steps and max(steps) == 3  # every third frame

    def test_frame_wait_when_ahead(self):
        """A loop faster than the frame period waits for the next frame."""
        table, mapping = self.make(frame_cost=1_000.0)
        report = simulate(mapping, table, T9000, real_time=True)
        # Iterations cannot start before their frame exists.
        period = T9000.frame_period
        for rec in report.iterations:
            assert rec.start >= rec.frame_index * period - 1e-6
