"""Tests for execution tracing and Gantt rendering."""

import json

import pytest

from repro.core import FunctionTable, ProgramBuilder
from repro.machine import (
    Executive,
    Span,
    T9000,
    Trace,
    busy_statistics,
    render_gantt,
)
from repro.pnt import expand_program
from repro.syndex import distribute, ring


def traced_run(degree=3, xs=None):
    table = FunctionTable()
    table.register("sq", ins=["int"], outs=["int"], cost=800)(lambda x: x * x)
    table.register("add", ins=["int", "int"], outs=["int"], cost=50)(
        lambda a, b: a + b
    )
    b = ProgramBuilder("p", table)
    (v,) = b.params("xs")
    r = b.df(degree, comp="sq", acc="add", z=b.const(0), xs=v)
    prog = b.returns(r)
    mapping = distribute(expand_program(prog, table), ring(degree))
    executive = Executive(mapping, table, T9000, record_trace=True)
    report = executive.run_once(xs if xs is not None else list(range(6)))
    return executive, report


class TestTrace:
    def test_disabled_by_default(self):
        table = FunctionTable()
        table.register("f", ins=["int"], outs=["int"])(lambda x: x)
        b = ProgramBuilder("p", table)
        (x,) = b.params("x")
        prog = b.returns(b.apply("f", x))
        mapping = distribute(expand_program(prog, table), ring(1))
        executive = Executive(mapping, table, T9000)
        executive.run_once(1)
        assert executive.trace is None

    def test_compute_spans_recorded(self):
        executive, report = traced_run()
        trace = executive.trace
        assert trace.compute
        workers = [s for s in trace.compute if "worker" in s.owner]
        # 6 packets -> 6 worker computations.
        assert len(workers) == 6
        for span in workers:
            assert span.duration == pytest.approx(800.0)

    def test_transfer_spans_recorded(self):
        executive, _report = traced_run()
        trace = executive.trace
        assert trace.transfer
        for span in trace.transfer:
            assert span.resource in executive.mapping.arch.channels
            assert span.duration > 0

    def test_spans_never_overlap_per_resource(self):
        executive, _report = traced_run(degree=4, xs=list(range(16)))
        trace = executive.trace
        by_resource = {}
        for span in trace.compute + trace.transfer:
            by_resource.setdefault(span.resource, []).append(span)
        for spans in by_resource.values():
            spans.sort(key=lambda s: s.start)
            for a, b in zip(spans, spans[1:]):
                assert a.end <= b.start + 1e-9

    def test_busy_matches_report(self):
        executive, report = traced_run()
        stats = busy_statistics(executive.trace)
        for proc, busy in report.proc_busy.items():
            traced_busy, _count = stats.get(proc, (0.0, 0))
            assert traced_busy == pytest.approx(busy)

    def test_makespan_consistent(self):
        executive, report = traced_run()
        assert executive.trace.makespan <= report.makespan + 1e-6

    def test_window_slicing(self):
        executive, _report = traced_run()
        trace = executive.trace
        half = trace.makespan / 2
        early = trace.window(0, half)
        late = trace.window(half, trace.makespan)
        assert len(early.compute) + len(late.compute) >= len(trace.compute)
        assert all(s.start < half for s in early.compute)


class TestGantt:
    def test_empty_trace(self):
        assert render_gantt(Trace()) == "(empty trace)"

    def test_rows_per_resource(self):
        executive, _report = traced_run()
        chart = render_gantt(executive.trace, width=40)
        lines = chart.splitlines()
        resources = {
            s.resource
            for s in executive.trace.compute + executive.trace.transfer
        }
        assert len(lines) == 1 + len(resources)
        for resource in resources:
            assert any(line.startswith(resource) for line in lines)

    def test_busy_cells_marked(self):
        executive, _report = traced_run()
        chart = render_gantt(executive.trace, width=40)
        p0_line = next(l for l in chart.splitlines() if l.startswith("p0"))
        body = p0_line.split("|")[1]
        assert any(c != "." for c in body)

    def test_window_rendering(self):
        executive, _report = traced_run()
        trace = executive.trace
        chart = render_gantt(trace, width=30, t0=0, t1=trace.makespan / 4)
        assert "|" in chart

    def test_degenerate_window(self):
        executive, _report = traced_run()
        assert render_gantt(executive.trace, t0=5.0, t1=5.0) == "(empty window)"


class TestChromeJson:
    def test_empty_trace(self):
        doc = json.loads(Trace().to_chrome_json())
        assert doc["traceEvents"] == []

    def test_events_match_spans(self):
        executive, _report = traced_run()
        trace = executive.trace
        doc = json.loads(trace.to_chrome_json())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(trace.compute) + len(trace.transfer)
        categories = {e["cat"] for e in complete}
        assert categories == {"compute", "transfer"}
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_metadata_names_every_resource(self):
        executive, _report = traced_run()
        trace = executive.trace
        doc = json.loads(trace.to_chrome_json(indent=2))
        metadata = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        resources = {
            s.resource for s in trace.compute + trace.transfer
        }
        assert {m["args"]["name"] for m in metadata} == resources

    def test_pid_groups_rows(self):
        executive, _report = traced_run()
        doc = json.loads(executive.trace.to_chrome_json())
        events = doc["traceEvents"]
        pid_of = {
            e["args"]["name"]: e["pid"]
            for e in events if e["ph"] == "M"
        }
        assert len(set(pid_of.values())) == len(pid_of)  # one row each
