"""Tests for binary morphology, incl. algebraic property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vision import Image
from repro.vision.morphology import (
    closing,
    dilate,
    erode,
    morphological_gradient,
    opening,
)


def binary_images(max_side=14):
    return arrays(
        np.uint8,
        st.tuples(st.integers(3, max_side), st.integers(3, max_side)),
        elements=st.sampled_from([0, 255]),
    ).map(Image)


class TestBasics:
    def test_erode_shrinks_square(self):
        im = Image.zeros(7, 7)
        im.pixels[1:6, 1:6] = 255
        out = erode(im)
        assert out.pixels[2:5, 2:5].min() == 255
        assert out.pixels[1, 1] == 0  # corner eaten

    def test_dilate_grows_point(self):
        im = Image.zeros(7, 7)
        im.pixels[3, 3] = 255
        out = dilate(im)
        assert out.pixels[2:5, 2:5].min() == 255
        assert out.pixels[0, 0] == 0

    def test_opening_removes_speck(self):
        im = Image.zeros(9, 9)
        im.pixels[1, 1] = 255  # single-pixel speck
        im.pixels[4:8, 4:8] = 255  # solid block
        out = opening(im)
        assert out.pixels[1, 1] == 0
        assert out.pixels[5, 5] == 255

    def test_closing_fills_hole(self):
        im = Image.zeros(9, 9)
        im.pixels[2:7, 2:7] = 255
        im.pixels[4, 4] = 0  # one-pixel hole
        out = closing(im)
        assert out.pixels[4, 4] == 255

    def test_gradient_is_boundary(self):
        im = Image.zeros(9, 9)
        im.pixels[2:7, 2:7] = 255
        out = morphological_gradient(im)
        assert out.pixels[4, 4] == 0  # interior
        assert out.pixels[2, 4] > 0  # boundary

    def test_even_element_rejected(self):
        with pytest.raises(ValueError):
            erode(Image.zeros(4, 4), (2, 3))
        with pytest.raises(ValueError):
            dilate(Image.zeros(4, 4), (3, 0))

    def test_border_handling(self):
        # Adjoint convention: outside the frame counts as foreground for
        # erosion, so a full frame stays full...
        assert erode(Image.full(5, 5, 255)) == Image.full(5, 5, 255)
        # ...while dilation never conjures pixels from the border.
        assert dilate(Image.zeros(5, 5)) == Image.zeros(5, 5)


class TestAlgebraicProperties:
    @given(binary_images())
    @settings(max_examples=40, deadline=None)
    def test_erosion_anti_extensive(self, im):
        out = erode(im)
        assert np.all((out.pixels > 0) <= (im.pixels > 0))

    @given(binary_images())
    @settings(max_examples=40, deadline=None)
    def test_dilation_extensive(self, im):
        out = dilate(im)
        assert np.all((im.pixels > 0) <= (out.pixels > 0))

    @given(binary_images())
    @settings(max_examples=40, deadline=None)
    def test_duality(self, im):
        """Erosion of the complement == complement of dilation."""
        complement = Image(np.where(im.pixels > 0, 0, 255).astype(np.uint8))
        lhs = erode(complement).pixels > 0
        rhs = ~(dilate(im).pixels > 0)
        assert np.array_equal(lhs, rhs)

    @given(binary_images())
    @settings(max_examples=30, deadline=None)
    def test_opening_idempotent(self, im):
        once = opening(im)
        twice = opening(once)
        assert once == twice

    @given(binary_images())
    @settings(max_examples=30, deadline=None)
    def test_closing_idempotent(self, im):
        once = closing(im)
        assert closing(once) == once

    @given(binary_images())
    @settings(max_examples=30, deadline=None)
    def test_open_below_close(self, im):
        """opening(x) <= x <= closing(x) pointwise."""
        o = opening(im).pixels > 0
        c = closing(im).pixels > 0
        x = im.pixels > 0
        assert np.all(o <= x)
        assert np.all(x <= c)
