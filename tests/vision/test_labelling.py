"""Tests for connected-component labelling, incl. property-based oracle checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vision import (
    Image,
    Rect,
    UnionFind,
    bounding_rect,
    checkerboard,
    component_count,
    components,
    label,
    label_flood,
)


class TestUnionFind:
    def test_singletons_are_distinct(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        assert uf.find(a) != uf.find(b)

    def test_union_merges(self):
        uf = UnionFind()
        a, b, c = (uf.make_set() for _ in range(3))
        uf.union(a, b)
        assert uf.find(a) == uf.find(b)
        assert uf.find(c) != uf.find(a)

    def test_union_idempotent(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        r1 = uf.union(a, b)
        r2 = uf.union(a, b)
        assert r1 == r2

    def test_transitive_chain(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(10)]
        for x, y in zip(ids, ids[1:]):
            uf.union(x, y)
        roots = {uf.find(x) for x in ids}
        assert len(roots) == 1


def _canonical(labels: np.ndarray) -> np.ndarray:
    """Relabel components in first-appearance order for comparison."""
    out = np.zeros_like(labels)
    mapping = {}
    flat = labels.ravel()
    canon = out.ravel()
    for i, v in enumerate(flat):
        if v == 0:
            continue
        if v not in mapping:
            mapping[v] = len(mapping) + 1
        canon[i] = mapping[v]
    return out


class TestLabelBasics:
    def test_empty_image(self):
        labels, count = label(Image.zeros(4, 4))
        assert count == 0
        assert labels.sum() == 0

    def test_single_component(self):
        im = Image.zeros(5, 5)
        im.pixels[1:3, 1:4] = 255
        labels, count = label(im)
        assert count == 1
        assert set(np.unique(labels)) == {0, 1}

    def test_two_separate_components(self):
        im = Image.zeros(6, 6)
        im.pixels[0, 0] = 255
        im.pixels[5, 5] = 255
        _, count = label(im, connectivity=8)
        assert count == 2

    def test_diagonal_8_vs_4(self):
        im = Image.from_list([[255, 0], [0, 255]])
        assert label(im, connectivity=8)[1] == 1
        assert label(im, connectivity=4)[1] == 2

    def test_u_shape_merges_via_equivalence(self):
        # A 'U' forces the two arms (separately labelled in pass 1) to merge.
        im = Image.from_list(
            [
                [255, 0, 255],
                [255, 0, 255],
                [255, 255, 255],
            ]
        )
        assert label(im, connectivity=4)[1] == 1

    def test_checkerboard_4_connectivity(self):
        board = checkerboard((8, 8), cell=2)
        # 4x4 grid of cells, half are foreground; 4-connectivity keeps
        # diagonal cells separate.
        _, count = label(board, connectivity=4)
        assert count == 8

    def test_invalid_connectivity(self):
        with pytest.raises(ValueError):
            label(Image.zeros(2, 2), connectivity=6)
        with pytest.raises(ValueError):
            label_flood(Image.zeros(2, 2), connectivity=6)

    def test_labels_are_consecutive(self):
        rng = np.random.default_rng(7)
        im = Image((rng.random((12, 12)) < 0.4).astype(np.uint8) * 255)
        labels, count = label(im)
        present = set(np.unique(labels)) - {0}
        assert present == set(range(1, count + 1))


class TestLabelAgainstFloodOracle:
    @given(
        arrays(
            np.uint8,
            st.tuples(st.integers(1, 12), st.integers(1, 12)),
            elements=st.sampled_from([0, 255]),
        ),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_partition(self, pixels, connectivity):
        im = Image(pixels)
        l1, c1 = label(im, connectivity)
        l2, c2 = label_flood(im, connectivity)
        assert c1 == c2
        assert np.array_equal(_canonical(l1), _canonical(l2))

    @given(
        arrays(
            np.uint8,
            st.tuples(st.integers(1, 10), st.integers(1, 10)),
            elements=st.sampled_from([0, 255]),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_foreground_partition_invariants(self, pixels):
        im = Image(pixels)
        labels, count = label(im)
        # Every foreground pixel gets a label, every background pixel none.
        assert np.all((labels > 0) == (im.pixels > 0))
        # Masks partition the foreground.
        masks = components(im)
        assert len(masks) == count
        if masks:
            total = np.zeros(im.shape, dtype=int)
            for m in masks:
                total += m.astype(int)
            assert np.array_equal(total, (im.pixels > 0).astype(int))


class TestBoundingRect:
    def test_simple(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[2:4, 1:5] = True
        assert bounding_rect(mask) == Rect(2, 1, 2, 4)

    def test_empty_mask(self):
        assert bounding_rect(np.zeros((3, 3), dtype=bool)).is_empty()

    def test_single_pixel(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[3, 0] = True
        assert bounding_rect(mask) == Rect(3, 0, 1, 1)

    def test_component_count_shortcut(self):
        im = Image.zeros(5, 5)
        im.pixels[0, 0] = 1
        im.pixels[4, 4] = 1
        assert component_count(im) == 2
