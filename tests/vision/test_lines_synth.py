"""Tests for white-line detection and synthetic scene generation."""

import math

import numpy as np
import pytest

from repro.vision import (
    Image,
    Rect,
    checkerboard,
    detect_lines,
    draw_blob,
    extract_marks,
    hough_accumulate,
    hough_peaks,
    road_scene,
    scene_with_blobs,
    split_rows,
    threshold,
)


class TestSynth:
    def test_blob_scene_background(self):
        frame = scene_with_blobs((32, 32), [], background=20)
        assert np.all(frame.pixels == 20)

    def test_blob_drawn(self):
        frame = scene_with_blobs((32, 32), [((16, 16), (4, 4))])
        assert frame.pixels[16, 16] == 255
        assert frame.pixels[0, 0] == 20

    def test_tiny_blob_still_visible(self):
        im = Image.zeros(16, 16)
        draw_blob(im, (8.3, 8.7), (0.1, 0.1))
        assert im.pixels.max() == 255

    def test_blob_clipped_at_border(self):
        im = Image.zeros(16, 16)
        draw_blob(im, (0, 0), (3, 3))
        assert im.pixels[0, 0] == 255

    def test_blob_fully_outside(self):
        im = Image.zeros(16, 16)
        draw_blob(im, (-50, -50), (2, 2))
        assert im.pixels.sum() == 0

    def test_noise_reproducible(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        a = scene_with_blobs((16, 16), [], noise_sigma=10, rng=rng1)
        b = scene_with_blobs((16, 16), [], noise_sigma=10, rng=rng2)
        assert a == b

    def test_checkerboard_pattern(self):
        board = checkerboard((8, 8), cell=4)
        assert board.pixels[0, 0] == 0
        assert board.pixels[0, 4] == 255
        assert board.pixels[4, 0] == 255
        assert board.pixels[4, 4] == 0

    def test_checkerboard_invalid_cell(self):
        with pytest.raises(ValueError):
            checkerboard((8, 8), cell=0)

    def test_road_scene_has_bright_lines(self):
        frame = road_scene((128, 128), lane_offsets=(-40, 40))
        assert frame.pixels.max() >= 200
        # Bottom row has two lines symmetric about the center.
        bottom = frame.pixels[-1]
        bright = np.flatnonzero(bottom > 200)
        assert bright.size > 0
        center = 64
        assert (bright < center).any() and (bright > center).any()

    def test_road_scene_bad_vanish_row(self):
        with pytest.raises(ValueError):
            road_scene((32, 32), vanish_row=40)


class TestHough:
    def test_vertical_line_parameters(self):
        im = Image.zeros(64, 64)
        im.pixels[:, 30] = 255
        acc = hough_accumulate(im)
        (line,) = hough_peaks(acc, 1, min_votes=32)
        # Vertical line: theta ~ 0, rho ~ col.
        assert line.theta == pytest.approx(0.0, abs=0.1)
        assert line.rho == pytest.approx(30.0, abs=1.5)
        assert line.votes == 64

    def test_horizontal_line_parameters(self):
        im = Image.zeros(64, 64)
        im.pixels[17, :] = 255
        acc = hough_accumulate(im)
        (line,) = hough_peaks(acc, 1, min_votes=32)
        assert line.theta == pytest.approx(math.pi / 2, abs=0.1)
        assert line.rho == pytest.approx(17.0, abs=1.5)

    def test_accumulator_merges_additively(self):
        """Per-band accumulators sum to the whole-image accumulator (scm merge)."""
        im = road_scene((64, 64), noise_sigma=0)
        binary = threshold(im, 150)
        whole = hough_accumulate(binary)
        partial = np.zeros_like(whole)
        for dom in split_rows(binary, 4):
            partial += hough_accumulate(
                dom.pixels, origin=(dom.rect.row, dom.rect.col)
            )
        assert np.array_equal(whole, partial)

    def test_empty_image_no_peaks(self):
        acc = hough_accumulate(Image.zeros(16, 16))
        assert hough_peaks(acc, 5) == []

    def test_detect_lines_on_road(self):
        frame = road_scene((128, 128), lane_offsets=(-40, 40), noise_sigma=2.0)
        lines = detect_lines(frame, k=2, edge_level=60, min_votes=20)
        assert len(lines) >= 1
        # Detected lines pass near known lane pixels on the bottom row.
        bottom_lane_points = [(127.0, 64 - 40.0), (127.0, 64 + 40.0)]
        best = min(
            min(line.point_distance(r, c) for line in lines)
            for r, c in bottom_lane_points
        )
        assert best < 8.0


class TestEndToEndDetection:
    def test_marks_in_noisy_scene(self):
        rng = np.random.default_rng(11)
        frame = scene_with_blobs(
            (128, 128),
            [((30, 40), (4, 4)), ((30, 70), (4, 4)), ((60, 55), (5, 5))],
            noise_sigma=8.0,
            rng=rng,
        )
        marks = extract_marks(frame, level=150, min_pixels=10)
        assert len(marks) == 3
