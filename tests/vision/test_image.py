"""Tests for the Image and Rect containers."""

import numpy as np
import pytest

from repro.vision import Image, Rect


class TestRect:
    def test_basic_extents(self):
        r = Rect(2, 3, 4, 5)
        assert r.row_end == 6
        assert r.col_end == 8
        assert r.area == 20

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)

    def test_center_of_single_pixel(self):
        assert Rect(4, 7, 1, 1).center == (4.0, 7.0)

    def test_center_of_even_rect(self):
        assert Rect(0, 0, 2, 4).center == (0.5, 1.5)

    def test_contains(self):
        r = Rect(1, 1, 3, 3)
        assert r.contains(1, 1)
        assert r.contains(3.9, 3.9)
        assert not r.contains(4, 2)
        assert not r.contains(0, 2)

    def test_intersect_overlapping(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 4, 4)
        assert a.intersect(b) == Rect(2, 2, 2, 2)

    def test_intersect_disjoint_is_empty(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 5, 2, 2)
        assert a.intersect(b).is_empty()

    def test_union(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(3, 3, 2, 2)
        assert a.union(b) == Rect(0, 0, 5, 5)

    def test_union_with_empty_identity(self):
        a = Rect(1, 1, 2, 2)
        empty = Rect(0, 0, 0, 0)
        assert a.union(empty) == a
        assert empty.union(a) == a

    def test_inflate_then_clip(self):
        r = Rect(0, 0, 2, 2).inflate(3)
        assert r == Rect(-3, -3, 8, 8)
        assert r.clip(5, 5) == Rect(0, 0, 5, 5)

    def test_clip_fully_outside(self):
        r = Rect(10, 10, 5, 5).clip(4, 4)
        assert r.is_empty()


class TestImage:
    def test_zeros_shape(self):
        im = Image.zeros(3, 5)
        assert im.shape == (3, 5)
        assert im.nrows == 3 and im.ncols == 5
        assert im.pixels.dtype == np.uint8

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Image(np.zeros((2, 2, 3)))

    def test_nbytes(self):
        assert Image.zeros(4, 8).nbytes == 32

    def test_crop_copies(self):
        im = Image.full(4, 4, 7)
        sub = im.crop(Rect(1, 1, 2, 2))
        sub.pixels[0, 0] = 99
        assert im.pixels[1, 1] == 7

    def test_crop_clips_out_of_bounds(self):
        im = Image.full(4, 4, 1)
        sub = im.crop(Rect(2, 2, 10, 10))
        assert sub.shape == (2, 2)

    def test_view_aliases(self):
        im = Image.zeros(4, 4)
        v = im.view(Rect(0, 0, 2, 2))
        v[0, 0] = 5
        assert im.pixels[0, 0] == 5

    def test_blit_roundtrip(self):
        im = Image.zeros(6, 6)
        patch = Image.full(2, 3, 9)
        im.blit(Rect(2, 1, 2, 3), patch)
        assert im.crop(Rect(2, 1, 2, 3)) == patch
        assert im.pixels.sum() == 9 * 6

    def test_equality(self):
        a = Image.from_list([[1, 2], [3, 4]])
        b = Image.from_list([[1, 2], [3, 4]])
        c = Image.from_list([[1, 2], [3, 5]])
        assert a == b
        assert a != c

    def test_full_image_rect(self):
        im = Image.zeros(7, 9)
        assert im.rect == Rect(0, 0, 7, 9)
