"""Tests for low-level pixel operations."""

import numpy as np
import pytest

from repro.vision import (
    Image,
    box_blur,
    convolve,
    gradient_magnitude,
    histogram,
    invert,
    otsu_threshold,
    threshold,
)


class TestThreshold:
    def test_strictly_above(self):
        im = Image.from_list([[10, 20, 30]])
        out = threshold(im, 20)
        assert list(out.pixels[0]) == [0, 0, 255]

    def test_custom_levels(self):
        im = Image.from_list([[0, 255]])
        out = threshold(im, 128, above=1, below=2)
        assert list(out.pixels[0]) == [2, 1]

    def test_all_background(self):
        im = Image.zeros(4, 4)
        assert threshold(im, 0).pixels.sum() == 0


class TestHistogram:
    def test_counts_sum_to_pixels(self):
        rng = np.random.default_rng(1)
        im = Image(rng.integers(0, 256, (16, 16), dtype=np.uint8))
        h = histogram(im)
        assert h.sum() == 256
        assert h.shape == (256,)

    def test_uniform_image(self):
        im = Image.full(4, 4, 42)
        h = histogram(im)
        assert h[42] == 16
        assert h.sum() == 16


class TestOtsu:
    def test_bimodal_separation(self):
        pixels = np.concatenate([np.full(100, 30), np.full(100, 200)])
        rng = np.random.default_rng(0)
        rng.shuffle(pixels)
        im = Image(pixels.reshape(10, 20).astype(np.uint8))
        t = otsu_threshold(im)
        assert 30 <= t < 200

    def test_flat_image_degenerate(self):
        # Single intensity: any threshold is fine, must not crash.
        assert isinstance(otsu_threshold(Image.full(4, 4, 7)), int)


class TestConvolve:
    def test_identity_kernel(self):
        rng = np.random.default_rng(2)
        im = Image(rng.integers(0, 256, (8, 8), dtype=np.uint8))
        ident = np.array([[0, 0, 0], [0, 1, 0], [0, 0, 0]])
        assert convolve(im, ident) == im

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            convolve(Image.zeros(4, 4), np.ones((2, 2)))

    def test_clamps_to_uint8(self):
        im = Image.full(4, 4, 200)
        out = convolve(im, np.full((3, 3), 1.0))  # 9x200 >> 255
        assert out.pixels.max() == 255

    def test_box_blur_constant_interior(self):
        im = Image.full(8, 8, 100)
        out = box_blur(im, 1)
        # Interior pixels average 9 identical values.
        assert np.all(out.pixels[1:-1, 1:-1] == 100)


class TestGradient:
    def test_flat_image_no_gradient(self):
        out = gradient_magnitude(Image.full(8, 8, 77))
        assert np.all(out.pixels[1:-1, 1:-1] == 0)

    def test_vertical_edge_detected(self):
        im = Image.zeros(8, 8)
        im.pixels[:, 4:] = 200
        out = gradient_magnitude(im)
        interior = out.pixels[2:-2, :]
        edge_cols = interior[:, 3:5]
        flat_cols = interior[:, :2]
        assert edge_cols.max() > 0
        assert flat_cols.max() == 0


class TestInvert:
    def test_involution(self):
        rng = np.random.default_rng(3)
        im = Image(rng.integers(0, 256, (5, 5), dtype=np.uint8))
        assert invert(invert(im)) == im


class TestEqualization:
    def test_lut_shape_and_monotonic(self):
        import numpy as np

        from repro.vision import equalization_lut, histogram

        rng = np.random.default_rng(4)
        im = Image(rng.integers(30, 90, (32, 32), dtype=np.uint8))
        lut = equalization_lut(histogram(im))
        assert lut.shape == (256,)
        assert np.all(np.diff(lut.astype(int)) >= 0)  # monotone

    def test_equalize_spreads_contrast(self):
        import numpy as np

        from repro.vision import equalize

        rng = np.random.default_rng(5)
        # Low-contrast image squeezed into [100, 120).
        im = Image(rng.integers(100, 120, (32, 32), dtype=np.uint8))
        out = equalize(im)
        assert int(out.pixels.max()) - int(out.pixels.min()) > 200

    def test_flat_image_unchanged_values(self):
        from repro.vision import equalize

        im = Image.full(8, 8, 42)
        out = equalize(im)
        # A single intensity cannot gain contrast.
        assert len(set(out.pixels.ravel().tolist())) == 1

    def test_empty_histogram_identity(self):
        import numpy as np

        from repro.vision import equalization_lut

        lut = equalization_lut(np.zeros(256))
        assert list(lut) == list(range(256))

    def test_apply_lut_validates(self):
        import numpy as np

        import pytest

        from repro.vision import apply_lut, equalization_lut

        with pytest.raises(ValueError):
            apply_lut(Image.zeros(4, 4), np.zeros(10))
        with pytest.raises(ValueError):
            equalization_lut(np.zeros(10))

    def test_per_band_histograms_sum_to_global(self):
        """The scm-parallelisable identity: histogram is additive."""
        import numpy as np

        from repro.vision import histogram, split_rows

        rng = np.random.default_rng(6)
        im = Image(rng.integers(0, 256, (24, 16), dtype=np.uint8))
        partial = sum(histogram(d.pixels) for d in split_rows(im, 4))
        assert np.array_equal(partial, histogram(im))
