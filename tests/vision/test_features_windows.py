"""Tests for mark extraction and windows of interest."""

import numpy as np
import pytest

from repro.vision import (
    Image,
    Mark,
    Rect,
    centroid,
    extract_marks,
    extract_window,
    scene_with_blobs,
    tile_image,
    windows_around,
)


class TestCentroid:
    def test_symmetric_mask(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:4, 1:4] = True
        assert centroid(mask) == (2.0, 2.0)

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            centroid(np.zeros((3, 3), dtype=bool))


class TestMark:
    def test_translated(self):
        m = Mark((1.0, 2.0), Rect(0, 1, 3, 3), 9)
        t = m.translated(10, 20)
        assert t.center == (11.0, 22.0)
        assert t.frame == Rect(10, 21, 3, 3)
        assert t.pixel_count == 9

    def test_distance(self):
        a = Mark((0.0, 0.0), Rect(0, 0, 1, 1), 1)
        b = Mark((3.0, 4.0), Rect(3, 4, 1, 1), 1)
        assert a.distance_to(b) == pytest.approx(5.0)


class TestExtractMarks:
    def test_finds_all_blobs_at_global_coords(self):
        frame = scene_with_blobs((64, 64), [((20, 20), (3, 3)), ((45, 50), (4, 4))])
        marks = extract_marks(frame, level=128)
        assert len(marks) == 2
        centers = sorted(m.center for m in marks)
        assert centers[0] == pytest.approx((20, 20), abs=0.6)
        assert centers[1] == pytest.approx((45, 50), abs=0.6)

    def test_origin_translation(self):
        frame = scene_with_blobs((64, 64), [((30, 40), (3, 3))])
        w = extract_window(frame, Rect(20, 30, 20, 20))
        marks = extract_marks(w.pixels, level=128, origin=w.origin)
        assert len(marks) == 1
        assert marks[0].center == pytest.approx((30, 40), abs=0.6)

    def test_min_pixels_filters_noise(self):
        im = Image.zeros(16, 16)
        im.pixels[2, 2] = 255  # 1-pixel speck
        im.pixels[8:12, 8:12] = 255  # 16-pixel mark
        marks = extract_marks(im, level=128, min_pixels=4)
        assert len(marks) == 1
        assert marks[0].pixel_count == 16

    def test_otsu_fallback(self):
        frame = scene_with_blobs((32, 32), [((16, 16), (4, 4))], background=20)
        marks = extract_marks(frame)  # no explicit level
        assert len(marks) == 1

    def test_empty_window(self):
        assert extract_marks(Image.zeros(0, 0)) == []

    def test_englobing_frame_contains_centroid(self):
        frame = scene_with_blobs((40, 40), [((15, 22), (3, 5))])
        (m,) = extract_marks(frame, level=128)
        assert m.frame.contains(m.row, m.col)


class TestWindows:
    def test_tile_covers_frame_exactly(self):
        frame = Image.full(37, 16, 3)
        tiles = tile_image(frame, 5)
        assert len(tiles) == 5
        assert sum(t.rect.height for t in tiles) == 37
        # Contiguous, non-overlapping bands.
        row = 0
        for t in tiles:
            assert t.rect.row == row
            assert t.rect.width == 16
            row = t.rect.row_end
        assert row == 37

    def test_tile_more_than_rows(self):
        frame = Image.zeros(3, 8)
        tiles = tile_image(frame, 10)
        assert len(tiles) == 3

    def test_tile_invalid(self):
        with pytest.raises(ValueError):
            tile_image(Image.zeros(4, 4), 0)

    def test_extract_window_clips(self):
        frame = Image.full(10, 10, 5)
        w = extract_window(frame, Rect(8, 8, 5, 5))
        assert w.rect == Rect(8, 8, 2, 2)
        assert w.pixels.shape == (2, 2)

    def test_windows_around_inflates(self):
        frame = Image.zeros(100, 100)
        rects = [Rect(40, 40, 10, 10)]
        (w,) = windows_around(frame, rects, margin=5)
        assert w.rect == Rect(35, 35, 20, 20)

    def test_window_nbytes(self):
        frame = Image.zeros(10, 10)
        w = extract_window(frame, Rect(0, 0, 4, 6))
        assert w.nbytes == 24
        assert w.area == 24
