"""Tests for geometric split/merge (the scm decomposition substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision import (
    Image,
    box_blur,
    gradient_magnitude,
    merge_image,
    merge_reduce,
    scm_apply,
    split_blocks,
    split_cols,
    split_rows,
)


def _random_image(seed, nrows, ncols):
    rng = np.random.default_rng(seed)
    return Image(rng.integers(0, 256, (nrows, ncols), dtype=np.uint8))


class TestSplits:
    def test_split_rows_covers(self):
        im = _random_image(0, 17, 9)
        doms = split_rows(im, 4)
        assert sum(d.core.height for d in doms) == 17
        assert all(d.core.width == 9 for d in doms)

    def test_split_cols_covers(self):
        im = _random_image(1, 9, 17)
        doms = split_cols(im, 4)
        assert sum(d.core.width for d in doms) == 17
        assert all(d.core.height == 9 for d in doms)

    def test_split_blocks_covers(self):
        im = _random_image(2, 10, 14)
        doms = split_blocks(im, 3, 4)
        assert len(doms) == 12
        assert sum(d.core.area for d in doms) == 140

    def test_overlap_extends_rect_not_core(self):
        im = _random_image(3, 20, 8)
        doms = split_rows(im, 4, overlap=2)
        inner = doms[1]
        assert inner.rect.row == inner.core.row - 2
        assert inner.rect.height == inner.core.height + 4
        # First band clipped at the image top.
        assert doms[0].rect.row == 0

    def test_more_pieces_than_rows(self):
        im = _random_image(4, 3, 5)
        assert len(split_rows(im, 8)) == 3

    def test_invalid_counts(self):
        im = Image.zeros(4, 4)
        with pytest.raises(ValueError):
            split_rows(im, 0)
        with pytest.raises(ValueError):
            split_cols(im, -1)
        with pytest.raises(ValueError):
            split_blocks(im, 0, 2)

    def test_pieces_hold_correct_pixels(self):
        im = _random_image(5, 12, 6)
        for dom in split_rows(im, 3):
            assert dom.pixels == im.crop(dom.rect)


class TestMerge:
    def test_identity_roundtrip_rows(self):
        im = _random_image(6, 13, 7)
        doms = split_rows(im, 5)
        out = merge_image(im.shape, doms, [d.pixels for d in doms])
        assert out == im

    def test_identity_roundtrip_blocks_with_overlap(self):
        im = _random_image(7, 16, 16)
        doms = split_blocks(im, 3, 3, overlap=2)
        out = merge_image(im.shape, doms, [d.pixels for d in doms])
        assert out == im

    def test_mismatched_lengths(self):
        im = _random_image(8, 8, 8)
        doms = split_rows(im, 2)
        with pytest.raises(ValueError):
            merge_image(im.shape, doms, [doms[0].pixels])

    def test_merge_reduce_histograms(self):
        parts = [np.array([1, 2]), np.array([3, 4]), np.array([5, 6])]
        total = merge_reduce(parts, lambda a, b: a + b, np.zeros(2, dtype=int))
        assert list(total) == [9, 12]


class TestScmApply:
    @given(st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_pointwise_op_split_invariant(self, n, seed):
        """A pointwise op under scm equals the op on the whole image."""
        im = _random_image(seed, 12, 10)
        whole = Image(255 - im.pixels)
        split = scm_apply(im, n, lambda d: Image(255 - d.pixels.pixels))
        assert split == whole

    def test_stencil_needs_overlap(self):
        """With a 1-pixel halo, 3x3 blur under scm matches the global blur."""
        im = _random_image(42, 24, 16)
        whole = box_blur(im, 1)
        split = scm_apply(im, 4, lambda d: box_blur(d.pixels, 1), overlap=1)
        assert split == whole

    def test_stencil_without_overlap_differs_at_seams(self):
        im = _random_image(43, 24, 16)
        whole = gradient_magnitude(im)
        split = scm_apply(im, 4, lambda d: gradient_magnitude(d.pixels), overlap=0)
        # Sanity check that the seam effect is observable: the two disagree.
        assert split != whole
