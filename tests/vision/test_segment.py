"""Tests for quadtree split-and-merge segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision import Image, Rect
from repro.vision.segment import (
    is_homogeneous,
    merge_adjacent,
    quadtree_leaves,
    region_stats,
    segment,
    split_region,
)


def two_tone_image(size=32, level_a=40, level_b=200):
    """Left half dark, right half bright."""
    im = Image.full(size, size, level_a)
    im.pixels[:, size // 2 :] = level_b
    return im


class TestRegionStats:
    def test_uniform(self):
        im = Image.full(8, 8, 77)
        s = region_stats(im, im.rect)
        assert s.mean == 77.0
        assert s.variance == 0.0

    def test_subregion(self):
        im = two_tone_image(8)
        left = region_stats(im, Rect(0, 0, 8, 4))
        assert left.mean == 40.0
        assert left.variance == 0.0

    def test_mixed_has_variance(self):
        im = two_tone_image(8)
        s = region_stats(im, im.rect)
        assert s.variance > 1000.0

    def test_empty_rect(self):
        im = Image.zeros(4, 4)
        s = region_stats(im, Rect(0, 0, 0, 0))
        assert s.mean == 0.0 and s.variance == 0.0


class TestSplitPredicate:
    def test_uniform_is_homogeneous(self):
        im = Image.full(16, 16, 10)
        assert is_homogeneous(im, im.rect)

    def test_two_tone_is_not(self):
        im = two_tone_image(16)
        assert not is_homogeneous(im, im.rect)

    def test_min_size_stops_recursion(self):
        im = two_tone_image(16)
        assert is_homogeneous(im, Rect(0, 6, 4, 4), min_size=4)


class TestSplitRegion:
    def test_quadrants_tile_exactly(self):
        rect = Rect(3, 5, 9, 7)  # odd sizes
        quads = split_region(rect)
        assert len(quads) == 4
        assert sum(q.area for q in quads) == rect.area
        for q in quads:
            assert rect.intersect(q) == q

    @given(st.integers(2, 40), st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_quadrants_partition_property(self, h, w):
        rect = Rect(0, 0, h, w)
        quads = split_region(rect)
        covered = np.zeros((h, w), dtype=int)
        for q in quads:
            covered[q.row : q.row_end, q.col : q.col_end] += 1
        assert np.all(covered == 1)


class TestQuadtreeLeaves:
    def test_uniform_image_single_leaf(self):
        im = Image.full(32, 32, 50)
        leaves = quadtree_leaves(im)
        assert len(leaves) == 1
        assert leaves[0].rect == im.rect

    def test_two_tone_splits_along_boundary(self):
        im = two_tone_image(32)
        leaves = quadtree_leaves(im)
        assert len(leaves) > 1
        # Every leaf is homogeneous.
        for leaf in leaves:
            assert leaf.variance <= 100.0 or (
                leaf.rect.height <= 4 or leaf.rect.width <= 4
            )

    def test_leaves_tile_the_image(self):
        rng = np.random.default_rng(0)
        im = Image(rng.integers(0, 256, (32, 32), dtype=np.uint8))
        leaves = quadtree_leaves(im, var_threshold=500.0)
        covered = np.zeros(im.shape, dtype=int)
        for leaf in leaves:
            r = leaf.rect
            covered[r.row : r.row_end, r.col : r.col_end] += 1
        assert np.all(covered == 1)


class TestMergeAndSegment:
    def test_two_tone_merges_to_two_segments(self):
        im = two_tone_image(32)
        labels = segment(im, mean_threshold=20.0)
        values = set(np.unique(labels))
        assert values == {1, 2}
        # Left and right halves carry different labels throughout.
        assert len(set(np.unique(labels[:, : 12]))) == 1
        assert len(set(np.unique(labels[:, 20:]))) == 1

    def test_uniform_image_one_segment(self):
        labels = segment(Image.full(16, 16, 99))
        assert set(np.unique(labels)) == {1}

    def test_every_pixel_labelled(self):
        rng = np.random.default_rng(1)
        im = Image(rng.integers(0, 256, (32, 32), dtype=np.uint8))
        labels = segment(im, var_threshold=800.0, mean_threshold=30.0)
        assert labels.min() >= 1

    def test_merge_respects_mean_threshold(self):
        im = two_tone_image(16, level_a=100, level_b=110)
        # Generous threshold: the two tones merge into one segment.
        labels = segment(im, mean_threshold=50.0)
        assert set(np.unique(labels)) == {1}

    def test_diagonal_corners_do_not_merge(self):
        from repro.vision.segment import RegionStats, _adjacent

        a = Rect(0, 0, 4, 4)
        b = Rect(4, 4, 4, 4)  # touches only at the corner
        assert not _adjacent(a, b)
        c = Rect(0, 4, 4, 4)  # shares an edge with a
        assert _adjacent(a, c)
