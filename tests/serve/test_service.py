"""SkipperService acceptance: compile-once, many tenants, isolation.

Every test drives the embeddable service over a real localhost worker
pool — the same path the ``repro serve`` daemon wraps in a socket.
"""

import threading

import pytest

from repro.net import ClusterHarness
from repro.realtime import LatencyBudget
from repro.serve import SkipperService
from repro.serve.scheduler import RunRequest
from repro.serve.soak import run_serve_soak, soak_source, soak_table
from repro.syndex import ring


@pytest.fixture(scope="module")
def cluster():
    with ClusterHarness(size=4) as harness:
        yield harness


def request(source, table, **kw):
    return RunRequest(source=source, table=table, arch=ring(3),
                      timeout=60.0, **kw)


class TestCompileOnce:
    def test_second_submit_does_zero_compile_work(self, cluster):
        """The acceptance bar: an unchanged program's second submit is
        answered entirely from the cache — counted, not inferred."""
        source = soak_source(frames=6)
        table = soak_table()
        with SkipperService(cluster=cluster) as svc:
            first = svc.run(request(source, table))
            assert first.status == "ok", first.error
            assert not first.cache_hit
            second = svc.run(request(source, table))
            assert second.status == "ok", second.error
            assert second.cache_hit, "unchanged program must hit"
            stats = svc.stats()["cache"]
            assert stats["misses"] == 1, "only the cold submit compiled"
            assert stats["hits"] == 1
            assert stats["front"]["misses"] == 1
            assert stats["codegen"]["misses"] == 1, (
                "the warm run must reuse the generated executive too"
            )
            assert stats["codegen"]["hits"] == 1
            assert second.report.outputs == first.report.outputs

    def test_compile_error_is_a_failed_ticket_not_a_crash(self, cluster):
        with SkipperService(cluster=cluster) as svc:
            bad = svc.run(request("let main = garbage nonsense;;",
                                  soak_table()))
            assert bad.status == "failed"
            assert bad.error
            assert svc.stats()["compile_errors"] == 1
            good = svc.run(request(soak_source(frames=4), soak_table()))
            assert good.status == "ok", (
                "a tenant's typo must not poison the service"
            )


class TestManyTenants:
    def test_eight_tenants_share_one_pool(self, cluster):
        """≥8 concurrent tenants against one pool: every request lands,
        every tenant's ledger conserves."""
        source = soak_source(frames=6)
        table = soak_table()
        n_tenants, per_tenant = 8, 2
        with SkipperService(cluster=cluster) as svc:
            tickets = []
            lock = threading.Lock()

            def tenant_traffic(name):
                mine = [svc.submit(request(source, table, tenant=name))
                        for _ in range(per_tenant)]
                with lock:
                    tickets.extend(mine)

            threads = [
                threading.Thread(target=tenant_traffic, args=(f"t{i}",))
                for i in range(n_tenants)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            for ticket in tickets:
                ticket.wait(120.0)

            assert all(t.status == "ok" for t in tickets), [
                (t.request.tenant, t.status, t.error) for t in tickets
                if t.status != "ok"
            ]
            rows = {row["tenant"]: row for row in svc.stats()["tenants"]}
            assert len(rows) == n_tenants
            for name, row in rows.items():
                assert row["submitted"] == per_tenant, name
                assert row["delivered"] == per_tenant, name
                assert row["conserved"], (
                    f"tenant {name} leaked requests: {row}"
                )
            cache = svc.stats()["cache"]
            assert cache["misses"] == 1, (
                "16 submits of one program must compile it exactly once"
            )
            assert cache["hits"] == n_tenants * per_tenant - 1

    def test_tenant_policy_sheds_only_its_own_traffic(self, cluster):
        """A burst past one tenant's shed-newest window shed nothing
        from the other tenant."""
        source = soak_source(frames=6)
        table = soak_table()
        tight = LatencyBudget(deadline_ms=60_000.0, policy="shed-newest",
                              max_in_flight=1, queue_depth=1)
        with SkipperService(cluster=cluster) as svc:
            noisy = [
                svc.submit(request(source, table, tenant="noisy",
                                   tenant_policy=tight))
                for _ in range(6)
            ]
            quiet = [svc.submit(request(source, table, tenant="quiet"))
                     for _ in range(2)]
            for ticket in noisy + quiet:
                ticket.wait(120.0)
            assert any(t.status == "shed" for t in noisy)
            assert all(t.status == "ok" for t in quiet)
            rows = {row["tenant"]: row for row in svc.stats()["tenants"]}
            assert rows["quiet"]["shed"] == 0
            assert rows["noisy"]["shed"] >= 1
            for row in rows.values():
                assert row["conserved"]


class TestChaosIsolation:
    def test_surge_chaos_leaves_steady_tenant_clean(self):
        """The soak harness end to end: input-surge chaos plus an
        admission burst on one tenant, a clean ledger on the other."""
        result = run_serve_soak(
            seed=0, frames=12, steady_runs=2, surge_submits=6,
            cluster_size=2,
        )
        assert result.ok, result.violations
