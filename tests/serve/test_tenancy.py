"""Tenant admission control: LatencyBudget policies over requests."""

import pytest

from repro.realtime import LatencyBudget
from repro.serve.scheduler import RunRequest, Ticket
from repro.serve.tenancy import DEFAULT_TENANT_POLICY, Tenant


def ticket(n: int) -> Ticket:
    return Ticket(n, RunRequest(source="", table=None, arch=None), None)


def policy(kind: str, depth: int = 2, in_flight: int = 1,
           deadline_ms: float = 60_000.0) -> LatencyBudget:
    return LatencyBudget(deadline_ms=deadline_ms, policy=kind,
                         max_in_flight=in_flight, queue_depth=depth)


def conserved(tenant: Tenant) -> bool:
    L = tenant.ledger
    return L.unaccounted() == len(tenant.queue) + tenant.in_flight


class TestAdmission:
    def test_block_never_sheds(self):
        tenant = Tenant("t", policy("block", depth=1))
        for i in range(6):
            admitted, displaced, _ = tenant.admit(ticket(i), float(i))
            assert admitted and not displaced
        assert len(tenant.queue) == 6
        assert conserved(tenant)

    def test_shed_newest_refuses_at_depth(self):
        tenant = Tenant("t", policy("shed-newest", depth=2))
        for i in range(2):
            assert tenant.admit(ticket(i), 0.0)[0]
        admitted, displaced, reason = tenant.admit(ticket(2), 1.0)
        assert not admitted and not displaced
        assert reason == "shed-newest"
        assert len(tenant.ledger.shed) == 1
        assert conserved(tenant)

    def test_shed_oldest_displaces_stalest(self):
        tenant = Tenant("t", policy("shed-oldest", depth=2))
        first = ticket(0)
        tenant.admit(first, 0.0)
        tenant.admit(ticket(1), 1.0)
        admitted, displaced, _ = tenant.admit(ticket(2), 2.0)
        assert admitted
        assert displaced == [first]
        assert first.record.status == "shed"
        assert [t.id for t in tenant.queue] == [1, 2]
        assert conserved(tenant)

    def test_degrade_thins_admission_until_backlog_clears(self):
        tenant = Tenant("t", policy("degrade", depth=2))
        for i in range(2):
            assert tenant.admit(ticket(i), 0.0)[0]
        verdicts = [tenant.admit(ticket(2 + i), float(i))[0]
                    for i in range(4)]
        assert not all(verdicts), "degraded mode must refuse some"
        assert any(verdicts), "degraded mode must not refuse all"
        assert tenant.degraded
        assert any(e.kind == "degraded-enter" for e in tenant.events)
        while tenant.take(10.0) is not None:
            tenant.in_flight -= 1  # simulate instant completion drain
        assert not tenant.degraded
        assert any(e.kind == "degraded-exit" for e in tenant.events)


class TestDispatchAndCompletion:
    def test_take_respects_in_flight_window(self):
        tenant = Tenant("t", policy("block", in_flight=1))
        tenant.admit(ticket(0), 0.0)
        tenant.admit(ticket(1), 0.0)
        first = tenant.take(1.0)
        assert first is not None and tenant.in_flight == 1
        assert tenant.take(1.0) is None, "window of 1 is full"
        tenant.complete(first, 2.0)
        assert tenant.take(3.0) is not None

    def test_completion_conserves_and_times(self):
        tenant = Tenant("t", policy("block"))
        tenant.admit(ticket(0), 0.0)
        t = tenant.take(5.0)
        tenant.complete(t, 10.0)
        record = tenant.ledger.frames[0]
        assert record.status == "delivered"
        assert record.latency_us == 10.0
        assert conserved(tenant)

    def test_deadline_miss_recorded(self):
        tenant = Tenant("t", policy("block", deadline_ms=0.001))
        tenant.admit(ticket(0), 0.0)
        t = tenant.take(0.0)
        tenant.complete(t, 5_000.0)  # 5 ms turnaround, 1 us budget
        assert tenant.deadline_misses == 1
        assert any(e.kind == "deadline-miss" for e in tenant.events)

    def test_failed_completion(self):
        tenant = Tenant("t", policy("block"))
        tenant.admit(ticket(0), 0.0)
        t = tenant.take(0.0)
        tenant.complete(t, 1.0, failed=True, reason="worker died")
        assert len(tenant.ledger.failed) == 1
        assert tenant.ledger.frames[0].reason == "worker died"
        assert conserved(tenant)

    def test_default_policy_blocks(self):
        assert Tenant("t").budget is DEFAULT_TENANT_POLICY
        assert DEFAULT_TENANT_POLICY.policy == "block"

    def test_to_dict_round_numbers(self):
        tenant = Tenant("t", policy("block"))
        tenant.admit(ticket(0), 0.0)
        tenant.complete(tenant.take(0.0), 1000.0)
        row = tenant.to_dict()
        assert row["submitted"] == 1 and row["delivered"] == 1
        assert row["conserved"] is True
        assert row["p50_ms"] == pytest.approx(1.0)
