"""The serving plane over real sockets: ServeClient <-> ServeServer."""

import pytest

from repro.backends import BackendError
from repro.serve import ServeClient, ServeServer, SkipperService
from repro.serve.soak import soak_source, soak_table
from repro.serve.wire import table_from_rows, table_payload
from repro.syndex import ring


@pytest.fixture(scope="module")
def server():
    with SkipperService(cluster_size=2) as service:
        with ServeServer(service) as srv:
            yield srv


@pytest.fixture()
def client(server):
    with ServeClient(server.address, tenant="tests") as c:
        yield c


SOURCE = soak_source(frames=6)


class TestSubmitPath:
    def test_submit_twice_cold_then_warm(self, client):
        table = soak_table()
        first = client.submit(SOURCE, table, ring(3)).wait(120.0)
        second = client.submit(SOURCE, table, ring(3)).wait(120.0)
        assert first["status"] == "ok", first.get("error")
        assert second["status"] == "ok"
        assert second["cache_hit"], "the daemon recompiled a warm submit"
        assert second["report"].outputs == first["report"].outputs

    def test_concurrent_submits_multiplex_one_socket(self, client):
        table = soak_table()
        outcomes = [client.submit(SOURCE, table, ring(3))
                    for _ in range(4)]
        reports = [o.report(120.0) for o in outcomes]
        assert len({tuple(r.outputs) for r in reports}) == 1

    def test_compile_error_returns_failed_doc(self, client):
        doc = client.submit("let main = what;;", soak_table(),
                            ring(3)).wait(60.0)
        assert doc["status"] == "failed"
        assert "error" in doc
        with pytest.raises(BackendError):
            client.submit("let main = what;;", soak_table(),
                          ring(3)).report(60.0)

    def test_run_convenience(self, client):
        report = client.run(SOURCE, soak_table(), ring(3))
        assert report.backend == "serve"
        assert len(report.outputs) == 6


class TestEndpoints:
    def test_stats_document(self, client):
        client.run(SOURCE, soak_table(), ring(3))
        stats = client.stats()
        assert stats["cluster"]["size"] == 2
        assert stats["cache"]["hits"] + stats["cache"]["misses"] >= 1
        tenants = {row["tenant"] for row in stats["tenants"]}
        assert "tests" in tenants

    def test_ps_quiesces(self, client):
        client.run(SOURCE, soak_table(), ring(3))
        assert client.ps() == []

    def test_unreachable_daemon_raises(self):
        with pytest.raises(BackendError, match="cannot reach"):
            ServeClient("127.0.0.1:9", connect_timeout=0.5)


class TestWireTable:
    def test_round_trip_drops_unpicklable_costs_only(self):
        table = soak_table()
        rebuilt = table_from_rows(table_payload(table))
        for spec in table:
            twin = rebuilt[spec.name]
            assert twin.fn is spec.fn
            assert tuple(twin.ins) == tuple(spec.ins)
            assert tuple(twin.outs) == tuple(spec.outs)
            assert twin.properties == spec.properties

    def test_payload_pickles(self):
        import pickle

        blob = pickle.dumps(table_payload(soak_table()))
        assert table_from_rows(pickle.loads(blob))["grab"]
