"""Compile-cache keying: content hashes, not identity hashes."""

from repro import FunctionTable
from repro.serve.cache import (
    CompileCache,
    arch_fingerprint,
    source_fingerprint,
    table_fingerprint,
)
from repro.syndex import chain, ring


SOURCE = """
let n = 3;;
let main xs = df n square add 0 xs;;
"""

#: Same token stream as SOURCE under different layout and comments.
RESPACED = """(* reformatted, semantically identical *)
let n      = 3;;
let main xs =
  df n square add 0 xs;;
"""


def make_table(square=lambda x: x * x):
    table = FunctionTable()
    table.register("square", ins=["int"], outs=["int"], cost=100.0)(square)
    table.register("add", ins=["int", "int"], outs=["int"], cost=10.0)(
        lambda a, b: a + b
    )
    return table


class TestFingerprints:
    def test_source_fingerprint_ignores_layout_and_comments(self):
        assert source_fingerprint(SOURCE) == source_fingerprint(RESPACED)

    def test_source_fingerprint_sees_token_changes(self):
        assert source_fingerprint(SOURCE) != source_fingerprint(
            SOURCE.replace("df n", "df 4")
        )

    def test_unlexable_source_still_fingerprints(self):
        bad = 'let x = "unterminated'
        assert source_fingerprint(bad) == source_fingerprint(bad)
        assert source_fingerprint(bad) != source_fingerprint(SOURCE)

    def test_table_fingerprint_sees_implementation_change(self):
        assert table_fingerprint(make_table()) != table_fingerprint(
            make_table(square=lambda x: x * x + 1)
        )

    def test_table_fingerprint_stable_across_rebuilds(self):
        def square(x):
            return x * x

        assert table_fingerprint(make_table(square)) == table_fingerprint(
            make_table(square)
        )

    def test_arch_fingerprint_distinguishes_machines(self):
        assert arch_fingerprint(ring(3)) != arch_fingerprint(ring(4))
        assert arch_fingerprint(ring(3)) != arch_fingerprint(chain(3))
        assert arch_fingerprint(ring(3)) == arch_fingerprint(ring(3))


class TestCacheKeying:
    def test_two_architectures_two_entries_one_front(self):
        cache = CompileCache()
        table = make_table()
        a = cache.build(SOURCE, table, ring(3))
        b = cache.build(SOURCE, table, ring(4))
        assert not a.hit and not b.hit
        assert a.key != b.key
        assert a.front_key == b.front_key
        assert b.front_hit, "the parse/expand stages are arch-independent"
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["front_entries"] == 1
        assert stats["front"]["hits"] == 1

    def test_whitespace_only_change_hits(self):
        cache = CompileCache()
        table = make_table()
        cold = cache.build(SOURCE, table, ring(3))
        warm = cache.build(RESPACED, table, ring(3))
        assert not cold.hit
        assert warm.hit and warm.front_hit
        assert warm.key == cold.key
        assert cache.stats()["hits"] == 1

    def test_function_table_change_misses(self):
        cache = CompileCache()
        cache.build(SOURCE, make_table(), ring(3))
        changed = cache.build(
            SOURCE, make_table(square=lambda x: x * x + 1), ring(3)
        )
        assert not changed.hit
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["misses"] == 2

    def test_lru_eviction_under_small_budget(self):
        cache = CompileCache(max_entries=2)
        table = make_table()
        k3 = cache.build(SOURCE, table, ring(3)).key
        cache.build(SOURCE, table, ring(4))
        cache.build(SOURCE, table, ring(3))       # refresh ring:3
        cache.build(SOURCE, table, chain(3))      # evicts ring:4 (LRU)
        assert cache.stats()["evictions"] == 1
        keys = cache.keys()
        assert k3 in keys and len(keys) == 2
        assert cache.build(SOURCE, table, ring(3)).hit
        assert not cache.build(SOURCE, table, ring(4)).hit, (
            "the evicted entry must rebuild"
        )

    def test_codegen_cached_per_max_iterations(self):
        cache = CompileCache()
        build = cache.build(SOURCE, make_table(), ring(3))
        first = cache.executive_source(build.key, None)
        again = cache.executive_source(build.key, None)
        other = cache.executive_source(build.key, 5)
        assert first == again
        assert isinstance(other, str)
        stats = cache.stats()["codegen"]
        assert stats == {"hits": 1, "misses": 2, "evictions": 0}

    def test_executive_source_unknown_key(self):
        assert CompileCache().executive_source("nope") is None
